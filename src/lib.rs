//! # orchestrated-tlb-repro — umbrella crate
//!
//! Re-exports the whole reproduction of Li, Wang & Tang, *Orchestrated
//! Scheduling and Partitioning for Improved Address Translation in GPUs*
//! (DAC 2023), so examples and downstream users need a single dependency.
//!
//! * [`vmem`] — UVM substrate (addresses, page tables, demand paging,
//!   walker pool).
//! * [`tlb`] — TLB organizations (baseline set-associative, PACT'20
//!   compression).
//! * [`mem_hier`] — composable memory-hierarchy stages with per-level
//!   latency attribution.
//! * [`workloads`] — the ten Table II benchmark trace generators.
//! * [`gpu_sim`] — the cycle-level GPU timing simulator.
//! * [`orchestrated_tlb`] — the paper's contribution: TLB-aware TB
//!   scheduling + TB-id-partitioned L1 TLB with dynamic set sharing.
//! * [`analysis`] — reuse-intensity and reuse-distance characterization.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use gpu_sim;
pub use mem_hier;
pub use orchestrated_tlb;
pub use tlb;
pub use vmem;
pub use workloads;
