//! Cross-crate property-based tests: the partitioned TLB is validated
//! against a reference model, and whole simulations are checked for
//! conservation invariants under random mechanism/benchmark choices.

use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::{
    run_benchmark, Mechanism, PartitionedTlb, PartitionedTlbConfig, SharingPolicy,
};
use orchestrated_tlb_repro::tlb::{TlbConfig, TlbRequest, TranslationBuffer};
use orchestrated_tlb_repro::vmem::{Ppn, Vpn};
use orchestrated_tlb_repro::workloads::{registry, Scale};
use proptest::prelude::*;

proptest! {
    /// The partitioned TLB never returns a wrong translation, for any
    /// interleaving of lookups/inserts from any mix of TB slots, with and
    /// without sharing.
    #[test]
    fn partitioned_tlb_hits_are_always_correct(
        sharing in any::<bool>(),
        tbs in 1u8..16,
        ops in proptest::collection::vec((0u8..16, 0u64..128), 1..400),
    ) {
        // Translations are a pure function of the page (as in the
        // simulator: a page's frame never changes during a run), so every
        // hit from every slot must agree with it.
        let ppn_of = |vpn: u64| Ppn::new(vpn.wrapping_mul(2654435761) % 100_000);
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::dac23_l1(),
            sharing: if sharing {
                SharingPolicy::Adjacent
            } else {
                SharingPolicy::None
            },
            ..PartitionedTlbConfig::with_sharing()
        });
        t.set_concurrent_tbs(tbs);
        for &(slot, vpn) in &ops {
            let slot = slot % tbs;
            let req = TlbRequest::new(Vpn::new(vpn), slot);
            t.insert(&req, ppn_of(vpn));
            // Any hit, from any slot, must return the page's frame.
            for probe in 0..tbs {
                let out = t.lookup(&TlbRequest::new(Vpn::new(vpn), probe));
                if out.hit {
                    prop_assert_eq!(out.ppn, Some(ppn_of(vpn)),
                        "slot {} probing vpn {}", probe, vpn);
                }
            }
        }
        prop_assert!(t.occupancy() <= 64);
    }

    /// Without sharing, a translation inserted by one TB is invisible to
    /// TBs with disjoint set groups.
    #[test]
    fn partition_isolation(vpn in 0u64..100_000, a in 0u8..16, b in 0u8..16) {
        prop_assume!(a != b);
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            sharing: SharingPolicy::None,
            ..PartitionedTlbConfig::partition_only()
        });
        t.set_concurrent_tbs(16); // one set each: groups disjoint
        t.insert(&TlbRequest::new(Vpn::new(vpn), a), Ppn::new(1));
        prop_assert!(t.lookup(&TlbRequest::new(Vpn::new(vpn), a)).hit);
        prop_assert!(!t.lookup(&TlbRequest::new(Vpn::new(vpn), b)).hit);
    }

    /// Lookup latency grows with the number of probed sets and never
    /// exceeds geometry sets + neighbour sets.
    #[test]
    fn lookup_latency_bounds(tbs in 1u8..16, vpn in 0u64..1000) {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig::with_sharing());
        t.set_concurrent_tbs(tbs);
        let out = t.lookup(&TlbRequest::new(Vpn::new(vpn), 0));
        let sets = 16usize;
        let own = sets / tbs as usize + usize::from(!sets.is_multiple_of(tbs as usize));
        prop_assert!(out.latency >= 1);
        prop_assert!(
            out.latency <= 2 * own as u64 + 1,
            "latency {} for {} tbs", out.latency, tbs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole-simulation conservation: for a random benchmark and
    /// mechanism, instructions issued equal the static trace's ops, TLB
    /// accesses are bounded by transactions, and every TB is placed once.
    #[test]
    fn simulation_conservation(bench_idx in 0usize..10, mech_idx in 0usize..8) {
        let spec = &registry()[bench_idx];
        let mech = Mechanism::all()[mech_idx];
        let wl = spec.generate(Scale::Test, 7);
        let total_ops = wl.total_warp_ops() as u64;
        let total_tbs: u32 = wl.kernels().iter().map(|k| k.tbs.len() as u32).sum();
        drop(wl);
        let r = run_benchmark(spec, Scale::Test, 7, mech, GpuConfig::dac23_baseline());
        prop_assert_eq!(r.instructions, total_ops, "{}/{}", spec.name, mech);
        prop_assert_eq!(r.tb_placements.iter().sum::<u32>(), total_tbs);
        let lookups = r.l1_tlb_aggregate().accesses();
        prop_assert!(lookups <= r.transactions);
        prop_assert!(r.total_cycles > 0);
        // L2 TLB only sees L1 misses.
        prop_assert_eq!(r.l2_tlb.accesses(), r.l1_tlb_aggregate().misses);
    }
}
