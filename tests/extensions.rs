//! Integration tests for the beyond-paper extensions: ML workloads,
//! TB throttling, TB-clustered warp scheduling, and the sharing-policy
//! variants — all driven end to end through the public API.

use orchestrated_tlb_repro::gpu_sim::{GpuConfig, Simulator, WarpScheduler};
use orchestrated_tlb_repro::orchestrated_tlb::{
    related_work, run_benchmark, Mechanism, PartitionedTlb, PartitionedTlbConfig, SharingPolicy,
    TbClusteredWarpScheduler, ThrottlingTlbAwareScheduler, WayPartitionedTlb,
};
use orchestrated_tlb_repro::tlb::TranslationBuffer;
use orchestrated_tlb_repro::workloads::{extended_registry, Scale};

#[test]
fn ml_workloads_run_under_all_mechanisms() {
    for name in ["embedding", "mlp"] {
        let spec = extended_registry()
            .into_iter()
            .find(|s| s.name == name)
            .expect("registered");
        for m in [Mechanism::Baseline, Mechanism::Full, Mechanism::Compression] {
            let r = run_benchmark(&spec, Scale::Test, 42, m, GpuConfig::dac23_baseline());
            assert!(r.total_cycles > 0, "{name}/{m}");
            assert!(r.instructions > 0);
        }
    }
}

#[test]
fn embedding_is_the_most_tlb_hostile_workload() {
    let hit = |name: &str| -> f64 {
        let spec = extended_registry()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        run_benchmark(
            &spec,
            Scale::Small,
            42,
            Mechanism::Baseline,
            GpuConfig::dac23_baseline(),
        )
        .l1_tlb_hit_rate()
    };
    let embedding = hit("embedding");
    for name in ["gemm", "mlp", "bfs"] {
        assert!(
            embedding < hit(name),
            "embedding ({embedding:.2}) should miss more than {name}"
        );
    }
}

#[test]
fn throttling_preserves_completion() {
    let spec = extended_registry()
        .into_iter()
        .find(|s| s.name == "color")
        .unwrap();
    let wl = spec.generate(Scale::Test, 42);
    let tbs: u32 = wl.kernels().iter().map(|k| k.tbs.len() as u32).sum();
    let r = Simulator::new(GpuConfig::dac23_baseline())
        .with_tb_scheduler(Box::new(ThrottlingTlbAwareScheduler::new(0.3)))
        .run(wl);
    assert_eq!(r.tb_placements.iter().sum::<u32>(), tbs);
    assert_eq!(r.scheduler, "tlb-aware+throttle");
}

#[test]
fn tb_clustered_warp_scheduling_runs_end_to_end() {
    let spec = extended_registry()
        .into_iter()
        .find(|s| s.name == "mlp")
        .unwrap();
    let wl = spec.generate(Scale::Test, 42);
    let ops = wl.total_warp_ops() as u64;
    let r = Simulator::new(GpuConfig::dac23_baseline())
        .with_warp_scheduler_factory(Box::new(|| {
            Box::new(TbClusteredWarpScheduler::new()) as Box<dyn WarpScheduler>
        }))
        .run(wl);
    assert_eq!(r.instructions, ops);
}

#[test]
fn sharing_policy_ladder_orders_hit_rates() {
    // On a graph workload, each sharing refinement should not reduce the
    // hit rate: none <= adjacent(empty-only) <= adjacent(displacement).
    let spec = extended_registry()
        .into_iter()
        .find(|s| s.name == "pagerank")
        .unwrap();
    let hit = |cfg: PartitionedTlbConfig| -> f64 {
        let wl = spec.generate(Scale::Small, 42);
        Simulator::new(GpuConfig::dac23_baseline())
            .with_l1_tlb_factory(Box::new(move |_| {
                Box::new(PartitionedTlb::new(cfg)) as Box<dyn TranslationBuffer>
            }))
            .run(wl)
            .l1_tlb_hit_rate()
    };
    let none = hit(PartitionedTlbConfig::partition_only());
    let empty_only = hit(PartitionedTlbConfig {
        sharing: SharingPolicy::Adjacent,
        displacement_margin: u64::MAX,
        ..PartitionedTlbConfig::partition_only()
    });
    let displacement = hit(PartitionedTlbConfig::with_sharing());
    let all_to_all = hit(PartitionedTlbConfig {
        sharing: SharingPolicy::AllToAll,
        ..PartitionedTlbConfig::with_sharing()
    });
    assert!(empty_only >= none, "{empty_only} vs {none}");
    assert!(displacement >= empty_only, "{displacement} vs {empty_only}");
    assert!(all_to_all >= displacement, "{all_to_all} vs {displacement}");
}

#[test]
fn way_partitioning_is_weaker_than_set_indexing_on_matrix_kernels() {
    let spec = extended_registry()
        .into_iter()
        .find(|s| s.name == "mvt")
        .unwrap();
    let geometry = GpuConfig::dac23_baseline().l1_tlb;
    let way = {
        let wl = spec.generate(Scale::Small, 42);
        Simulator::new(GpuConfig::dac23_baseline())
            .with_l1_tlb_factory(Box::new(move |_| {
                Box::new(WayPartitionedTlb::new(geometry)) as Box<dyn TranslationBuffer>
            }))
            .run(wl)
            .l1_tlb_hit_rate()
    };
    let set = {
        let wl = spec.generate(Scale::Small, 42);
        Simulator::new(GpuConfig::dac23_baseline())
            .with_l1_tlb_factory(Box::new(|_| {
                Box::new(PartitionedTlb::new(PartitionedTlbConfig::with_sharing()))
                    as Box<dyn TranslationBuffer>
            }))
            .run(wl)
            .l1_tlb_hit_rate()
    };
    assert!(
        set > way + 0.2,
        "set-indexed {set:.2} should beat way-partitioned {way:.2}"
    );
}

#[test]
fn table1_is_consistent_with_the_mechanism_registry() {
    // The proposal's row claims everything; our Full mechanism must at
    // least run every Table II benchmark (smoke-level consistency).
    let ours = related_work::table1()[7];
    assert_eq!(ours.capabilities.score(), 5);
    for spec in orchestrated_tlb_repro::workloads::registry() {
        let r = run_benchmark(
            &spec,
            Scale::Test,
            42,
            Mechanism::Full,
            GpuConfig::dac23_baseline(),
        );
        assert!(r.total_cycles > 0, "{}", spec.name);
    }
}
