//! Integration tests for the Section III characterization pipeline
//! (workload traces → analysis), asserting the paper's Observations.

use orchestrated_tlb_repro::analysis::{
    inter_intensities, intra_intensities, reuse_distance_samples, tb_translation_streams, Cdf,
    DistanceOptions, ReuseBins,
};
use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::Mechanism;
use orchestrated_tlb_repro::workloads::{registry, Scale};

/// Observation 1: every benchmark shows more intra-TB than inter-TB
/// translation reuse.
#[test]
fn observation1_intra_dominates_inter() {
    for spec in registry() {
        let wl = spec.generate(Scale::Small, 42);
        let streams = tb_translation_streams(&wl, 128);
        let intra = ReuseBins::from_intensities(&intra_intensities(&streams));
        let inter = ReuseBins::from_intensities(&inter_intensities(&streams, Some(48)));
        assert!(
            intra.mean_midpoint() > inter.mean_midpoint(),
            "{}: intra {:.2} must exceed inter {:.2}",
            spec.name,
            intra.mean_midpoint(),
            inter.mean_midpoint()
        );
    }
}

/// Observation 2: the matrix/vector benchmarks (atax, bicg, gemm, mvt)
/// have sizable inter-TB reuse — most pairs share at least 20% of their
/// translations (bins b2..b5) through the common vectors/tiles — while a
/// large share of graph-benchmark pairs sit in b1 (under 20% shared,
/// despite hub pages).
#[test]
fn observation2_matrix_kernels_share_across_tbs() {
    let inter_bins = |name: &str| -> ReuseBins {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let wl = spec.generate(Scale::Small, 42);
        let streams = tb_translation_streams(&wl, 128);
        ReuseBins::from_intensities(&inter_intensities(&streams, Some(48)))
    };
    for name in ["atax", "bicg", "mvt", "gemm"] {
        let b = inter_bins(name).fractions();
        let sizable: f64 = b[1..].iter().sum();
        assert!(
            sizable > 0.5,
            "{name}: most TB pairs should share >20% of translations, got {b:?}"
        );
    }
    // bfs is the paper's named example: 87% of its TB pairs in b1.
    let b = inter_bins("bfs").fractions();
    assert!(
        b[0] > 0.3,
        "bfs: a large share of TB pairs should sit in b1, got {b:?}"
    );
}

/// §III-D takeaway: removing inter-TB interference (one TB per SM)
/// shifts the intra-TB reuse-distance CDF left for the TLB-sensitive
/// benchmarks.
#[test]
fn interference_stretches_reuse_distances() {
    for name in ["bfs", "color", "pagerank"] {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let cdf = |cap: Option<u8>| -> Cdf {
            let wl = spec.generate(Scale::Small, 42);
            let r = Mechanism::Baseline
                .simulator(GpuConfig::dac23_baseline())
                .with_translation_trace(true)
                .with_max_concurrent_tbs(cap)
                .run(wl);
            Cdf::from_samples(reuse_distance_samples(
                &r.translation_trace,
                DistanceOptions::intra_tb(),
            ))
        };
        let concurrent = cdf(None);
        let isolated = cdf(Some(1));
        assert!(
            isolated.at(64) > concurrent.at(64),
            "{name}: CDF at the 64-entry reach should rise without interference \
             ({:.2} vs {:.2})",
            isolated.at(64),
            concurrent.at(64)
        );
    }
}

/// The translation streams that the analysis derives from the static
/// trace agree in volume with what the simulator actually issues.
#[test]
fn static_and_dynamic_translation_counts_agree() {
    let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
    let wl = spec.generate(Scale::Test, 42);
    let static_count: usize = tb_translation_streams(&wl, 128)
        .iter()
        .map(|s| s.len())
        .sum();
    let wl = spec.generate(Scale::Test, 42);
    let r = Mechanism::Baseline
        .simulator(GpuConfig::dac23_baseline())
        .with_translation_trace(true)
        .run(wl);
    assert_eq!(static_count as u64, r.l1_tlb_aggregate().accesses());
    assert_eq!(static_count, r.translation_trace.len());
}

/// Reuse-distance samples and CDF are deterministic end to end.
#[test]
fn characterization_is_deterministic() {
    let spec = registry().into_iter().find(|s| s.name == "color").unwrap();
    let run = || -> Vec<u64> {
        let wl = spec.generate(Scale::Test, 42);
        let r = Mechanism::Baseline
            .simulator(GpuConfig::dac23_baseline())
            .with_translation_trace(true)
            .run(wl);
        reuse_distance_samples(&r.translation_trace, DistanceOptions::intra_tb())
    };
    assert_eq!(run(), run());
}
