//! End-to-end integration tests asserting the qualitative *shapes* of the
//! paper's results, spanning all crates. Run at `Scale::Small` — the
//! calibrated evaluation regime (Test scale is too small to thrash a
//! 64-entry TLB).

use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::{run_benchmark, Mechanism};
use orchestrated_tlb_repro::workloads::{registry, BenchmarkSpec, Scale};

fn spec(name: &str) -> BenchmarkSpec {
    registry()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} in registry"))
}

fn run(name: &str, m: Mechanism) -> orchestrated_tlb_repro::gpu_sim::SimReport {
    run_benchmark(&spec(name), Scale::Small, 42, m, GpuConfig::dac23_baseline())
}

/// Figure 2 shape: the matrix-vector kernels have poor baseline L1 TLB
/// hit rates that a 256-entry TLB largely fixes.
#[test]
fn larger_tlb_rescues_thrashing_benchmarks() {
    for name in ["atax", "mvt"] {
        let base = run(name, Mechanism::Baseline);
        let big = run(name, Mechanism::LargeTlb);
        assert!(
            base.l1_tlb_hit_rate() < 0.5,
            "{name} baseline should thrash: {:.2}",
            base.l1_tlb_hit_rate()
        );
        assert!(
            big.l1_tlb_hit_rate() > base.l1_tlb_hit_rate() + 0.3,
            "{name}: 256 entries should help substantially"
        );
    }
}

/// Figure 2 shape: gemm already has a high hit rate at 64 entries.
#[test]
fn gemm_baseline_hit_rate_is_high() {
    let r = run("gemm", Mechanism::Baseline);
    assert!(
        r.l1_tlb_hit_rate() > 0.9,
        "gemm hit rate {:.2}",
        r.l1_tlb_hit_rate()
    );
}

/// Figure 10/11 shape: the full proposal improves the matrix-vector
/// family substantially (hit rate and time).
#[test]
fn full_scheme_wins_on_matrix_vector_family() {
    for name in ["atax", "bicg", "mvt"] {
        let base = run(name, Mechanism::Baseline);
        let ours = run(name, Mechanism::Full);
        assert!(
            ours.l1_tlb_hit_rate() > base.l1_tlb_hit_rate() + 0.2,
            "{name}: hit rate should rise"
        );
        assert!(
            ours.total_cycles < base.total_cycles,
            "{name}: time should drop ({} vs {})",
            ours.total_cycles,
            base.total_cycles
        );
    }
}

/// Figure 10 shape: naive partitioning *degrades* the graph benchmarks'
/// L1 hit rates (fewer entries per TB), and dynamic sharing recovers a
/// visible part of the loss.
#[test]
fn partitioning_hurts_graph_apps_and_sharing_recovers() {
    for name in ["bfs", "pagerank"] {
        let base = run(name, Mechanism::Baseline);
        let part = run(name, Mechanism::SchedPartition);
        let full = run(name, Mechanism::Full);
        assert!(
            part.l1_tlb_hit_rate() < base.l1_tlb_hit_rate() - 0.2,
            "{name}: partitioning should degrade hit rate"
        );
        assert!(
            full.l1_tlb_hit_rate() > part.l1_tlb_hit_rate() + 0.05,
            "{name}: sharing should recover part of the loss ({:.3} vs {:.3})",
            full.l1_tlb_hit_rate(),
            part.l1_tlb_hit_rate()
        );
    }
}

/// The headline: geomean execution time of the full proposal across all
/// ten benchmarks improves by ~12.5% (we accept 7%..20%).
#[test]
fn headline_geomean_improvement() {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for s in registry() {
        let base = run_benchmark(&s, Scale::Small, 42, Mechanism::Baseline, GpuConfig::dac23_baseline());
        let ours = run_benchmark(&s, Scale::Small, 42, Mechanism::Full, GpuConfig::dac23_baseline());
        log_sum += ours.normalized_time(&base).ln();
        n += 1;
    }
    let geomean = (log_sum / n as f64).exp();
    assert!(
        geomean < 0.93 && geomean > 0.80,
        "geomean normalized time {geomean:.3} should be a substantial win (~0.875 measured; paper: 0.875)"
    );
}

/// nw is compute-bound: its execution time barely moves whatever the TLB
/// does (paper §V, final observation).
#[test]
fn nw_is_compute_bound() {
    let base = run("nw", Mechanism::Baseline);
    let ours = run("nw", Mechanism::Full);
    let ratio = ours.normalized_time(&base);
    assert!(
        (0.95..=1.06).contains(&ratio),
        "nw time should be roughly flat, got {ratio:.3}"
    );
}

/// The scheduler never throttles parallelism: every TB is placed and
/// completes under every mechanism.
#[test]
fn all_tbs_complete_under_every_mechanism() {
    let expected: u32 = spec("color")
        .generate(Scale::Test, 42)
        .kernels()
        .iter()
        .map(|k| k.tbs.len() as u32)
        .sum();
    for m in Mechanism::all() {
        let r = run_benchmark(
            &spec("color"),
            Scale::Test,
            42,
            m,
            GpuConfig::dac23_baseline(),
        );
        let placed: u32 = r.tb_placements.iter().sum();
        assert_eq!(placed, expected, "{m}: all TBs placed exactly once");
    }
}

/// Determinism across the whole pipeline: two identical runs agree
/// bit-for-bit on every counter.
#[test]
fn end_to_end_determinism() {
    let a = run("mis", Mechanism::Full);
    let b = run("mis", Mechanism::Full);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.transactions, b.transactions);
    assert_eq!(a.l1_tlb_aggregate(), b.l1_tlb_aggregate());
    assert_eq!(a.l2_tlb, b.l2_tlb);
    assert_eq!(a.demand_faults, b.demand_faults);
    assert_eq!(a.tb_placements, b.tb_placements);
}
