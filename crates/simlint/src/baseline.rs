//! Checked-in violation baseline with a monotonic ratchet.
//!
//! The baseline records, per `(file, rule)`, how many findings are
//! currently tolerated. CI compares a fresh run against it:
//!
//! * any `(file, rule)` whose count **grows** (or appears) is a
//!   regression — the build fails and the message names the exact
//!   delta plus the command that refreshes the baseline once the new
//!   findings are triaged;
//! * counts that **shrink** are improvements — the run still passes,
//!   but the ratchet message suggests tightening the baseline so the
//!   head-room cannot be silently re-spent.
//!
//! Format is line-oriented and diff-friendly:
//!
//! ```text
//! # simlint baseline (tolerated findings; ratchet is monotonic down)
//! <count> <rule> <file>
//! ```

use crate::Violation;
use std::collections::BTreeMap;

/// Command CI suggests for refreshing the file.
pub const UPDATE_CMD: &str = "cargo run -p simlint -- --update-baseline";

/// Tolerated finding counts per `(file, rule)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// Outcome of comparing a run against the baseline.
pub struct Ratchet {
    /// Human-readable regression lines; non-empty means *fail*.
    pub regressions: Vec<String>,
    /// `(file, rule)` entries whose counts shrank — candidates for a
    /// baseline tightening.
    pub improvements: Vec<String>,
}

impl Baseline {
    /// Summarizes a violation list into baseline counts.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *counts.entry((v.file.clone(), v.rule.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Parses the on-disk format; unknown or malformed lines are errors
    /// so a corrupted baseline cannot silently tolerate everything.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (Some(n), Some(rule), Some(file)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<count> <rule> <file>`, got `{line}`",
                    lineno + 1
                ));
            };
            let n: usize = n
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{n}`", lineno + 1))?;
            counts.insert((file.to_string(), rule.to_string()), n);
        }
        Ok(Baseline { counts })
    }

    /// Renders the on-disk format (sorted, stable).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# simlint baseline (tolerated findings; ratchet is monotonic down)\n\
             # refresh after triage with: cargo run -p simlint -- --update-baseline\n",
        );
        for ((file, rule), n) in &self.counts {
            out.push_str(&format!("{n} {rule} {file}\n"));
        }
        out
    }

    /// Total tolerated findings.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Compares a fresh run (`current`) against this baseline.
    pub fn ratchet(&self, current: &Baseline) -> Ratchet {
        let mut regressions = Vec::new();
        let mut improvements = Vec::new();
        for ((file, rule), &n) in &current.counts {
            let allowed = self
                .counts
                .get(&(file.clone(), rule.clone()))
                .copied()
                .unwrap_or(0);
            if n > allowed {
                regressions.push(format!(
                    "{file}: {rule} grew {allowed} -> {n}; fix the new finding(s) or, after \
                     triage, refresh with `{UPDATE_CMD}`"
                ));
            } else if n < allowed {
                improvements.push(format!(
                    "{file}: {rule} shrank {allowed} -> {n}; tighten the baseline with \
                     `{UPDATE_CMD}` to lock it in"
                ));
            }
        }
        for ((file, rule), &allowed) in &self.counts {
            if allowed > 0 && !current.counts.contains_key(&(file.clone(), rule.clone())) {
                improvements.push(format!(
                    "{file}: {rule} shrank {allowed} -> 0; tighten the baseline with \
                     `{UPDATE_CMD}` to lock it in"
                ));
            }
        }
        regressions.sort();
        improvements.sort();
        improvements.dedup();
        Ratchet {
            regressions,
            improvements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, rule: &str, line: usize) -> Violation {
        Violation {
            file: file.into(),
            line,
            rule: rule.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn round_trips_through_text() {
        let b = Baseline::from_violations(&[
            v("a.rs", "hash-iter", 1),
            v("a.rs", "hash-iter", 9),
            v("b.rs", "wall-clock", 3),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn growth_is_a_regression_and_shrink_an_improvement() {
        let base = Baseline::parse("1 hash-iter a.rs\n2 wall-clock b.rs\n").unwrap();
        let current = Baseline::from_violations(&[
            v("a.rs", "hash-iter", 1),
            v("a.rs", "hash-iter", 2),
            v("b.rs", "wall-clock", 3),
        ]);
        let r = base.ratchet(&current);
        assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
        assert!(r.regressions[0].contains("hash-iter grew 1 -> 2"));
        assert_eq!(r.improvements.len(), 1, "{:?}", r.improvements);
        assert!(r.improvements[0].contains("wall-clock shrank 2 -> 1"));
    }

    #[test]
    fn vanished_entries_suggest_tightening() {
        let base = Baseline::parse("2 lossy-cast gone.rs\n").unwrap();
        let r = base.ratchet(&Baseline::default());
        assert!(r.regressions.is_empty());
        assert_eq!(r.improvements.len(), 1);
        assert!(r.improvements[0].contains("shrank 2 -> 0"));
    }

    #[test]
    fn new_file_rule_pair_regresses_from_zero() {
        let base = Baseline::default();
        let r = base.ratchet(&Baseline::from_violations(&[v("new.rs", "phase-a-shared", 5)]));
        assert_eq!(r.regressions.len(), 1);
        assert!(r.regressions[0].contains("grew 0 -> 1"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Baseline::parse("nonsense\n").is_err());
        assert!(Baseline::parse("x hash-iter a.rs\n").is_err());
        assert!(Baseline::parse("# comment\n\n3 r f.rs\n").is_ok());
    }
}
