//! Workspace item graph: who defines what, and an approximate call/use
//! graph between items.
//!
//! Resolution strategy (deliberately over-approximate, never panicking):
//!
//! * `Type::method(...)` and `Self::method(...)` — resolved precisely to
//!   methods of that type; `module::func(...)`/`crate_name::func(...)`
//!   to functions in that crate/module. A qualified call whose qualifier
//!   is known but has no matching workspace item produces **no** edge
//!   (it targets std or a vendored shim).
//! * `recv.method(...)` — when the receiver is `self.field`,
//!   `param.field` or a typed parameter, the field/parameter type is
//!   looked up (struct fields are parsed); a `dyn Trait` type resolves
//!   to every impl of that trait plus the trait's default methods.
//!   Unresolvable receivers fall back to *every* method of that name.
//! * `func(...)` — every free function of that name.
//!
//! The graph also records, per item, every workspace type/trait name the
//! item's tokens mention (`uses`) — the phase-safety analysis keys on
//! those — and the string literals in the item span (taint sinks like
//! `"BENCH_engine.json"` live in literals).

use crate::lexer::TokKind;
use crate::parser::{pick_type_ident, Item, ItemKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Index of an item in [`Workspace::items`].
pub type ItemId = usize;

/// The parsed workspace with its item graph.
pub struct Workspace {
    /// Parsed files, in deterministic (sorted-path) order.
    pub files: Vec<ParsedFile>,
    /// Flattened items as `(file index, item)`.
    pub items: Vec<(usize, Item)>,
    /// Call edges, per item.
    pub calls: Vec<Vec<ItemId>>,
    /// Workspace type/trait names each item's span mentions.
    pub uses: Vec<BTreeSet<String>>,
    /// All struct/enum names.
    pub types: BTreeSet<String>,
    /// All trait names.
    pub traits: BTreeSet<String>,
    fn_by_name: BTreeMap<String, Vec<ItemId>>,
    fields_of: BTreeMap<String, BTreeMap<String, String>>,
    impls_of_trait: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Builds the graph from parsed files (already path-sorted).
    pub fn build(files: Vec<ParsedFile>) -> Workspace {
        let mut items = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for it in &f.items {
                items.push((fi, it.clone()));
            }
        }
        let mut types = BTreeSet::new();
        let mut traits = BTreeSet::new();
        let mut fn_by_name: BTreeMap<String, Vec<ItemId>> = BTreeMap::new();
        let mut fields_of: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        let mut impls_of_trait: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (id, (_, it)) in items.iter().enumerate() {
            match it.kind {
                ItemKind::Struct => {
                    types.insert(it.name.clone());
                    let fields = fields_of.entry(it.name.clone()).or_default();
                    for f in &it.fields {
                        fields.insert(f.name.clone(), pick_type_ident(&f.ty_idents));
                    }
                }
                ItemKind::Enum => {
                    types.insert(it.name.clone());
                }
                ItemKind::Trait => {
                    traits.insert(it.name.clone());
                }
                ItemKind::Impl => {
                    if let (Some(tr), Some(ty)) = (&it.trait_name, &it.self_ty) {
                        impls_of_trait
                            .entry(tr.clone())
                            .or_default()
                            .insert(ty.clone());
                    }
                }
                ItemKind::Fn => {
                    fn_by_name.entry(it.name.clone()).or_default().push(id);
                }
                _ => {}
            }
        }
        let mut ws = Workspace {
            files,
            items,
            calls: Vec::new(),
            uses: Vec::new(),
            types,
            traits,
            fn_by_name,
            fields_of,
            impls_of_trait,
        };
        for id in 0..ws.items.len() {
            let (c, u) = ws.scan_item(id);
            ws.calls.push(c);
            ws.uses.push(u);
        }
        ws
    }

    /// The item's file (workspace-relative path).
    pub fn rel(&self, id: ItemId) -> &str {
        &self.files[self.items[id].0].rel
    }

    /// The item's crate name.
    pub fn krate(&self, id: ItemId) -> &str {
        &self.files[self.items[id].0].krate
    }

    /// The item itself.
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id].1
    }

    /// Display name: `Type::method` for methods, the plain name otherwise.
    pub fn qual_name(&self, id: ItemId) -> String {
        let it = self.item(id);
        match &it.self_ty {
            Some(ty) if it.kind == ItemKind::Fn => format!("{ty}::{}", it.name),
            _ => it.name.clone(),
        }
    }

    /// Methods named `name` on type `ty` (resolving `dyn Trait` types to
    /// every impl of the trait plus trait defaults).
    fn methods_on(&self, ty: &str, name: &str) -> Vec<ItemId> {
        let Some(cands) = self.fn_by_name.get(name) else {
            return Vec::new();
        };
        if self.traits.contains(ty) {
            let impls = self.impls_of_trait.get(ty);
            return cands
                .iter()
                .copied()
                .filter(|&id| {
                    let it = self.item(id);
                    match &it.self_ty {
                        Some(s) => {
                            s == ty || impls.map(|set| set.contains(s)).unwrap_or(false)
                        }
                        None => false,
                    }
                })
                .collect();
        }
        cands
            .iter()
            .copied()
            .filter(|&id| self.item(id).self_ty.as_deref() == Some(ty))
            .collect()
    }

    /// All methods (items with a self type) named `name`.
    fn any_method(&self, name: &str) -> Vec<ItemId> {
        self.fn_by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.item(id).self_ty.is_some())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All free functions named `name`.
    fn free_fns(&self, name: &str) -> Vec<ItemId> {
        self.fn_by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.item(id).self_ty.is_none())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True when `qual` plausibly names the crate or module of `id`
    /// (crate `mem-hier` matches qualifier `mem_hier`; a file
    /// `walker.rs` matches qualifier `walker`).
    fn in_module(&self, id: ItemId, qual: &str) -> bool {
        let krate = self.krate(id).replace('-', "_");
        if krate == qual {
            return true;
        }
        let rel = self.rel(id);
        rel.rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .map(|stem| stem == qual)
            .unwrap_or(false)
    }

    /// Whether `qual` is a known crate or module name anywhere.
    fn known_module(&self, qual: &str) -> bool {
        self.files.iter().any(|f| {
            f.krate.replace('-', "_") == qual
                || f.rel
                    .rsplit('/')
                    .next()
                    .and_then(|n| n.strip_suffix(".rs"))
                    .map(|stem| stem == qual)
                    .unwrap_or(false)
        })
    }

    /// Scans one item's span for call edges and type uses.
    fn scan_item(&self, id: ItemId) -> (Vec<ItemId>, BTreeSet<String>) {
        let (fi, it) = &self.items[id];
        let toks = &self.files[*fi].toks;
        let mut edges: BTreeSet<ItemId> = BTreeSet::new();
        let mut used: BTreeSet<String> = BTreeSet::new();
        if !matches!(it.kind, ItemKind::Fn | ItemKind::Const) {
            // Containers are scanned via their contained fns; structs and
            // traits still contribute type-name uses below for phase
            // checks, but no call edges.
            if matches!(it.kind, ItemKind::Impl | ItemKind::Mod | ItemKind::Trait) {
                return (Vec::new(), used);
            }
        }
        let (start, end) = it.span;
        let params: BTreeMap<&str, String> = it
            .params
            .iter()
            .map(|p| (p.name.as_str(), pick_type_ident(&p.ty_idents)))
            .collect();
        let self_fields = it
            .self_ty
            .as_deref()
            .and_then(|ty| self.fields_of.get(ty));

        let txt = |k: usize| -> &str {
            toks.get(k).map(|t| t.text.as_str()).unwrap_or("")
        };
        let is_id = |k: usize| toks.get(k).map(|t| t.kind == TokKind::Ident).unwrap_or(false);

        for k in start..end.min(toks.len()) {
            let t = &toks[k];
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            if self.types.contains(name) || self.traits.contains(name) {
                used.insert(name.to_string());
            }
            if txt(k + 1) != "(" {
                continue;
            }
            if KEYWORDS.contains(&name) {
                continue;
            }
            // Declaration, not a call.
            if txt(k.wrapping_sub(1)) == "fn" {
                continue;
            }
            let targets: Vec<ItemId> = if txt(k.wrapping_sub(1)) == ":" && txt(k.wrapping_sub(2)) == ":" {
                // Qualified: `Qual::name(` — the qualifier is the ident
                // before the `::`.
                let qual = if is_id(k.wrapping_sub(3)) {
                    txt(k.wrapping_sub(3)).to_string()
                } else {
                    String::new()
                };
                self.resolve_qualified(&qual, name, it)
            } else if txt(k.wrapping_sub(1)) == "." {
                self.resolve_method_call(toks, k, it, &params, self_fields)
            } else if txt(k.wrapping_sub(1)) == "!" {
                continue; // macro invocation
            } else {
                self.free_fns(name)
            };
            for t in targets {
                if t != id {
                    edges.insert(t);
                }
            }
        }
        (edges.into_iter().collect(), used)
    }

    fn resolve_qualified(&self, qual: &str, name: &str, caller: &Item) -> Vec<ItemId> {
        if qual.is_empty() {
            return Vec::new();
        }
        if qual == "Self" {
            if let Some(ty) = caller.self_ty.as_deref() {
                return self.methods_on(ty, name);
            }
            return Vec::new();
        }
        if self.types.contains(qual) || self.traits.contains(qual) {
            return self.methods_on(qual, name);
        }
        if self.known_module(qual) {
            return self
                .fn_by_name
                .get(name)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&t| self.in_module(t, qual))
                        .collect()
                })
                .unwrap_or_default();
        }
        // Unknown qualifier (std, Vec, vendored shims): no edge.
        Vec::new()
    }

    /// Resolves `recv.name(` at token `k` (which holds `name`).
    fn resolve_method_call(
        &self,
        toks: &[crate::lexer::Tok],
        k: usize,
        caller: &Item,
        params: &BTreeMap<&str, String>,
        self_fields: Option<&BTreeMap<String, String>>,
    ) -> Vec<ItemId> {
        let name = toks[k].text.as_str();
        let txt = |i: usize| -> &str { toks.get(i).map(|t| t.text.as_str()).unwrap_or("") };
        // Patterns (right to left before the dot):
        //   self . f . name (      → type of field f on Self
        //   self . name (          → method on Self
        //   p . f . name (         → type of field f on param p's type
        //   p . name (             → method on param p's type
        let recv_ty: Option<String> = if txt(k.wrapping_sub(2)) == "self" {
            caller.self_ty.clone()
        } else if toks.get(k.wrapping_sub(2)).map(|t| t.kind) == Some(TokKind::Ident) {
            let base = txt(k.wrapping_sub(2));
            if txt(k.wrapping_sub(3)) == "." {
                let owner_ty: Option<String> = if txt(k.wrapping_sub(4)) == "self" {
                    caller.self_ty.clone()
                } else if toks.get(k.wrapping_sub(4)).map(|t| t.kind) == Some(TokKind::Ident) {
                    params.get(txt(k.wrapping_sub(4))).cloned()
                } else {
                    None
                };
                owner_ty
                    .and_then(|o| self.fields_of.get(&o))
                    .and_then(|fs| fs.get(base))
                    .cloned()
            } else {
                // Bare ident receiver: a parameter, or a local we cannot
                // type. Treat a self-field shadowing name as a field too.
                params.get(base).cloned().or_else(|| {
                    self_fields.and_then(|fs| fs.get(base)).cloned()
                })
            }
        } else {
            None
        };
        match recv_ty {
            Some(ty) if !ty.is_empty() && (self.types.contains(&ty) || self.traits.contains(&ty)) => {
                self.methods_on(&ty, name)
            }
            // Receiver typed but not a workspace type (u64, Vec, ...):
            // only a same-name workspace method could still be the
            // target through auto-deref tricks; stay conservative and
            // emit nothing for known-foreign receivers.
            Some(_) => Vec::new(),
            None => self.any_method(name),
        }
    }

    /// BFS over call edges from `roots`; returns each reached item
    /// mapped to its BFS parent (roots map to themselves).
    pub fn reach(&self, roots: &[ItemId]) -> BTreeMap<ItemId, ItemId> {
        let mut parent: BTreeMap<ItemId, ItemId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<ItemId> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &next in &self.calls[id] {
                if self.item(next).is_test {
                    continue;
                }
                if parent.insert(next, id).is_none() {
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// The call path root → … → `id` implied by a [`Workspace::reach`]
    /// parent map, as qualified names (truncated in the middle when
    /// longer than five hops).
    pub fn path_to(&self, parents: &BTreeMap<ItemId, ItemId>, id: ItemId) -> String {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
            if chain.len() > 64 {
                break;
            }
        }
        chain.reverse();
        let names: Vec<String> = chain.iter().map(|&i| format!("`{}`", self.qual_name(i))).collect();
        if names.len() > 5 {
            format!(
                "{} → … → {}",
                names[..2].join(" → "),
                names[names.len() - 2..].join(" → ")
            )
        } else {
            names.join(" → ")
        }
    }

    /// Items satisfying a predicate (convenience for analyses).
    pub fn items_where<F: Fn(&Workspace, ItemId) -> bool>(&self, f: F) -> Vec<ItemId> {
        (0..self.items.len()).filter(|&id| f(self, id)).collect()
    }

    /// Parsed fields of a struct, as `name -> picked type ident`.
    pub fn typed_fields(&self, ty: &str) -> Option<&BTreeMap<String, String>> {
        self.fields_of.get(ty)
    }
}

/// Identifiers that look like calls but never are.
const KEYWORDS: [&str; 18] = [
    "if", "while", "match", "for", "loop", "return", "fn", "let", "in", "as", "move", "ref",
    "mut", "else", "break", "continue", "where", "unsafe",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| parse_file(rel, lex(src)))
                .collect(),
        )
    }

    fn find(ws: &Workspace, name: &str) -> ItemId {
        (0..ws.items.len())
            .find(|&i| ws.qual_name(i) == name)
            .unwrap_or_else(|| panic!("no item {name}"))
    }

    #[test]
    fn free_and_qualified_calls_resolve() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { helper(); Foo::make(); }\n\
             pub fn helper() {}\n\
             pub struct Foo;\nimpl Foo { pub fn make() {} pub fn other() {} }\n",
        )]);
        let top = find(&w, "top");
        let targets: Vec<String> = w.calls[top].iter().map(|&t| w.qual_name(t)).collect();
        assert!(targets.contains(&"helper".to_string()));
        assert!(targets.contains(&"Foo::make".to_string()));
        assert!(!targets.contains(&"Foo::other".to_string()));
    }

    #[test]
    fn field_typed_receivers_resolve_precisely() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct Inner;\nimpl Inner { pub fn go(&self) {} }\n\
             pub struct Other;\nimpl Other { pub fn go(&self) {} }\n\
             pub struct Holder { x: Inner }\n\
             impl Holder { pub fn run(&self) { self.x.go(); } }\n",
        )]);
        let run = find(&w, "Holder::run");
        let targets: Vec<String> = w.calls[run].iter().map(|&t| w.qual_name(t)).collect();
        assert_eq!(targets, vec!["Inner::go".to_string()]);
    }

    #[test]
    fn dyn_trait_fields_resolve_to_all_impls_and_defaults() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub trait Buf { fn hit(&self); fn opt(&self) -> bool { false } }\n\
             pub struct A;\nimpl Buf for A { fn hit(&self) {} }\n\
             pub struct B;\nimpl Buf for B { fn hit(&self) {} }\n\
             pub struct H { b: Box<dyn Buf> }\n\
             impl H { pub fn go(&self) { self.b.hit(); self.b.opt(); } }\n",
        )]);
        let go = find(&w, "H::go");
        let targets: Vec<String> = w.calls[go].iter().map(|&t| w.qual_name(t)).collect();
        assert!(targets.contains(&"A::hit".to_string()));
        assert!(targets.contains(&"B::hit".to_string()));
        assert!(targets.contains(&"Buf::opt".to_string()), "{targets:?}");
    }

    #[test]
    fn module_qualified_calls_filter_by_crate() {
        let w = ws(&[
            ("crates/mem-hier/src/drain.rs", "pub fn drain_sharded() {}\n"),
            ("crates/a/src/lib.rs", "pub fn drain_sharded() {}\n\
              pub fn top() { mem_hier::drain_sharded(); }\n"),
        ]);
        let top = find(&w, "top");
        let t = w.calls[top].clone();
        assert_eq!(t.len(), 1);
        assert_eq!(w.rel(t[0]), "crates/mem-hier/src/drain.rs");
    }

    #[test]
    fn foreign_qualifiers_produce_no_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct X;\nimpl X { pub fn new() -> X { X } }\n\
             pub fn top() { let _v: Vec<u8> = Vec::new(); }\n",
        )]);
        let top = find(&w, "top");
        assert!(w.calls[top].is_empty(), "Vec::new must not resolve to X::new");
    }

    #[test]
    fn reach_and_paths() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\n\
             #[cfg(test)]\nmod tests { pub fn t() { super::c(); } }\n",
        )]);
        let a = find(&w, "a");
        let c = find(&w, "c");
        let r = w.reach(&[a]);
        assert!(r.contains_key(&c));
        assert_eq!(w.path_to(&r, c), "`a` → `b` → `c`");
    }

    #[test]
    fn uses_record_workspace_types() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub struct SharedBack;\npub fn f() { let _x: Option<&SharedBack> = None; }\n",
        )]);
        let f = find(&w, "f");
        assert!(w.uses[f].contains("SharedBack"));
    }
}
