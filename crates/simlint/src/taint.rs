//! Nondeterminism taint: does any nondeterministic source influence a
//! result sink?
//!
//! *Sinks* are items that produce externally visible results: anything
//! naming `SimReport`, a CSV writer (identifier containing `csv`), or a
//! string literal marking an emitted artifact (`BENCH_*`, `*.csv`,
//! golden files). *Sources* are the places nondeterminism enters:
//! `HashMap`/`HashSet` iteration (bound through let/param/field names),
//! wall-clock reads, unseeded RNG, channel arrival-order observation
//! (`try_recv`/`recv_timeout`/`try_iter`), and pointer-identity values
//! (`as *const`/`as_ptr`).
//!
//! The *influence set* is the transitive callee closure of the sink
//! items: every function whose return values or effects a sink can
//! package into a result. A source inside the influence set is a
//! violation — this computes what the hand-maintained `RESULT_CRATES`
//! list used to approximate, and [`result_crates`] exposes the computed
//! set so tests can cross-check the legacy list against the graph.
//!
//! A source token on a line waived for the corresponding lexical rule
//! (`hash-iter`, `wall-clock`, `unseeded-rng`) — or for
//! `taint-reaches-report` itself — is not seeded: the allow's reason
//! already justifies the nondeterminism. Such allows count as *used* for
//! the stale-allow analysis.

use crate::graph::{ItemId, Workspace};
use crate::lexer::TokKind;
use crate::parser::ItemKind;
use crate::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// Rule name this module reports under.
pub const RULE: &str = "taint-reaches-report";

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain",
    "into_values",
];

/// Allow lookup: `(rel, line) -> rules waived there`.
pub type Allows = BTreeMap<(String, usize), BTreeSet<String>>;

/// One seeded source occurrence.
struct Source {
    line: usize,
    /// Short source-kind label for the message.
    kind: &'static str,
    detail: String,
}

/// Analysis result: violations plus the allow sites the seeding
/// consumed (for stale-allow accounting).
pub struct TaintReport {
    /// `taint-reaches-report` findings (pre-allow-suppression).
    pub violations: Vec<Violation>,
    /// Allow sites used up by suppressing a seed: `(rel, line, rule)`.
    pub used_allows: Vec<(String, usize, String)>,
    /// Crates containing result-influencing items.
    pub result_crates: BTreeSet<String>,
    /// Files containing result-influencing items.
    pub result_files: BTreeSet<String>,
}

/// Runs the taint analysis over the workspace.
pub fn analyze(ws: &Workspace, allows: &Allows) -> TaintReport {
    let sinks = sink_items(ws);
    let influence = ws.reach(&sinks);
    let mut used_allows = Vec::new();
    let mut violations = Vec::new();

    let mut result_crates = BTreeSet::new();
    let mut result_files = BTreeSet::new();
    for &id in influence.keys() {
        result_crates.insert(ws.krate(id).to_string());
        result_files.insert(ws.rel(id).to_string());
    }

    for &id in influence.keys() {
        let it = ws.item(id);
        if it.is_test || !matches!(it.kind, ItemKind::Fn | ItemKind::Const) {
            continue;
        }
        let rel = ws.rel(id);
        for src in find_sources(ws, id, allows, &mut used_allows) {
            let path = ws.path_to(&influence, id);
            violations.push(Violation {
                file: rel.to_string(),
                line: src.line,
                rule: RULE.into(),
                message: format!(
                    "{} in `{}` can flow into a result sink ({}): {}",
                    src.kind,
                    ws.qual_name(id),
                    path,
                    src.detail
                ),
            });
        }
    }
    violations.sort();
    violations.dedup();
    TaintReport {
        violations,
        used_allows,
        result_crates,
        result_files,
    }
}

/// Items that serialize or emit results. The linter's own crate is
/// excluded: its sources *name* the markers in order to detect them.
pub fn sink_items(ws: &Workspace) -> Vec<ItemId> {
    ws.items_where(|ws, id| {
        if ws.krate(id) == "simlint" {
            return false;
        }
        let it = ws.item(id);
        if it.is_test || !matches!(it.kind, ItemKind::Fn | ItemKind::Const) {
            return false;
        }
        sink_marker(ws, id).is_some()
    })
}

/// Why an item is a sink, if it is one.
pub fn sink_marker(ws: &Workspace, id: ItemId) -> Option<String> {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let (start, end) = it.span;
    for t in &toks[start.min(toks.len())..end.min(toks.len())] {
        match t.kind {
            TokKind::Ident => {
                if t.text == "SimReport" {
                    return Some("names SimReport".into());
                }
                if t.text.to_ascii_lowercase().contains("csv") {
                    return Some(format!("CSV writer `{}`", t.text));
                }
                if t.text.to_ascii_lowercase().contains("tracewriter") {
                    return Some(format!("trace writer `{}`", t.text));
                }
            }
            TokKind::Str => {
                if t.text.contains("BENCH_") {
                    return Some(format!("emits \"{}\"", first_marker(&t.text, "BENCH_")));
                }
                if t.text.contains(".csv") {
                    return Some("writes a .csv artifact".into());
                }
                if t.text.contains("golden") {
                    return Some("produces a golden file".into());
                }
                if t.text.contains(".trace") {
                    return Some("writes a .trace artifact".into());
                }
            }
            _ => {}
        }
    }
    None
}

fn first_marker(s: &str, pat: &str) -> String {
    let start = s.find(pat).unwrap_or(0);
    s[start..].chars().take(24).collect()
}

/// Lexical rule whose allow also waives a given source kind.
fn lexical_twin(kind: &'static str) -> Option<&'static str> {
    match kind {
        "HashMap/HashSet iteration" => Some("hash-iter"),
        "wall-clock read" => Some("wall-clock"),
        "unseeded RNG" => Some("unseeded-rng"),
        _ => None,
    }
}

/// Scans one item for nondeterminism sources, honoring allows.
fn find_sources(
    ws: &Workspace,
    id: ItemId,
    allows: &Allows,
    used: &mut Vec<(String, usize, String)>,
) -> Vec<Source> {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let rel = ws.rel(id).to_string();
    let (start, end) = it.span;
    let end = end.min(toks.len());
    let txt = |k: usize| -> &str { toks.get(k).map(|t| t.text.as_str()).unwrap_or("") };
    let is_id = |k: usize| toks.get(k).map(|t| t.kind == TokKind::Ident).unwrap_or(false);

    // Waived check: returns true (and records the use) when the line
    // carries an allow for the taint rule or the lexical twin.
    let mut waived = |line: usize, kind: &'static str| -> bool {
        let mut any = false;
        for rule in [Some(RULE), lexical_twin(kind)].into_iter().flatten() {
            if allows
                .get(&(rel.clone(), line))
                .is_some_and(|set| set.contains(rule))
            {
                used.push((rel.clone(), line, rule.to_string()));
                any = true;
            }
        }
        any
    };

    let mut out = Vec::new();

    // --- Hash iteration: bind names, then look for iteration uses. ---
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    for p in &it.params {
        if p.ty_idents.iter().any(|t| t == "HashMap" || t == "HashSet") {
            hash_names.insert(p.name.clone());
        }
    }
    let hash_fields: BTreeSet<String> = it
        .self_ty
        .as_deref()
        .and_then(|ty| ws.typed_fields(ty))
        .map(|fs| {
            fs.iter()
                .filter(|(_, ty)| ty.as_str() == "HashMap" || ty.as_str() == "HashSet")
                .map(|(n, _)| n.clone())
                .collect()
        })
        .unwrap_or_default();
    for (k, t) in toks.iter().enumerate().take(end).skip(start) {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if waived(t.line, "HashMap/HashSet iteration") {
            continue;
        }
        // Backscan for the binding this mention annotates or initializes.
        let lo = k.saturating_sub(14).max(start);
        for j in (lo..k).rev() {
            if txt(j) == "let" {
                let mut m = j + 1;
                while matches!(txt(m), "mut" | "ref") {
                    m += 1;
                }
                if is_id(m) {
                    hash_names.insert(txt(m).to_string());
                }
                break;
            }
            if txt(j) == ":" && txt(j + 1) != ":" && txt(j.wrapping_sub(1)) != ":" && is_id(j.wrapping_sub(1)) {
                hash_names.insert(txt(j.wrapping_sub(1)).to_string());
                break;
            }
            if matches!(txt(j), ";" | "{" | "}") {
                break;
            }
        }
    }
    if !hash_names.is_empty() || !hash_fields.is_empty() {
        for (k, t) in toks.iter().enumerate().take(end).skip(start) {
            if t.kind != TokKind::Ident {
                continue;
            }
            // `name.iter()` / `self.field.iter()`.
            if ITER_METHODS.contains(&t.text.as_str()) && txt(k + 1) == "(" && txt(k.wrapping_sub(1)) == "." {
                let recv = txt(k.wrapping_sub(2));
                let hit = hash_names.contains(recv)
                    || (txt(k.wrapping_sub(3)) == "."
                        && txt(k.wrapping_sub(4)) == "self"
                        && hash_fields.contains(recv));
                if hit && !waived(t.line, "HashMap/HashSet iteration") {
                    out.push(Source {
                        line: t.line,
                        kind: "HashMap/HashSet iteration",
                        detail: format!(
                            "`.{}()` observes randomized iteration order; use BTreeMap/BTreeSet \
                             or collect-and-sort first",
                            t.text
                        ),
                    });
                }
            }
            // `for x in [&mut] name` / `for x in &self.field`. When the
            // collection is followed by `.`, the method-call arm above
            // already covers it (`for x in m.iter()`): skip to avoid a
            // double report.
            if t.text == "in" {
                let mut j = k + 1;
                while matches!(txt(j), "&" | "mut") {
                    j += 1;
                }
                let (recv, after) = if txt(j) == "self" && txt(j + 1) == "." {
                    (txt(j + 2).to_string(), j + 3)
                } else {
                    (txt(j).to_string(), j + 1)
                };
                let line = toks[k].line;
                let hit = txt(after) != "."
                    && (hash_names.contains(&recv)
                        || (txt(j) == "self" && hash_fields.contains(&recv)));
                if hit && !waived(line, "HashMap/HashSet iteration") {
                    out.push(Source {
                        line,
                        kind: "HashMap/HashSet iteration",
                        detail: format!("`for … in {recv}` iterates in randomized order"),
                    });
                }
            }
        }
    }

    // --- Token-level sources. ---
    for (k, t) in toks.iter().enumerate().take(end).skip(start) {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime"
                if !waived(t.line, "wall-clock read") => {
                    out.push(Source {
                        line: t.line,
                        kind: "wall-clock read",
                        detail: format!("`{}` depends on host timing", t.text),
                    });
                }
            "thread_rng" | "from_entropy" | "OsRng"
                if !waived(t.line, "unseeded RNG") => {
                    out.push(Source {
                        line: t.line,
                        kind: "unseeded RNG",
                        detail: format!("`{}` draws OS entropy", t.text),
                    });
                }
            "random" if txt(k.wrapping_sub(1)) == ":" && txt(k.wrapping_sub(3)) == "rand"
                && !waived(t.line, "unseeded RNG") => {
                    out.push(Source {
                        line: t.line,
                        kind: "unseeded RNG",
                        detail: "`rand::random` uses the thread-local OS-seeded generator".into(),
                    });
                }
            "try_recv" | "recv_timeout" | "try_iter"
                if !waived(t.line, "channel arrival order") => {
                    out.push(Source {
                        line: t.line,
                        kind: "channel arrival order",
                        detail: format!(
                            "`{}` observes cross-thread arrival order, which the OS scheduler \
                             controls",
                            t.text
                        ),
                    });
                }
            "as_ptr" if txt(k + 1) == "("
                && !waived(t.line, "pointer-identity value") => {
                    out.push(Source {
                        line: t.line,
                        kind: "pointer-identity value",
                        detail: "`.as_ptr()` yields allocator-dependent addresses".into(),
                    });
                }
            "as" if txt(k + 1) == "*" && matches!(txt(k + 2), "const" | "mut")
                && !waived(t.line, "pointer-identity value") => {
                    out.push(Source {
                        line: t.line,
                        kind: "pointer-identity value",
                        detail: "raw-pointer casts yield allocator-dependent addresses".into(),
                    });
                }
            _ => {}
        }
    }
    out
}

/// The computed result-crate set (crates containing items the sinks can
/// reach). This is what `RESULT_CRATES` approximates by hand.
pub fn result_crates(ws: &Workspace) -> BTreeSet<String> {
    let sinks = sink_items(ws);
    let influence = ws.reach(&sinks);
    influence.keys().map(|&id| ws.krate(id).to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| parse_file(rel, lex(src)))
                .collect(),
        )
    }

    const REPORT: &str = "pub struct SimReport { pub cycles: u64 }\n\
        pub fn emit(r: &SimReport) -> u64 { summarize(r) }\n";

    #[test]
    fn hash_iteration_reaching_a_sink_is_flagged() {
        let w = ws(&[
            ("crates/app/src/report.rs", REPORT),
            (
                "crates/app/src/calc.rs",
                "use std::collections::HashMap;\n\
                 pub fn summarize(_r: &super::SimReport) -> u64 {\n\
                     let m: HashMap<u64, u64> = HashMap::new();\n\
                     let mut s = 0;\n\
                     for (_k, v) in m.iter() { s += v; }\n\
                     s\n\
                 }\n",
            ),
        ]);
        let r = analyze(&w, &Allows::new());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, RULE);
        assert_eq!(r.violations[0].file, "crates/app/src/calc.rs");
        assert!(r.violations[0].message.contains("HashMap/HashSet iteration"));
        assert!(r.result_crates.contains("app"));
    }

    #[test]
    fn keyed_access_only_is_not_a_source() {
        let w = ws(&[
            ("crates/app/src/report.rs", REPORT),
            (
                "crates/app/src/calc.rs",
                "use std::collections::HashMap;\n\
                 pub fn summarize(_r: &super::SimReport) -> u64 {\n\
                     let m: HashMap<u64, u64> = HashMap::new();\n\
                     *m.get(&1).unwrap_or(&0)\n\
                 }\n",
            ),
        ]);
        assert!(analyze(&w, &Allows::new()).violations.is_empty());
    }

    #[test]
    fn source_not_reachable_from_any_sink_is_quiet() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn unrelated() { let m: HashMap<u8,u8> = HashMap::new(); for _ in m.iter() {} }\n",
        )]);
        assert!(analyze(&w, &Allows::new()).violations.is_empty());
    }

    #[test]
    fn wall_clock_behind_a_call_chain_is_found_with_path() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "pub struct SimReport;\n\
             pub fn emit() -> SimReport { mid(); SimReport }\n\
             pub fn mid() { leaf(); }\n\
             pub fn leaf() { let _t = std::time::Instant::now(); }\n",
        )]);
        let r = analyze(&w, &Allows::new());
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("`emit` → `mid` → `leaf`"), "{}", r.violations[0].message);
    }

    #[test]
    fn allows_suppress_seeding_and_are_recorded_used() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "pub struct SimReport;\n\
             pub fn emit() -> SimReport { let _t = std::time::Instant::now(); SimReport }\n",
        )]);
        let mut allows = Allows::new();
        allows
            .entry(("crates/app/src/lib.rs".into(), 2))
            .or_default()
            .insert("wall-clock".into());
        let r = analyze(&w, &allows);
        assert!(r.violations.is_empty());
        assert_eq!(r.used_allows, vec![("crates/app/src/lib.rs".into(), 2, "wall-clock".into())]);
    }

    #[test]
    fn channel_order_and_ptr_identity_are_sources() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "pub struct SimReport;\n\
             pub fn emit(rx: &std::sync::mpsc::Receiver<u64>) -> SimReport {\n\
                 while let Ok(_v) = rx.try_recv() {}\n\
                 SimReport\n\
             }\n\
             pub fn emit2(v: &[u8]) -> SimReport { let _p = v.as_ptr(); SimReport }\n",
        )]);
        let r = analyze(&w, &Allows::new());
        let kinds: Vec<&str> = r.violations.iter().map(|v| v.message.split(" in ").next().unwrap()).collect();
        assert_eq!(kinds.len(), 2, "{:?}", r.violations);
        assert!(kinds.iter().any(|k| k.contains("channel arrival order")));
        assert!(kinds.iter().any(|k| k.contains("pointer-identity")));
    }

    #[test]
    fn hash_field_iteration_on_self_is_a_source() {
        let w = ws(&[(
            "crates/app/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub struct SimReport;\n\
             pub struct Agg { counts: HashMap<u64, u64> }\n\
             impl Agg {\n\
                 pub fn emit(&self) -> SimReport { for _ in self.counts.keys() {} SimReport }\n\
             }\n",
        )]);
        let r = analyze(&w, &Allows::new());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }
}
