//! Item-level Rust parser over the [`crate::lexer`] token stream.
//!
//! This is not a full grammar: it recognizes the item skeleton the graph
//! analyses need — functions (with parameter names/types), impl blocks
//! (self type + trait), traits (default methods count as methods of the
//! trait), structs (field name → type), enums, modules, consts/statics —
//! and records each item's token span so later passes can scan bodies.
//! Everything it does not understand is skipped tolerantly; because
//! literals are single tokens, brace/paren/bracket matching is exact.
//!
//! Design constraint: std-only and offline, like the rest of simlint.

use crate::lexer::{Lexed, Tok, TokKind};

/// Item classification.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// Free function, method, or trait default method.
    Fn,
    /// Struct definition (fields recorded).
    Struct,
    /// Enum definition.
    Enum,
    /// Trait definition (its methods are separate [`ItemKind::Fn`] items).
    Trait,
    /// `impl` block (its methods are separate [`ItemKind::Fn`] items).
    Impl,
    /// Module with a body.
    Mod,
    /// `const` or `static` item.
    Const,
    /// `type` alias.
    TypeAlias,
    /// `macro_rules!` definition.
    MacroDef,
}

/// One struct field.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// All identifier tokens of the field's type (e.g. `Box`, `dyn`,
    /// `TranslationBuffer` for `Box<dyn TranslationBuffer>`).
    pub ty_idents: Vec<String>,
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`self` for receivers, empty for pattern params).
    pub name: String,
    /// Identifier tokens of the annotated type (empty for `self`).
    pub ty_idents: Vec<String>,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// Item name (empty for impl blocks).
    pub name: String,
    /// For methods: the type the surrounding `impl`/`trait` is for.
    pub self_ty: Option<String>,
    /// For methods inside `impl Trait for Type`: the trait.
    pub trait_name: Option<String>,
    /// 1-based first line.
    pub line: usize,
    /// 1-based last line.
    pub end_line: usize,
    /// Token span `[start, end)` over the file's token vector covering
    /// the whole item (signature and body).
    pub span: (usize, usize),
    /// Token span of the body block (braces included); `span.1..span.1`
    /// when the item has no body (trait method signatures, consts).
    pub body: (usize, usize),
    /// Function parameters (kind == Fn).
    pub params: Vec<Param>,
    /// Struct fields (kind == Struct).
    pub fields: Vec<Field>,
    /// True when the item sits under `#[test]`/`#[cfg(test)]` (directly
    /// or via an enclosing module).
    pub is_test: bool,
}

/// A parsed source file.
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Owning crate name (directory under `crates/`, or the root package).
    pub krate: String,
    /// Full token stream (literals included).
    pub toks: Vec<Tok>,
    /// `//` comments.
    pub comments: Vec<crate::lexer::LineComment>,
    /// All items, containers before their contents.
    pub items: Vec<Item>,
}

/// Crate name from a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_string(),
        _ => "orchestrated-tlb-repro".to_string(),
    }
}

/// Parses one lexed file.
pub fn parse_file(rel: &str, lexed: Lexed) -> ParsedFile {
    let Lexed { toks, comments } = lexed;
    let mut items = Vec::new();
    let end = toks.len();
    parse_items(&toks, 0, end, None, None, false, &mut items);
    ParsedFile {
        rel: rel.to_string(),
        krate: crate_of(rel),
        toks,
        comments,
        items,
    }
}

fn text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

fn is_ident(toks: &[Tok], i: usize) -> bool {
    toks.get(i).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
}

/// Index just past the bracket matching `toks[open]` (which must be one
/// of `(`/`[`/`{`). Literal tokens cannot contain stray brackets.
fn match_bracket(toks: &[Tok], open: usize, end: usize) -> usize {
    let (o, c) = match text(toks, open) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        let t = text(toks, i);
        if t == o {
            depth += 1;
        } else if t == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Index just past a generics list starting at `toks[i] == "<"`.
/// `->` arrows inside bounds (`F: Fn() -> u64`) do not close angles.
fn skip_generics(toks: &[Tok], mut i: usize, end: usize) -> usize {
    if text(toks, i) != "<" {
        return i;
    }
    let mut depth = 0isize;
    while i < end {
        match text(toks, i) {
            "<" => depth += 1,
            ">"
                if text(toks, i.wrapping_sub(1)) != "-" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            "(" | "[" | "{" => {
                i = match_bracket(toks, i, end);
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Wrappers skipped when choosing the significant identifier of a type.
const TYPE_WRAPPERS: [&str; 14] = [
    "Box", "Arc", "Rc", "RefCell", "Cell", "Option", "Vec", "VecDeque", "Mutex", "OnceLock",
    "dyn", "mut", "impl", "std",
];

/// The identifier tokens of a type token slice, in order.
fn type_idents(toks: &[Tok], start: usize, end: usize) -> Vec<String> {
    toks[start.min(toks.len())..end.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// Picks the most significant identifier of a type: the first one that
/// is not a known wrapper (`Box<dyn TranslationBuffer>` →
/// `TranslationBuffer`), falling back to the last identifier.
pub fn pick_type_ident(ty_idents: &[String]) -> String {
    ty_idents
        .iter()
        .find(|t| !TYPE_WRAPPERS.contains(&t.as_str()))
        .or_else(|| ty_idents.last())
        .cloned()
        .unwrap_or_default()
}

/// Parses the items in `toks[start..end]`. `ctx` carries the enclosing
/// impl/trait (self type + trait name); `in_test` marks enclosing
/// `#[cfg(test)]` containers.
fn parse_items(
    toks: &[Tok],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    in_test: bool,
    out: &mut Vec<Item>,
) {
    let mut i = start;
    while i < end {
        let item_start = i;
        // Attributes: `#[...]` / `#![...]`; a `test` identifier anywhere
        // inside marks the item as test code (`#[test]`, `#[cfg(test)]`).
        let mut is_test = in_test;
        while text(toks, i) == "#" {
            let mut j = i + 1;
            if text(toks, j) == "!" {
                j += 1;
            }
            if text(toks, j) != "[" {
                break;
            }
            let close = match_bracket(toks, j, end);
            if toks[j + 1..close.saturating_sub(1)]
                .iter()
                .any(|t| t.text == "test")
            {
                is_test = true;
            }
            i = close;
        }
        // Visibility and modifiers.
        loop {
            match text(toks, i) {
                "pub" => {
                    i += 1;
                    if text(toks, i) == "(" {
                        i = match_bracket(toks, i, end);
                    }
                }
                "async" | "unsafe" | "default" => i += 1,
                "extern" if text(toks, i + 1) == "fn" || toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Str) => {
                    // `extern "C" fn` / `extern fn`.
                    i += 1;
                    if toks.get(i).map(|t| t.kind) == Some(TokKind::Str) {
                        i += 1;
                    }
                }
                "const" if text(toks, i + 1) == "fn" => i += 1,
                _ => break,
            }
        }

        match text(toks, i) {
            "fn" => {
                let name = text(toks, i + 1).to_string();
                let sig_line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = i + 2;
                j = skip_generics(toks, j, end);
                let mut params = Vec::new();
                let mut params_end = j;
                if text(toks, j) == "(" {
                    params_end = match_bracket(toks, j, end);
                    params = parse_params(toks, j + 1, params_end - 1, self_ty);
                }
                // Return type / where clause up to `{` or `;`.
                let mut k = params_end;
                while k < end && text(toks, k) != "{" && text(toks, k) != ";" {
                    if matches!(text(toks, k), "(" | "[") {
                        k = match_bracket(toks, k, end);
                    } else {
                        k += 1;
                    }
                }
                let (body, item_end) = if text(toks, k) == "{" {
                    let be = match_bracket(toks, k, end);
                    ((k, be), be)
                } else {
                    ((k, k), (k + 1).min(end))
                };
                out.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    self_ty: self_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    line: sig_line,
                    end_line: last_line(toks, item_start, item_end),
                    span: (item_start, item_end),
                    body,
                    params,
                    fields: Vec::new(),
                    is_test,
                });
                i = item_end;
            }
            "struct" => {
                let name = text(toks, i + 1).to_string();
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = skip_generics(toks, i + 2, end);
                if text(toks, j) == "where" {
                    while j < end && text(toks, j) != "{" && text(toks, j) != ";" {
                        j += 1;
                    }
                }
                let mut fields = Vec::new();
                let item_end;
                if text(toks, j) == "{" {
                    let be = match_bracket(toks, j, end);
                    fields = parse_fields(toks, j + 1, be - 1);
                    item_end = be;
                } else if text(toks, j) == "(" {
                    let pe = match_bracket(toks, j, end);
                    item_end = if text(toks, pe) == ";" { pe + 1 } else { pe };
                } else {
                    item_end = (j + 1).min(end); // unit struct `;`
                }
                out.push(Item {
                    kind: ItemKind::Struct,
                    name: name.clone(),
                    self_ty: None,
                    trait_name: None,
                    line,
                    end_line: last_line(toks, item_start, item_end),
                    span: (item_start, item_end),
                    body: (item_end, item_end),
                    params: Vec::new(),
                    fields,
                    is_test,
                });
                i = item_end;
            }
            "enum" | "union" => {
                let kw = text(toks, i);
                let name = text(toks, i + 1).to_string();
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = skip_generics(toks, i + 2, end);
                while j < end && text(toks, j) != "{" {
                    j += 1;
                }
                let item_end = match_bracket(toks, j, end);
                if kw == "enum" {
                    out.push(Item {
                        kind: ItemKind::Enum,
                        name,
                        self_ty: None,
                        trait_name: None,
                        line,
                        end_line: last_line(toks, item_start, item_end),
                        span: (item_start, item_end),
                        body: (j, item_end),
                        params: Vec::new(),
                        fields: Vec::new(),
                        is_test,
                    });
                }
                i = item_end;
            }
            "trait" => {
                let name = text(toks, i + 1).to_string();
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = skip_generics(toks, i + 2, end);
                while j < end && text(toks, j) != "{" && text(toks, j) != ";" {
                    j += 1;
                }
                let item_end = if text(toks, j) == "{" {
                    match_bracket(toks, j, end)
                } else {
                    (j + 1).min(end)
                };
                out.push(Item {
                    kind: ItemKind::Trait,
                    name: name.clone(),
                    self_ty: None,
                    trait_name: None,
                    line,
                    end_line: last_line(toks, item_start, item_end),
                    span: (item_start, item_end),
                    body: (j, item_end),
                    params: Vec::new(),
                    fields: Vec::new(),
                    is_test,
                });
                if text(toks, j) == "{" {
                    // Trait default methods are methods of the trait.
                    parse_items(toks, j + 1, item_end - 1, Some(&name), None, is_test, out);
                }
                i = item_end;
            }
            "impl" => {
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = skip_generics(toks, i + 1, end);
                // Header: `[Trait for] Type [where ...] {`.
                let head_start = j;
                let mut for_pos = None;
                while j < end && text(toks, j) != "{" && text(toks, j) != "where" {
                    if text(toks, j) == "for" {
                        for_pos = Some(j);
                    }
                    if text(toks, j) == "<" {
                        j = skip_generics(toks, j, end);
                        continue;
                    }
                    if matches!(text(toks, j), "(" | "[") {
                        j = match_bracket(toks, j, end);
                        continue;
                    }
                    j += 1;
                }
                let header_end = j;
                while j < end && text(toks, j) != "{" {
                    j += 1;
                }
                let item_end = match_bracket(toks, j, end);
                let (imp_trait, imp_ty) = match for_pos {
                    Some(f) => (
                        Some(pick_type_ident(&type_idents(toks, head_start, f))),
                        pick_type_ident(&type_idents(toks, f + 1, header_end)),
                    ),
                    None => (None, pick_type_ident(&type_idents(toks, head_start, header_end))),
                };
                out.push(Item {
                    kind: ItemKind::Impl,
                    name: imp_ty.clone(),
                    self_ty: Some(imp_ty.clone()),
                    trait_name: imp_trait.clone(),
                    line,
                    end_line: last_line(toks, item_start, item_end),
                    span: (item_start, item_end),
                    body: (j, item_end),
                    params: Vec::new(),
                    fields: Vec::new(),
                    is_test,
                });
                if text(toks, j) == "{" {
                    parse_items(
                        toks,
                        j + 1,
                        item_end - 1,
                        Some(&imp_ty),
                        imp_trait.as_deref(),
                        is_test,
                        out,
                    );
                }
                i = item_end;
            }
            "mod" => {
                let name = text(toks, i + 1).to_string();
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let j = i + 2;
                if text(toks, j) == "{" {
                    let item_end = match_bracket(toks, j, end);
                    out.push(Item {
                        kind: ItemKind::Mod,
                        name,
                        self_ty: None,
                        trait_name: None,
                        line,
                        end_line: last_line(toks, item_start, item_end),
                        span: (item_start, item_end),
                        body: (j, item_end),
                        params: Vec::new(),
                        fields: Vec::new(),
                        is_test,
                    });
                    parse_items(toks, j + 1, item_end - 1, None, None, is_test, out);
                    i = item_end;
                } else {
                    i = skip_to_semi(toks, j, end);
                }
            }
            "use" | "extern" => {
                i = skip_to_semi(toks, i + 1, end);
            }
            "const" | "static" | "type" => {
                let kind = if text(toks, i) == "type" {
                    ItemKind::TypeAlias
                } else {
                    ItemKind::Const
                };
                let mut j = i + 1;
                if text(toks, j) == "mut" {
                    j += 1;
                }
                let name = text(toks, j).to_string();
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let item_end = skip_to_semi(toks, j, end);
                out.push(Item {
                    kind,
                    name,
                    self_ty: self_ty.map(str::to_string),
                    trait_name: None,
                    line,
                    end_line: last_line(toks, item_start, item_end),
                    span: (item_start, item_end),
                    body: (j, item_end),
                    params: Vec::new(),
                    fields: Vec::new(),
                    is_test,
                });
                i = item_end;
            }
            "macro_rules" => {
                let name = text(toks, i + 2).to_string();
                let line = toks.get(i).map(|t| t.line).unwrap_or(1);
                let mut j = i + 3;
                while j < end && !matches!(text(toks, j), "{" | "(" | "[") {
                    j += 1;
                }
                let item_end = match_bracket(toks, j, end);
                out.push(Item {
                    kind: ItemKind::MacroDef,
                    name,
                    self_ty: None,
                    trait_name: None,
                    line,
                    end_line: last_line(toks, item_start, item_end),
                    span: (item_start, item_end),
                    body: (j, item_end),
                    params: Vec::new(),
                    fields: Vec::new(),
                    is_test,
                });
                i = item_end;
            }
            _ => {
                // Unknown construct: advance one token (skipping bracket
                // groups whole so we cannot desynchronize on `}`).
                if matches!(text(toks, i), "{" | "(" | "[") {
                    i = match_bracket(toks, i, end);
                } else {
                    i += 1;
                }
            }
        }
    }
}

fn last_line(toks: &[Tok], start: usize, end: usize) -> usize {
    toks[start..end.min(toks.len())]
        .last()
        .or_else(|| toks.get(start))
        .map(|t| t.line)
        .unwrap_or(1)
}

/// Skips to just past the next `;` at bracket depth 0 (const blocks and
/// array types may contain braces/brackets).
fn skip_to_semi(toks: &[Tok], mut i: usize, end: usize) -> usize {
    while i < end {
        match text(toks, i) {
            ";" => return i + 1,
            "{" | "(" | "[" => i = match_bracket(toks, i, end),
            _ => i += 1,
        }
    }
    end
}

/// Parses `fn` parameters between (exclusive) parens.
fn parse_params(toks: &[Tok], start: usize, end: usize, self_ty: Option<&str>) -> Vec<Param> {
    let mut params = Vec::new();
    let mut i = start;
    let mut seg_start = start;
    let mut angle = 0isize;
    while i <= end {
        let at_end = i == end;
        let t = if at_end { "," } else { text(toks, i) };
        match t {
            "<" => angle += 1,
            ">" if text(toks, i.wrapping_sub(1)) != "-" => angle -= 1,
            "(" | "[" | "{" => {
                i = match_bracket(toks, i, end);
                continue;
            }
            "," if angle == 0 => {
                if let Some(p) = parse_param(toks, seg_start, i, self_ty) {
                    params.push(p);
                }
                seg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    params
}

fn parse_param(toks: &[Tok], start: usize, end: usize, self_ty: Option<&str>) -> Option<Param> {
    if start >= end {
        return None;
    }
    // Receiver: any segment containing a bare `self` before a `:`.
    let colon = (start..end).find(|&k| {
        text(toks, k) == ":" && text(toks, k + 1) != ":" && text(toks, k.wrapping_sub(1)) != ":"
    });
    let name_end = colon.unwrap_or(end);
    if toks[start..name_end].iter().any(|t| t.text == "self") {
        return Some(Param {
            name: "self".into(),
            ty_idents: self_ty.map(|t| vec![t.to_string()]).unwrap_or_default(),
        });
    }
    let colon = colon?;
    // Binding name: last identifier before the colon (`mut x` → `x`);
    // tuple/struct patterns get no name.
    let name = toks[start..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
        .map(|t| t.text.clone())?;
    Some(Param {
        name,
        ty_idents: type_idents(toks, colon + 1, end),
    })
}

/// Parses named struct fields between (exclusive) braces.
fn parse_fields(toks: &[Tok], start: usize, end: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        // Skip attributes and visibility.
        while text(toks, i) == "#" && text(toks, i + 1) == "[" {
            i = match_bracket(toks, i + 1, end);
        }
        if text(toks, i) == "pub" {
            i += 1;
            if text(toks, i) == "(" {
                i = match_bracket(toks, i, end);
            }
        }
        if !is_ident(toks, i) || text(toks, i + 1) != ":" {
            i += 1;
            continue;
        }
        let name = text(toks, i).to_string();
        let ty_start = i + 2;
        // Type runs to the next comma at depth 0.
        let mut j = ty_start;
        let mut angle = 0isize;
        while j < end {
            match text(toks, j) {
                "<" => angle += 1,
                ">" if text(toks, j.wrapping_sub(1)) != "-" => angle -= 1,
                "(" | "[" | "{" => {
                    j = match_bracket(toks, j, end);
                    continue;
                }
                "," if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        fields.push(Field {
            name,
            ty_idents: type_idents(toks, ty_start, j),
        });
        i = j + 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", lex(src))
    }

    #[test]
    fn parses_free_fn_and_method() {
        let p = parse(
            "pub fn free(a: u64, mut b: Vpn) -> u64 { a }\n\
             struct Foo { tlb: Box<dyn TranslationBuffer>, n: usize }\n\
             impl Foo {\n    pub fn m(&mut self, x: Ppn) -> bool { self.n > 0 }\n}\n\
             impl Buffer for Foo {\n    fn insert(&mut self, req: &Req, ppn: Ppn) {}\n}\n",
        );
        let free = p.items.iter().find(|i| i.name == "free").unwrap();
        assert_eq!(free.kind, ItemKind::Fn);
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[1].name, "b");
        assert_eq!(free.params[1].ty_idents, vec!["Vpn"]);

        let foo = p.items.iter().find(|i| i.kind == ItemKind::Struct).unwrap();
        assert_eq!(foo.fields.len(), 2);
        assert_eq!(foo.fields[0].name, "tlb");
        assert_eq!(pick_type_ident(&foo.fields[0].ty_idents), "TranslationBuffer");

        let m = p.items.iter().find(|i| i.name == "m").unwrap();
        assert_eq!(m.self_ty.as_deref(), Some("Foo"));
        assert_eq!(m.params[0].name, "self");

        let ins = p.items.iter().find(|i| i.name == "insert").unwrap();
        assert_eq!(ins.self_ty.as_deref(), Some("Foo"));
        assert_eq!(ins.trait_name.as_deref(), Some("Buffer"));
        assert_eq!(ins.params.last().unwrap().name, "ppn");
    }

    #[test]
    fn generics_with_fn_bounds_do_not_desync() {
        let p = parse(
            "fn apply<F: Fn(u64) -> u64>(f: F) -> u64 { f(1) }\nfn after() {}\n",
        );
        assert!(p.items.iter().any(|i| i.name == "apply"));
        assert!(p.items.iter().any(|i| i.name == "after"));
    }

    #[test]
    fn trait_default_methods_belong_to_the_trait() {
        let p = parse(
            "pub trait Buf {\n    fn must(&self);\n    fn opt(&self) -> bool { false }\n}\n",
        );
        let opt = p.items.iter().find(|i| i.name == "opt").unwrap();
        assert_eq!(opt.self_ty.as_deref(), Some("Buf"));
        assert!(opt.body.1 > opt.body.0, "default body recorded");
        let must = p.items.iter().find(|i| i.name == "must").unwrap();
        assert_eq!(must.body.0, must.body.1, "signature-only method has no body");
    }

    #[test]
    fn cfg_test_marks_items_recursively() {
        let p = parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n",
        );
        assert!(!p.items.iter().find(|i| i.name == "live").unwrap().is_test);
        assert!(p.items.iter().find(|i| i.name == "helper").unwrap().is_test);
        assert!(p.items.iter().find(|i| i.name == "t").unwrap().is_test);
    }

    #[test]
    fn impl_header_variants() {
        let p = parse(
            "impl<'a, T: Clone> Wrapper<'a, T> {\n    fn a(&self) {}\n}\n\
             impl Stage for L2TlbStage {\n    fn access(&mut self) {}\n}\n",
        );
        let a = p.items.iter().find(|i| i.name == "a").unwrap();
        assert_eq!(a.self_ty.as_deref(), Some("Wrapper"));
        let acc = p.items.iter().find(|i| i.name == "access").unwrap();
        assert_eq!(acc.self_ty.as_deref(), Some("L2TlbStage"));
        assert_eq!(acc.trait_name.as_deref(), Some("Stage"));
    }

    #[test]
    fn consts_and_macros_do_not_derail() {
        let p = parse(
            "const TABLE: [u8; 4] = [0, 1, 2, 3];\nstatic mut X: u64 = 0;\n\
             macro_rules! m { ($x:expr) => { $x } }\nfn tail() {}\n",
        );
        assert!(p.items.iter().any(|i| i.name == "TABLE" && i.kind == ItemKind::Const));
        assert!(p.items.iter().any(|i| i.name == "X"));
        assert!(p.items.iter().any(|i| i.kind == ItemKind::MacroDef && i.name == "m"));
        assert!(p.items.iter().any(|i| i.name == "tail"));
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/mem-hier/src/split.rs"), "mem-hier");
        assert_eq!(crate_of("src/lib.rs"), "orchestrated-tlb-repro");
    }
}
