//! CLI for the workspace linter. See the crate docs ([`simlint`]) for the
//! rule set.
//!
//! ```text
//! cargo run -p simlint                      # text output; ratchets against
//!                                           # simlint.baseline when present
//! cargo run -p simlint -- --format json     # also: sarif, github
//! cargo run -p simlint -- --list-rules      # markdown rules table
//! cargo run -p simlint -- --update-baseline # rewrite simlint.baseline
//! cargo run -p simlint -- --no-baseline     # plain exit-1-on-any-finding
//! cargo run -p simlint -- --root <dir> --baseline <file>
//! ```
//!
//! With a baseline, the exit code is driven by the ratchet: regressions
//! (any `(file, rule)` count growing past the baseline) fail; findings
//! already covered by the baseline pass, and shrinking counts suggest a
//! baseline refresh.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: simlint [--format text|json|sarif|github] [--root <workspace-dir>]\n\
         \x20              [--baseline <file>] [--update-baseline] [--no-baseline] [--list-rules]"
    );
    std::process::exit(2);
}

/// Walks upward from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut no_baseline = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "sarif" | "github") => format = f,
                _ => usage(),
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => usage(),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--update-baseline" => update_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                eprintln!("simlint: determinism/phase-safety lints for the simulator workspace");
                usage();
            }
            _ => usage(),
        }
    }

    if list_rules {
        print!("{}", simlint::rules_table_markdown());
        return ExitCode::SUCCESS;
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("simlint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let violations = match simlint::lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("simlint: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("simlint.baseline"));
    if update_baseline {
        let b = simlint::baseline::Baseline::from_violations(&violations);
        if let Err(e) = std::fs::write(&baseline_path, b.render()) {
            eprintln!("simlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "simlint: baseline updated ({} tolerated finding{}) at {}",
            b.total(),
            if b.total() == 1 { "" } else { "s" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    match format.as_str() {
        "json" => print!("{}", simlint::to_json(&violations)),
        "sarif" => print!("{}", simlint::to_sarif(&violations)),
        "github" => print!("{}", simlint::to_github(&violations)),
        _ => {
            for v in &violations {
                println!("{v}");
            }
        }
    }

    // Ratchet against the checked-in baseline when one exists.
    let baseline = if no_baseline {
        None
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match simlint::baseline::Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("simlint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(_) => None,
        }
    };

    match baseline {
        Some(base) => {
            let current = simlint::baseline::Baseline::from_violations(&violations);
            let r = base.ratchet(&current);
            for imp in &r.improvements {
                eprintln!("simlint: note: {imp}");
            }
            for reg in &r.regressions {
                eprintln!("simlint: regression: {reg}");
            }
            eprintln!(
                "simlint: {} finding{} ({} tolerated by baseline), {} regression{} in {}",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" },
                base.total(),
                r.regressions.len(),
                if r.regressions.len() == 1 { "" } else { "s" },
                root.display()
            );
            if r.regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            eprintln!(
                "simlint: {} violation{} in {}",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" },
                root.display()
            );
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
