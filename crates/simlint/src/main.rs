//! CLI for the workspace linter. See the crate docs ([`simlint`]) for the
//! rule set.
//!
//! ```text
//! cargo run -p simlint                # text output, exit 1 on violations
//! cargo run -p simlint -- --format json
//! cargo run -p simlint -- --root /path/to/workspace
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: simlint [--format text|json] [--root <workspace-dir>]");
    std::process::exit(2);
}

/// Walks upward from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => usage(),
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => usage(),
            },
            "--help" | "-h" => {
                eprintln!("simlint: determinism/hot-path lints for the simulator workspace");
                usage();
            }
            _ => usage(),
        }
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("simlint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let violations = match simlint::lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("simlint: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", simlint::to_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
        eprintln!(
            "simlint: {} violation{} in {}",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
            root.display()
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
