//! # simlint — workspace-specific static analysis for the simulator
//!
//! A std-only linter enforcing the determinism and robustness rules this
//! reproduction depends on (see `DESIGN.md`, "Correctness tooling"):
//!
//! * **hash-iter** — no `HashMap`/`HashSet` in result-producing crates
//!   (`core`, `gpu-sim`, `tlb`, `vmem`, `workloads`, `analysis`): their
//!   iteration order is seeded per process and would make figures
//!   non-reproducible.
//! * **wall-clock** — no `Instant`/`SystemTime` outside the vendored
//!   `criterion-compat`: simulated time must come from the engine clock.
//! * **unseeded-rng** — no `thread_rng`/`from_entropy`/`OsRng`/
//!   `rand::random`: every stochastic choice must flow from the workload
//!   seed.
//! * **lossy-cast** — no narrowing `as` cast in expressions that touch
//!   VPN/PPN/address values: `(vpn.raw() as usize) % n` truncates before
//!   the modulo on 32-bit hosts and silently changes set indices.
//! * **hot-unwrap** — no `.unwrap()`/`.expect()` in the engine hot path
//!   (TLB lookup/insert and the cycle loop): a panic mid-simulation is
//!   only acceptable via the sanitizer, which attaches a state dump.
//! * **engine-lock** — no `Mutex`/`RwLock` in the engine hot path: the
//!   two-phase engine's determinism rests on phase A touching only
//!   SM-private state and phase B applying shared state in SM-index
//!   order. A lock in that code means cross-thread sharing whose
//!   acquisition order (and timing) the scheduler controls — exactly the
//!   nondeterminism the phase split exists to exclude. Channels moving
//!   owned data are the sanctioned mechanism.
//! * **engine-spawn** — no `thread::spawn`/`thread::scope` in the engine
//!   hot path: all engine parallelism lives in `gpu-sim/src/pool.rs`
//!   (the persistent worker pool and the sharded-drain scoped executor),
//!   where lane ownership, panic propagation and deterministic merge
//!   order are enforced in one place. An ad-hoc thread anywhere else in
//!   the cycle loop or the hierarchy bypasses those guarantees.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions, `tests/`,
//! `benches/`, `examples/` directories) and the vendored `*-compat`
//! crates are exempt. Individual occurrences can be waived with an escape
//! comment that names the rule and justifies itself:
//!
//! ```text
//! // simlint: allow(lossy-cast, reason = "masked to 5 bits first")
//! ```
//!
//! placed either at the end of the offending line or alone on the line
//! above it. An allow with an unknown rule name or a missing reason is
//! itself a violation.
//!
//! The linter is intentionally lexical: it tokenizes Rust (handling
//! strings, raw strings, char-vs-lifetime quotes, and nested block
//! comments) rather than parsing it, which keeps it dependency-free and
//! fast while remaining exact for the patterns above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Crates whose sources produce simulation results (scope of `hash-iter`
/// and `lossy-cast`).
const RESULT_CRATES: [&str; 8] = [
    "crates/core/",
    "crates/gpu-sim/",
    "crates/mem-hier/",
    "crates/tlb/",
    "crates/vmem/",
    "crates/workloads/",
    "crates/analysis/",
    "crates/sim-oracle/",
];

/// Files forming the engine hot path (scope of `hot-unwrap` and
/// `engine-lock`): the cycle loop plus every TLB organization's
/// lookup/insert code and the private/shared hierarchy split.
const HOT_PATHS: [&str; 10] = [
    "crates/gpu-sim/src/engine.rs",
    "crates/mem-hier/src/drain.rs",
    "crates/mem-hier/src/hierarchy.rs",
    "crates/mem-hier/src/split.rs",
    "crates/mem-hier/src/stages.rs",
    "crates/mem-hier/src/ports.rs",
    "crates/tlb/src/set_assoc.rs",
    "crates/tlb/src/compressed.rs",
    "crates/core/src/partitioned.rs",
    "crates/core/src/way_partitioned.rs",
];

/// Narrowing cast targets that can drop address bits (`usize` included:
/// it is 32-bit on 32-bit hosts).
const NARROW_TYPES: [&str; 9] = [
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32",
];

/// Identifier fragments that mark a value as address-typed for
/// `lossy-cast` (matched case-insensitively as substrings, except `raw`
/// which must match a whole identifier — the accessor on `Vpn`/`Ppn`).
const ADDR_MARKERS: [&str; 4] = ["vpn", "ppn", "addr", "pfn"];

/// Every rule simlint knows about (validated against allow comments).
pub const RULES: [&str; 7] = [
    "hash-iter",
    "wall-clock",
    "unseeded-rng",
    "lossy-cast",
    "hot-unwrap",
    "engine-lock",
    "engine-spawn",
];

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule name (one of [`RULES`], or `bad-allow` for malformed escapes).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A lexed token: its 1-based line and its text (an identifier, a number
/// literal, or a single punctuation character).
#[derive(Clone, Debug)]
struct Token {
    line: usize,
    text: String,
}

/// A `//` comment with its line and whether it had the line to itself.
#[derive(Clone, Debug)]
struct LineComment {
    line: usize,
    /// Text after the `//`.
    text: String,
    /// True when no token precedes the comment on its line.
    standalone: bool,
}

struct Lexed {
    tokens: Vec<Token>,
    comments: Vec<LineComment>,
}

/// Tokenizes Rust source, discarding string/char-literal contents and
/// block comments, and collecting `//` comments for allow parsing.
fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments = Vec::new();
    let n = chars.len();

    // Returns the char at `i + k`, or '\0' past the end.
    let at = |i: usize, k: usize| -> char {
        if i + k < n {
            chars[i + k]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i, 1) == '/' => {
                let standalone = tokens.last().map(|t| t.line) != Some(line);
                let start = i + 2;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(LineComment {
                    line,
                    text: chars[start..i].iter().collect(),
                    standalone,
                });
            }
            '/' if at(i, 1) == '*' => {
                // Nested block comment (discarded; allows must use `//`).
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && at(i, 1) == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && at(i, 1) == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                // String literal: skip with escapes.
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. 'a' is a char, 'a (no closing
                // quote) is a lifetime; '\\x' is always a char.
                if at(i, 1) == '\\' {
                    i += 2; // skip '\ and the escape lead
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if (at(i, 1).is_alphanumeric() || at(i, 1) == '_') && at(i, 2) != '\'' {
                    // Lifetime: consume the quote and the identifier.
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    // 'x' (or the degenerate '''): skip to the close.
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Raw/byte string prefixes: r"..", r#".."#, br".."; byte
                // char b'x'. A raw *identifier* (r#foo) falls through.
                let mut hashes = 0;
                while (text == "r" || text == "br") && at(i, hashes) == '#' {
                    hashes += 1;
                }
                if (text == "r" || text == "br") && at(i, hashes) == '"' {
                    i += hashes + 1;
                    // Scan for " followed by `hashes` #s.
                    'raw: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                        } else if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && at(i, 1 + k) == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                } else if text == "r" && at(i, 0) == '#' {
                    // Raw identifier r#foo: token is the bare name.
                    i += 1;
                    let start = i;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        line,
                        text: chars[start..i].iter().collect(),
                    });
                } else if text == "b" && (at(i, 0) == '"' || at(i, 0) == '\'') {
                    // Byte string/char: reuse the normal handlers by not
                    // emitting a token; the next loop iteration sees the
                    // quote.
                } else {
                    tokens.push(Token { line, text });
                }
            }
            c if c.is_ascii_digit() => {
                // Number literal (also swallows suffixes, hex digits and
                // `0..n` range dots — harmless for these rules).
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    i += 1;
                }
                tokens.push(Token {
                    line,
                    text: chars[start..i].iter().collect(),
                });
            }
            _ => {
                tokens.push(Token {
                    line,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

/// Line ranges (inclusive) covered by `#[test]` / `#[cfg(test)]` items.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]`.
        let mut j = i + 1;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
            j += 1;
        }
        if tokens.get(j).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0;
        let mut close = None;
        for (k, t) in tokens.iter().enumerate().skip(j) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { break };
        let is_test = tokens[j + 1..close].iter().any(|t| t.text == "test");
        if !is_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = close + 1;
        while tokens.get(k).map(|t| t.text.as_str()) == Some("#") {
            let mut depth = 0;
            let mut advanced = false;
            for (m, t) in tokens.iter().enumerate().skip(k + 1) {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k = m + 1;
                            advanced = true;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if !advanced {
                break;
            }
        }
        // The item extends to the matching `}` of its first block, or to
        // a `;` for block-less items (e.g. `#[cfg(test)] use ...;`).
        let mut end_line = tokens[close].line;
        let mut brace_depth = 0;
        let mut m = k;
        while m < tokens.len() {
            match tokens[m].text.as_str() {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = tokens[m].line;
                        break;
                    }
                }
                ";" if brace_depth == 0 => {
                    end_line = tokens[m].line;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        regions.push((tokens[i].line, end_line));
        i = close + 1;
    }
    regions
}

/// Parsed `simlint: allow(rule, reason = "...")` escape.
enum AllowParse {
    /// Not a simlint comment at all.
    NotAllow,
    /// A well-formed allow for `rule`.
    Allow(String),
    /// A malformed allow (its own violation).
    Bad(String),
}

fn parse_allow(comment: &str) -> AllowParse {
    let t = comment.trim();
    let Some(rest) = t.strip_prefix("simlint:") else {
        return AllowParse::NotAllow;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return AllowParse::Bad(format!(
            "malformed simlint comment (expected `allow(<rule>, reason = \"...\")`): {t}"
        ));
    };
    let Some(body) = rest.strip_suffix(')') else {
        return AllowParse::Bad(String::from("unterminated simlint allow (missing `)`)"));
    };
    let mut parts = body.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_string();
    if !RULES.contains(&rule.as_str()) {
        return AllowParse::Bad(format!(
            "unknown rule '{rule}' in simlint allow (known: {})",
            RULES.join(", ")
        ));
    }
    let reason = parts.next().unwrap_or("").trim();
    let has_reason = reason
        .strip_prefix("reason")
        .map(|r| r.trim_start().strip_prefix('=').is_some_and(|v| v.trim().len() > 2))
        .unwrap_or(false);
    if !has_reason {
        return AllowParse::Bad(format!(
            "simlint allow({rule}) without a `reason = \"...\"` justification"
        ));
    }
    AllowParse::Allow(rule)
}

/// True when `rel` (a `/`-separated workspace-relative path) is inside a
/// directory the linter skips entirely.
fn skipped_path(rel: &str) -> bool {
    rel.split('/').any(|seg| {
        seg == "target"
            || seg == "tests"
            || seg == "benches"
            || seg == "examples"
            || seg.ends_with("-compat")
    })
}

/// Lints one source file given its workspace-relative path.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    if skipped_path(rel) {
        return Vec::new();
    }
    let Lexed { tokens, comments } = lex(src);
    let regions = test_regions(&tokens);
    let in_test = |line: usize| regions.iter().any(|&(a, b)| line >= a && line <= b);

    // Allow map: line -> rules waived on that line. A trailing comment
    // waives its own line; a standalone comment waives the next line that
    // carries tokens.
    let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    for c in &comments {
        match parse_allow(&c.text) {
            AllowParse::NotAllow => {}
            AllowParse::Bad(msg) => {
                if !in_test(c.line) {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: c.line,
                        rule: "bad-allow".into(),
                        message: msg,
                    });
                }
            }
            AllowParse::Allow(rule) => {
                let target = if c.standalone {
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line + 1)
                } else {
                    c.line
                };
                allows.entry(target).or_default().insert(rule);
            }
        }
    }

    let allowed =
        |line: usize, rule: &str| allows.get(&line).is_some_and(|set| set.contains(rule));
    let mut push = |line: usize, rule: &str, message: String| {
        if !in_test(line) && !allowed(line, rule) {
            violations.push(Violation {
                file: rel.to_string(),
                line,
                rule: rule.into(),
                message,
            });
        }
    };

    let in_result_crate = RESULT_CRATES.iter().any(|p| rel.starts_with(p));
    let hot = HOT_PATHS.contains(&rel);

    for (i, t) in tokens.iter().enumerate() {
        let prev = |k: usize| {
            i.checked_sub(k)
                .map(|j| tokens[j].text.as_str())
                .unwrap_or("")
        };
        match t.text.as_str() {
            "HashMap" | "HashSet" if in_result_crate => push(
                t.line,
                "hash-iter",
                format!(
                    "{} iteration order is randomized per process; use BTreeMap/BTreeSet \
                     or an index-keyed Vec in result-producing code",
                    t.text
                ),
            ),
            "Instant" | "SystemTime" => push(
                t.line,
                "wall-clock",
                format!(
                    "{} reads wall-clock time; simulation results must depend only on \
                     the simulated cycle counter",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" => push(
                t.line,
                "unseeded-rng",
                format!(
                    "{} draws OS entropy; every random choice must derive from the \
                     workload seed for reproducibility",
                    t.text
                ),
            ),
            "random" if prev(1) == ":" && prev(2) == ":" && prev(3) == "rand" => push(
                t.line,
                "unseeded-rng",
                String::from(
                    "rand::random draws from the thread-local OS-seeded generator; \
                     use the seeded workload RNG",
                ),
            ),
            "as" if in_result_crate => {
                let target = tokens.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
                if NARROW_TYPES.contains(&target) {
                    // Look back a few tokens (within the expression) for
                    // an address-typed identifier.
                    let tainted = (1..=8).map(prev).take_while(|p| !matches!(*p, ";" | "{" | "}" | ""))
                        .any(|p| {
                            let lower = p.to_ascii_lowercase();
                            p == "raw" || ADDR_MARKERS.iter().any(|m| lower.contains(m))
                        });
                    if tainted {
                        push(
                            t.line,
                            "lossy-cast",
                            format!(
                                "narrowing `as {target}` on an address-typed value can \
                                 truncate on 32-bit hosts; do the arithmetic in u64 and \
                                 narrow last (or mask explicitly and allow)"
                            ),
                        );
                    }
                }
            }
            "unwrap" | "expect" if hot && prev(1) == "." => push(
                t.line,
                "hot-unwrap",
                format!(
                    ".{}() in the engine hot path panics without simulator state; \
                     return an error or let the sanitizer report it with a dump",
                    t.text
                ),
            ),
            "spawn" | "scope" if hot && prev(1) == ":" && prev(2) == ":" && prev(3) == "thread" => {
                push(
                    t.line,
                    "engine-spawn",
                    format!(
                        "thread::{} in the engine hot path: all engine parallelism must go \
                         through gpu-sim/src/pool.rs (the worker pool / scoped drain \
                         executor), which owns lane routing, panic propagation and \
                         deterministic merges",
                        t.text
                    ),
                )
            }
            "Mutex" | "RwLock" if hot => push(
                t.line,
                "engine-lock",
                format!(
                    "{} in the engine hot path: the two-phase engine stays deterministic \
                     by construction (SM-private phase A, SM-ordered phase B) — locks \
                     reintroduce scheduler-ordered sharing; move owned data over channels \
                     instead",
                    t.text
                ),
            ),
            _ => {}
        }
    }

    violations.sort();
    violations
}

/// Recursively lints every `.rs` file under `root/src` and
/// `root/crates`, returning findings sorted by `(file, line, rule)`.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files: Vec<(String, std::path::PathBuf)> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, top, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for (rel, path) in files {
        let src = fs::read_to_string(&path)?;
        violations.extend(lint_source(&rel, &src));
    }
    violations.sort();
    Ok(violations)
}

fn collect_rs(
    dir: &Path,
    rel: &str,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let name = e.file_name().to_string_lossy().into_owned();
        let child_rel = format!("{rel}/{name}");
        let ty = e.file_type()?;
        if ty.is_dir() {
            if !skipped_path(&child_rel) {
                collect_rs(&e.path(), &child_rel, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push((child_rel, e.path()));
        }
    }
    Ok(())
}

/// Renders violations as a JSON document (hand-rolled; simlint is
/// dependency-free).
pub fn to_json(violations: &[Violation]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&v.file),
            v.line,
            esc(&v.rule),
            esc(&v.message)
        ));
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"count\": {}\n}}\n", violations.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: &str = "crates/tlb/src/lib.rs"; // in a result crate, not hot

    #[test]
    fn hashmap_in_result_crate_is_flagged() {
        let v = lint_source(F, "use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash-iter");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hashmap_outside_result_crates_is_fine() {
        let v = lint_source("crates/bench/src/lib.rs", "use std::collections::HashMap;\n");
        assert!(v.is_empty());
    }

    #[test]
    fn hashmap_in_cfg_test_module_is_fine() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint_source(F, src).is_empty());
    }

    #[test]
    fn test_attribute_on_single_fn_is_skipped() {
        let src = "#[test]\nfn t() { let _ = std::time::Instant::now(); }\nfn live() { let _ = std::time::Instant::now(); }\n";
        let v = lint_source(F, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].rule, "wall-clock");
    }

    #[test]
    fn wall_clock_and_rng_sources_flagged() {
        let v = lint_source(F, "fn f() { let _ = SystemTime::now(); }\n");
        assert_eq!(v[0].rule, "wall-clock");
        let v = lint_source(F, "fn f() { let mut r = rand::thread_rng(); }\n");
        assert_eq!(v[0].rule, "unseeded-rng");
        let v = lint_source(F, "fn f() -> u32 { rand::random() }\n");
        assert_eq!(v[0].rule, "unseeded-rng");
    }

    #[test]
    fn lossy_cast_needs_address_taint_and_narrow_target() {
        let v = lint_source(F, "fn f(vpn: Vpn, n: usize) -> usize { (vpn.raw() as usize) % n }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lossy-cast");
        // Widening is fine.
        assert!(lint_source(F, "fn f(vpn: Vpn) -> u64 { vpn.raw() as u64 }\n").is_empty());
        // Narrowing of non-address values is fine.
        assert!(lint_source(F, "fn f(x: u64) -> usize { x as usize }\n").is_empty());
    }

    #[test]
    fn hot_unwrap_only_in_hot_files() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint_source("crates/gpu-sim/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-unwrap");
        assert!(lint_source(F, src).is_empty());
        // unwrap_or is a different method.
        assert!(lint_source(
            "crates/gpu-sim/src/engine.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n"
        )
        .is_empty());
    }

    #[test]
    fn engine_lock_only_in_hot_files() {
        let src = "use std::sync::Mutex;\nfn f() { let _l = std::sync::RwLock::new(0u8); }\n";
        let v = lint_source("crates/gpu-sim/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "engine-lock"), "{v:?}");
        // The private/shared split is hot too.
        let v = lint_source("crates/mem-hier/src/split.rs", "use std::sync::Mutex;\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "engine-lock");
        // Outside the hot path, locks are allowed.
        assert!(lint_source(F, src).is_empty());
        // Channels are the sanctioned mechanism and never flagged.
        assert!(lint_source(
            "crates/gpu-sim/src/engine.rs",
            "use std::sync::mpsc::{channel, Sender};\n"
        )
        .is_empty());
    }

    #[test]
    fn engine_spawn_only_in_hot_files_and_not_in_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nfn g() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let v = lint_source("crates/gpu-sim/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "engine-spawn"), "{v:?}");
        // The sharded drain is hot too.
        let v = lint_source("crates/mem-hier/src/drain.rs", "fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "engine-spawn");
        // pool.rs is the sanctioned parallelism module.
        assert!(lint_source("crates/gpu-sim/src/pool.rs", src).is_empty());
        // Unrelated identifiers named `scope`/`spawn` are fine.
        assert!(lint_source(
            "crates/gpu-sim/src/engine.rs",
            "fn f(scope: u8) -> u8 { scope }\nfn g() { self.spawn(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_with_reason() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-iter, reason = \"keyed access only\")\n";
        assert!(lint_source(F, src).is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "// simlint: allow(hash-iter, reason = \"keyed access only\")\nuse std::collections::HashMap;\n";
        assert!(lint_source(F, src).is_empty());
        // ...but not the line after that.
        let src2 = "// simlint: allow(hash-iter, reason = \"keyed access only\")\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let v = lint_source(F, src2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn allow_with_unknown_rule_or_missing_reason_is_a_violation() {
        let v = lint_source(F, "// simlint: allow(made-up-rule, reason = \"x\")\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "bad-allow");
        assert!(v[0].message.contains("unknown rule"));
        let v = lint_source(F, "use std::collections::HashMap; // simlint: allow(hash-iter)\n");
        assert_eq!(v.len(), 2, "{v:?}"); // the bad allow AND the unsuppressed use
        assert!(v.iter().any(|v| v.rule == "bad-allow"));
        assert!(v.iter().any(|v| v.rule == "hash-iter"));
    }

    #[test]
    fn strings_comments_and_lifetimes_do_not_trip_rules() {
        let src = concat!(
            "fn f<'a>(x: &'a str) -> &'a str { x }\n",
            "const S: &str = \"HashMap Instant thread_rng\";\n",
            "const R: &str = r#\"HashMap \" quote\"#;\n",
            "/* HashMap /* nested Instant */ still comment */\n",
            "const C: char = '\"';\n",
            "// plain comment mentioning HashMap\n",
        );
        assert!(lint_source(F, src).is_empty(), "{:?}", lint_source(F, src));
    }

    #[test]
    fn compat_and_test_dirs_are_skipped() {
        let bad = "fn f() { let _ = Instant::now(); }\n";
        assert!(lint_source("crates/criterion-compat/src/lib.rs", bad).is_empty());
        assert!(lint_source("crates/tlb/tests/integration.rs", bad).is_empty());
        assert!(lint_source("crates/bench/benches/sweep.rs", bad).is_empty());
    }

    #[test]
    fn json_output_is_well_formed() {
        let v = vec![Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "hash-iter".into(),
            message: "say \"no\"".into(),
        }];
        let j = to_json(&v);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"no\\\""));
        assert_eq!(to_json(&[]), "{\n  \"violations\": [],\n  \"count\": 0\n}\n");
    }

    #[test]
    fn workspace_is_clean() {
        // The acceptance gate: the post-PR workspace must lint clean.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let v = lint_tree(&root).expect("workspace sources readable");
        assert!(
            v.is_empty(),
            "workspace has simlint violations:\n{}",
            v.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn injected_violations_in_a_fixture_tree_are_caught() {
        let dir = std::env::temp_dir().join(format!("simlint-fixture-{}", std::process::id()));
        let src_dir = dir.join("crates/vmem/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("bad.rs"),
            "use std::collections::HashMap;\n\
             fn t() -> std::time::Instant { std::time::Instant::now() }\n\
             fn c(vpn: u64, n: usize) -> usize { (vpn as usize) % n }\n",
        )
        .unwrap();
        let v = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"hash-iter"), "{v:?}");
        assert!(rules.contains(&"wall-clock"), "{v:?}");
        assert!(rules.contains(&"lossy-cast"), "{v:?}");
        assert_eq!(v[0].file, "crates/vmem/src/bad.rs");
    }

    #[test]
    fn mem_hier_is_a_result_crate_and_its_pipeline_is_hot() {
        // The extracted hierarchy produces the simulation's timing, so it
        // gets the full result-crate scope; its per-access pipeline files
        // additionally get `hot-unwrap`.
        assert!(RESULT_CRATES.contains(&"crates/mem-hier/"));
        // The differential oracle's reference models must themselves be
        // deterministic and cast-safe: divergence verdicts are results.
        assert!(RESULT_CRATES.contains(&"crates/sim-oracle/"));
        for f in [
            "crates/mem-hier/src/hierarchy.rs",
            "crates/mem-hier/src/split.rs",
            "crates/mem-hier/src/stages.rs",
            "crates/mem-hier/src/ports.rs",
        ] {
            assert!(HOT_PATHS.contains(&f), "{f} missing from HOT_PATHS");
        }

        let dir = std::env::temp_dir().join(format!("simlint-mh-fixture-{}", std::process::id()));
        let src_dir = dir.join("crates/mem-hier/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("stages.rs"),
            "use std::collections::HashMap;\n\
             fn s(vpn: u64, n: usize) -> usize { (vpn as u32) as usize % n }\n\
             fn h(x: Option<u64>) -> u64 { x.unwrap() }\n",
        )
        .unwrap();
        let v = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"hash-iter"), "{v:?}");
        assert!(rules.contains(&"lossy-cast"), "{v:?}");
        assert!(rules.contains(&"hot-unwrap"), "{v:?}");
    }
}
