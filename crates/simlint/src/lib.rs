//! # simlint — workspace-specific static analysis for the simulator
//!
//! A std-only analyzer enforcing the determinism and robustness rules
//! this reproduction depends on (see `DESIGN.md`, "Correctness tooling"
//! and "simlint v2 architecture"). It runs in two layers:
//!
//! **Lexical rules** (v1, per file, exact token patterns):
//!
//! * **hash-iter** — no `HashMap`/`HashSet` in result-producing crates:
//!   their iteration order is seeded per process and would make figures
//!   non-reproducible.
//! * **wall-clock** — no `Instant`/`SystemTime` outside the vendored
//!   `criterion-compat`: simulated time must come from the engine clock.
//! * **unseeded-rng** — no `thread_rng`/`from_entropy`/`OsRng`/
//!   `rand::random`: every stochastic choice must flow from the workload
//!   seed.
//! * **lossy-cast** — no narrowing `as` cast in expressions that touch
//!   VPN/PPN/address values: `(vpn.raw() as usize) % n` truncates before
//!   the modulo on 32-bit hosts and silently changes set indices.
//! * **hot-unwrap** — no `.unwrap()`/`.expect()` in the engine hot path
//!   (TLB lookup/insert and the cycle loop): a panic mid-simulation is
//!   only acceptable via the sanitizer, which attaches a state dump.
//! * **engine-lock** — no `Mutex`/`RwLock` in the engine hot path: the
//!   two-phase engine's determinism rests on phase A touching only
//!   SM-private state and phase B applying shared state in SM-index
//!   order. A lock in that code means cross-thread sharing whose
//!   acquisition order (and timing) the scheduler controls — exactly the
//!   nondeterminism the phase split exists to exclude. Channels moving
//!   owned data are the sanctioned mechanism.
//! * **engine-spawn** — no `thread::spawn`/`thread::scope` outside
//!   `gpu-sim/src/pool.rs` (the persistent worker pool and the
//!   sharded-drain scoped executor), where lane ownership, panic
//!   propagation and deterministic merge order are enforced in one place.
//!
//! **Graph rules** (v2, workspace-wide, over the [`graph::Workspace`]
//! item/call graph built by [`parser`] on the [`lexer`] token stream):
//!
//! * **taint-reaches-report** ([`taint`]) — a nondeterminism source
//!   (hash iteration, wall clock, unseeded RNG, channel arrival order,
//!   pointer identity) inside the transitive callee closure of a result
//!   sink (`SimReport`, CSV writers, `BENCH_*`/golden emitters). This
//!   computes what the hand-maintained `RESULT_CRATES` list used to
//!   approximate.
//! * **phase-a-shared** ([`phase`]) — an item reachable from a phase-A
//!   entry point (`PerSmFront` methods, `phase_a`/`run_chain`) names
//!   shared back-half state (`SharedBack`, stages, walkers, icnt).
//! * **deferred-fill-payload** ([`phase`]) — a `TranslationBuffer`
//!   claiming `supports_deferred_fill()` whose `insert` placement
//!   depends on the PPN payload, or which does not override
//!   `patch_ppn` — the PR 6 sentinel-fill soundness condition.
//! * **stale-allow** — a `// simlint: allow(...)` escape whose rule no
//!   longer fires on (or suppresses a taint seed at) its target line.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions, `tests/`,
//! `benches/`, `examples/` directories) and the vendored `*-compat`
//! crates are exempt. Individual occurrences can be waived with an escape
//! comment that names the rule and justifies itself:
//!
//! ```text
//! // simlint: allow(lossy-cast, reason = "masked to 5 bits first")
//! ```
//!
//! placed either at the end of the offending line or alone on the line
//! above it. An allow with an unknown rule name or a missing reason is
//! itself a violation (`bad-allow`), and an allow nothing fires against
//! is flagged `stale-allow` so escapes cannot outlive their reasons.
//!
//! Workspace runs can additionally be gated by a checked-in
//! [`baseline`] file with a monotonic ratchet (see `simlint.baseline`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod phase;
pub mod taint;

use lexer::{LineComment, Tok};
use parser::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Crates whose sources produce simulation results — the v1 hand-written
/// scope of `hash-iter` and `lossy-cast`. Kept for one release cycle as
/// a cross-check against the graph-computed influence set
/// ([`taint::result_crates`]); the unit tests assert the two agree.
pub const RESULT_CRATES: [&str; 8] = [
    "crates/core/",
    "crates/gpu-sim/",
    "crates/mem-hier/",
    "crates/tlb/",
    "crates/vmem/",
    "crates/workloads/",
    "crates/analysis/",
    "crates/sim-oracle/",
];

/// Files forming the engine hot path (scope of `hot-unwrap` and
/// `engine-lock`): the cycle loop plus every TLB organization's
/// lookup/insert code and the private/shared hierarchy split. Kept for
/// one release cycle as a cross-check against graph-derived facts (every
/// `TranslationBuffer` impl and every phase-entry/shared-state
/// definition must live in one of these files).
pub const HOT_PATHS: [&str; 14] = [
    "crates/gpu-sim/src/engine.rs",
    "crates/gpu-sim/src/feed.rs",
    "crates/gpu-sim/src/pool.rs",
    "crates/gpu-sim/src/corun.rs",
    "crates/mem-hier/src/drain.rs",
    "crates/mem-hier/src/hierarchy.rs",
    "crates/mem-hier/src/split.rs",
    "crates/mem-hier/src/stages.rs",
    "crates/mem-hier/src/ports.rs",
    "crates/tlb/src/set_assoc.rs",
    "crates/tlb/src/compressed.rs",
    "crates/tlb/src/sub_entry.rs",
    "crates/core/src/partitioned.rs",
    "crates/core/src/way_partitioned.rs",
];

/// Narrowing cast targets that can drop address bits (`usize` included:
/// it is 32-bit on 32-bit hosts).
const NARROW_TYPES: [&str; 9] = [
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32",
];

/// Identifier fragments that mark a value as address-typed for
/// `lossy-cast` (matched case-insensitively as substrings, except `raw`
/// which must match a whole identifier — the accessor on `Vpn`/`Ppn`).
const ADDR_MARKERS: [&str; 4] = ["vpn", "ppn", "addr", "pfn"];

/// Every rule an allow comment may waive. `bad-allow` and `stale-allow`
/// are deliberately absent: escapes cannot waive the escape hygiene
/// rules themselves.
pub const RULES: [&str; 10] = [
    "hash-iter",
    "wall-clock",
    "unseeded-rng",
    "lossy-cast",
    "hot-unwrap",
    "engine-lock",
    "engine-spawn",
    "taint-reaches-report",
    "phase-a-shared",
    "deferred-fill-payload",
];

/// Metadata for one rule (drives `--list-rules` and the README table).
pub struct RuleInfo {
    /// Rule name as it appears in findings and allow comments.
    pub name: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// All rules simlint can report, in display order.
pub const RULE_INFOS: [RuleInfo; 12] = [
    RuleInfo {
        name: "hash-iter",
        scope: "result crates",
        summary: "`HashMap`/`HashSet` in result-producing code: iteration order is randomized per process",
    },
    RuleInfo {
        name: "wall-clock",
        scope: "all non-test code",
        summary: "`Instant`/`SystemTime`: simulation results must depend only on the simulated clock",
    },
    RuleInfo {
        name: "unseeded-rng",
        scope: "all non-test code",
        summary: "`thread_rng`/`from_entropy`/`OsRng`/`rand::random`: randomness must flow from the workload seed",
    },
    RuleInfo {
        name: "lossy-cast",
        scope: "result crates",
        summary: "narrowing `as` cast on a VPN/PPN/address value: truncates on 32-bit hosts before set indexing",
    },
    RuleInfo {
        name: "hot-unwrap",
        scope: "engine hot path",
        summary: "`.unwrap()`/`.expect()` in the cycle loop or TLB lookup/insert: panics without a state dump",
    },
    RuleInfo {
        name: "engine-lock",
        scope: "engine hot path",
        summary: "`Mutex`/`RwLock` in the hot path: scheduler-ordered sharing breaks two-phase determinism",
    },
    RuleInfo {
        name: "engine-spawn",
        scope: "workspace (except pool.rs)",
        summary: "`thread::spawn`/`thread::scope` outside the engine pool: ad-hoc threading leaks arrival order",
    },
    RuleInfo {
        name: "taint-reaches-report",
        scope: "call graph (sink influence set)",
        summary: "a nondeterminism source can flow into a `SimReport`/CSV/`BENCH_*`/golden sink",
    },
    RuleInfo {
        name: "phase-a-shared",
        scope: "call graph (phase-A reachability)",
        summary: "code reachable from `PerSmFront`/`phase_a` names shared back-half state",
    },
    RuleInfo {
        name: "deferred-fill-payload",
        scope: "`TranslationBuffer` impls",
        summary: "`supports_deferred_fill()` with a payload-dependent `insert` or missing `patch_ppn` override",
    },
    RuleInfo {
        name: "stale-allow",
        scope: "allow escapes",
        summary: "a `// simlint: allow(...)` whose rule no longer fires on its target line",
    },
    RuleInfo {
        name: "bad-allow",
        scope: "allow escapes",
        summary: "a malformed allow: unknown rule name or missing `reason = \"...\"`",
    },
];

/// The `--list-rules` table (markdown; README's rules section is
/// generated from this so docs cannot drift).
pub fn rules_table_markdown() -> String {
    let mut s = String::from("| rule | scope | description |\n|---|---|---|\n");
    for r in &RULE_INFOS {
        s.push_str(&format!("| `{}` | {} | {} |\n", r.name, r.scope, r.summary));
    }
    s
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule name (one of [`RULE_INFOS`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Line ranges (inclusive) covered by `#[test]` / `#[cfg(test)]` items,
/// over the code-token stream.
fn test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]`.
        let mut j = i + 1;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
            j += 1;
        }
        if tokens.get(j).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0;
        let mut close = None;
        for (k, t) in tokens.iter().enumerate().skip(j) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { break };
        let is_test = tokens[j + 1..close].iter().any(|t| t.text == "test");
        if !is_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = close + 1;
        while tokens.get(k).map(|t| t.text.as_str()) == Some("#") {
            let mut depth = 0;
            let mut advanced = false;
            for (m, t) in tokens.iter().enumerate().skip(k + 1) {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k = m + 1;
                            advanced = true;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if !advanced {
                break;
            }
        }
        // The item extends to the matching `}` of its first block, or to
        // a `;` for block-less items (e.g. `#[cfg(test)] use ...;`).
        let mut end_line = tokens[close].line;
        let mut brace_depth = 0;
        let mut m = k;
        while m < tokens.len() {
            match tokens[m].text.as_str() {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = tokens[m].line;
                        break;
                    }
                }
                ";" if brace_depth == 0 => {
                    end_line = tokens[m].line;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        regions.push((tokens[i].line, end_line));
        i = close + 1;
    }
    regions
}

/// Parsed `simlint: allow(rule, reason = "...")` escape.
enum AllowParse {
    /// Not a simlint comment at all.
    NotAllow,
    /// A well-formed allow for `rule`.
    Allow(String),
    /// A malformed allow (its own violation).
    Bad(String),
}

fn parse_allow(comment: &str) -> AllowParse {
    let t = comment.trim();
    let Some(rest) = t.strip_prefix("simlint:") else {
        return AllowParse::NotAllow;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return AllowParse::Bad(format!(
            "malformed simlint comment (expected `allow(<rule>, reason = \"...\")`): {t}"
        ));
    };
    let Some(body) = rest.strip_suffix(')') else {
        return AllowParse::Bad(String::from("unterminated simlint allow (missing `)`)"));
    };
    let mut parts = body.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_string();
    if !RULES.contains(&rule.as_str()) {
        return AllowParse::Bad(format!(
            "unknown rule '{rule}' in simlint allow (known: {})",
            RULES.join(", ")
        ));
    }
    let reason = parts.next().unwrap_or("").trim();
    let has_reason = reason
        .strip_prefix("reason")
        .map(|r| r.trim_start().strip_prefix('=').is_some_and(|v| v.trim().len() > 2))
        .unwrap_or(false);
    if !has_reason {
        return AllowParse::Bad(format!(
            "simlint allow({rule}) without a `reason = \"...\"` justification"
        ));
    }
    AllowParse::Allow(rule)
}

/// True when `rel` (a `/`-separated workspace-relative path) is inside a
/// directory the linter skips entirely.
fn skipped_path(rel: &str) -> bool {
    rel.split('/').any(|seg| {
        seg == "target"
            || seg == "tests"
            || seg == "benches"
            || seg == "examples"
            || seg.ends_with("-compat")
    })
}

/// One parsed allow escape with its resolved target line.
struct AllowSite {
    /// Line the comment itself sits on.
    comment_line: usize,
    /// Line the allow waives (the comment's line, or the next code line
    /// for standalone comments).
    target_line: usize,
    rule: String,
    /// True when the comment sits inside a test region (exempt from
    /// staleness: test code is not linted, so nothing can fire there).
    in_test: bool,
}

/// Per-file lexical results, pre-allow-filtering.
struct FilePass {
    /// Lexical findings outside test regions (allows NOT yet applied).
    fired: Vec<Violation>,
    /// Parsed allow escapes.
    allows: Vec<AllowSite>,
    /// Malformed allows (already final violations).
    bad_allows: Vec<Violation>,
}

/// Runs the per-file lexical layer: allow collection plus the v1 token
/// rules. `code` must be the code-token stream of the file.
fn lexical_pass(rel: &str, code: &[Tok], comments: &[LineComment]) -> FilePass {
    let regions = test_regions(code);
    let in_test = |line: usize| regions.iter().any(|&(a, b)| line >= a && line <= b);

    let mut allows: Vec<AllowSite> = Vec::new();
    let mut bad_allows: Vec<Violation> = Vec::new();
    for c in comments {
        match parse_allow(&c.text) {
            AllowParse::NotAllow => {}
            AllowParse::Bad(msg) => {
                if !in_test(c.line) {
                    bad_allows.push(Violation {
                        file: rel.to_string(),
                        line: c.line,
                        rule: "bad-allow".into(),
                        message: msg,
                    });
                }
            }
            AllowParse::Allow(rule) => {
                let target = if c.standalone {
                    code.iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line + 1)
                } else {
                    c.line
                };
                allows.push(AllowSite {
                    comment_line: c.line,
                    target_line: target,
                    rule,
                    in_test: in_test(c.line),
                });
            }
        }
    }

    let mut fired: Vec<Violation> = Vec::new();
    let mut push = |line: usize, rule: &str, message: String| {
        if !in_test(line) {
            fired.push(Violation {
                file: rel.to_string(),
                line,
                rule: rule.into(),
                message,
            });
        }
    };

    let in_result_crate = RESULT_CRATES.iter().any(|p| rel.starts_with(p));
    let hot = HOT_PATHS.contains(&rel);

    for (i, t) in code.iter().enumerate() {
        let prev = |k: usize| {
            i.checked_sub(k)
                .map(|j| code[j].text.as_str())
                .unwrap_or("")
        };
        match t.text.as_str() {
            "HashMap" | "HashSet" if in_result_crate => push(
                t.line,
                "hash-iter",
                format!(
                    "{} iteration order is randomized per process; use BTreeMap/BTreeSet \
                     or an index-keyed Vec in result-producing code",
                    t.text
                ),
            ),
            "Instant" | "SystemTime" => push(
                t.line,
                "wall-clock",
                format!(
                    "{} reads wall-clock time; simulation results must depend only on \
                     the simulated cycle counter",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" => push(
                t.line,
                "unseeded-rng",
                format!(
                    "{} draws OS entropy; every random choice must derive from the \
                     workload seed for reproducibility",
                    t.text
                ),
            ),
            "random" if prev(1) == ":" && prev(2) == ":" && prev(3) == "rand" => push(
                t.line,
                "unseeded-rng",
                String::from(
                    "rand::random draws from the thread-local OS-seeded generator; \
                     use the seeded workload RNG",
                ),
            ),
            "as" if in_result_crate => {
                let target = code.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
                if NARROW_TYPES.contains(&target) {
                    // Look back within the expression for an
                    // address-typed identifier (14 tokens reaches
                    // through a masking subexpression like
                    // `(vpn.raw() & (self.degree() - 1)) as u32`).
                    // `,` and `:` end the scan: an address ident on the
                    // other side of an argument or field boundary
                    // belongs to a different subexpression than the
                    // cast operand.
                    let tainted = (1..=14)
                        .map(prev)
                        .take_while(|p| !matches!(*p, ";" | "{" | "}" | "," | ":" | ""))
                        .any(|p| {
                            let lower = p.to_ascii_lowercase();
                            p == "raw" || ADDR_MARKERS.iter().any(|m| lower.contains(m))
                        });
                    if tainted {
                        push(
                            t.line,
                            "lossy-cast",
                            format!(
                                "narrowing `as {target}` on an address-typed value can \
                                 truncate on 32-bit hosts; do the arithmetic in u64 and \
                                 narrow last (or mask explicitly and allow)"
                            ),
                        );
                    }
                }
            }
            "unwrap" | "expect" if hot && prev(1) == "." => push(
                t.line,
                "hot-unwrap",
                format!(
                    ".{}() in the engine hot path panics without simulator state; \
                     return an error or let the sanitizer report it with a dump",
                    t.text
                ),
            ),
            "spawn" | "scope"
                if hot
                    && !rel.ends_with("pool.rs")
                    && prev(1) == ":"
                    && prev(2) == ":"
                    && prev(3) == "thread" =>
            {
                push(
                    t.line,
                    "engine-spawn",
                    format!(
                        "thread::{} in the engine hot path: all engine parallelism must go \
                         through gpu-sim/src/pool.rs (the worker pool / scoped drain \
                         executor), which owns lane routing, panic propagation and \
                         deterministic merges",
                        t.text
                    ),
                )
            }
            "Mutex" | "RwLock" if hot => push(
                t.line,
                "engine-lock",
                format!(
                    "{} in the engine hot path: the two-phase engine stays deterministic \
                     by construction (SM-private phase A, SM-ordered phase B) — locks \
                     reintroduce scheduler-ordered sharing; move owned data over channels \
                     instead",
                    t.text
                ),
            ),
            _ => {}
        }
    }

    FilePass {
        fired,
        allows,
        bad_allows,
    }
}

/// Lints one source file in isolation (lexical layer only — the graph
/// analyses need the whole workspace; see [`lint_tree`]). Stale allows
/// are not reported here for the same reason.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    if skipped_path(rel) {
        return Vec::new();
    }
    let lexed = lexer::lex(src);
    let code = lexed.code_tokens();
    let pass = lexical_pass(rel, &code, &lexed.comments);
    let allowed = |line: usize, rule: &str| {
        pass.allows
            .iter()
            .any(|a| a.target_line == line && a.rule == rule)
    };
    let mut violations: Vec<Violation> = pass
        .fired
        .into_iter()
        .filter(|v| !allowed(v.line, &v.rule))
        .collect();
    violations.extend(pass.bad_allows);
    violations.sort();
    violations
}

/// A full workspace run: every violation plus the artifacts the CLI and
/// cross-check tests need.
pub struct TreeReport {
    /// All findings, sorted by `(file, line, rule)`, allows applied.
    pub violations: Vec<Violation>,
    /// Crates the taint analysis computed as result-influencing.
    pub result_crates: BTreeSet<String>,
    /// Files the taint analysis computed as result-influencing.
    pub result_files: BTreeSet<String>,
}

/// Recursively lints every `.rs` file under `root/src` and
/// `root/crates`: the lexical layer per file, then the workspace graph
/// analyses (taint, phase safety, allow hygiene).
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(lint_tree_report(root)?.violations)
}

/// [`lint_tree`] with the computed influence sets exposed.
pub fn lint_tree_report(root: &Path) -> io::Result<TreeReport> {
    let mut files: Vec<(String, std::path::PathBuf)> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, top, &mut files)?;
        }
    }
    files.sort();

    let mut fired: Vec<Violation> = Vec::new();
    let mut bad_allows: Vec<Violation> = Vec::new();
    let mut allow_sites: Vec<(String, AllowSite)> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    for (rel, path) in files {
        let src = fs::read_to_string(&path)?;
        if skipped_path(&rel) {
            continue;
        }
        let lexed = lexer::lex(&src);
        let code = lexed.code_tokens();
        let pass = lexical_pass(&rel, &code, &lexed.comments);
        fired.extend(pass.fired);
        bad_allows.extend(pass.bad_allows);
        allow_sites.extend(pass.allows.into_iter().map(|a| (rel.clone(), a)));
        parsed.push(parser::parse_file(&rel, lexed));
    }

    let ws = graph::Workspace::build(parsed);

    // Allow lookup for the graph analyses: (file, line) -> rules.
    let mut allow_map: taint::Allows = BTreeMap::new();
    for (rel, a) in &allow_sites {
        allow_map
            .entry((rel.clone(), a.target_line))
            .or_default()
            .insert(a.rule.clone());
    }

    let taint_report = taint::analyze(&ws, &allow_map);
    fired.extend(taint_report.violations);
    fired.extend(phase::analyze(&ws));

    // Dedupe by (file, line, rule): the lexical and graph layers can
    // both fire on the same token (e.g. engine-spawn in a hot file).
    fired.sort();
    fired.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);

    // Apply allows; every suppression (and every suppressed taint seed)
    // marks its allow as used.
    let mut used: BTreeSet<(String, usize, String)> = taint_report
        .used_allows
        .into_iter()
        .collect();
    let mut violations: Vec<Violation> = Vec::new();
    for v in fired {
        let key = (v.file.clone(), v.line, v.rule.clone());
        if allow_sites
            .iter()
            .any(|(rel, a)| *rel == v.file && a.target_line == v.line && a.rule == v.rule)
        {
            used.insert(key);
        } else {
            violations.push(v);
        }
    }

    // Allow hygiene: an allow outside test code that suppressed nothing
    // is stale.
    for (rel, a) in &allow_sites {
        if a.in_test {
            continue;
        }
        if !used.contains(&(rel.clone(), a.target_line, a.rule.clone())) {
            violations.push(Violation {
                file: rel.clone(),
                line: a.comment_line,
                rule: "stale-allow".into(),
                message: format!(
                    "allow({}) is stale: the rule does not fire on line {} any more; \
                     remove the escape (or fix the rule name)",
                    a.rule, a.target_line
                ),
            });
        }
    }

    violations.extend(bad_allows);
    violations.sort();
    violations.dedup();
    Ok(TreeReport {
        violations,
        result_crates: taint_report.result_crates,
        result_files: taint_report.result_files,
    })
}

/// Builds the parsed workspace graph for `root` without running any
/// rules (cross-check tests and external tooling use this).
pub fn build_workspace(root: &Path) -> io::Result<graph::Workspace> {
    let mut files: Vec<(String, std::path::PathBuf)> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, top, &mut files)?;
        }
    }
    files.sort();
    let mut parsed = Vec::new();
    for (rel, path) in files {
        if skipped_path(&rel) {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        parsed.push(parser::parse_file(&rel, lexer::lex(&src)));
    }
    Ok(graph::Workspace::build(parsed))
}

fn collect_rs(
    dir: &Path,
    rel: &str,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let name = e.file_name().to_string_lossy().into_owned();
        let child_rel = format!("{rel}/{name}");
        let ty = e.file_type()?;
        if ty.is_dir() {
            if !skipped_path(&child_rel) {
                collect_rs(&e.path(), &child_rel, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push((child_rel, e.path()));
        }
    }
    Ok(())
}

fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders violations as a JSON document (hand-rolled; simlint is
/// dependency-free).
pub fn to_json(violations: &[Violation]) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_esc(&v.file),
            v.line,
            json_esc(&v.rule),
            json_esc(&v.message)
        ));
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!("],\n  \"count\": {}\n}}\n", violations.len()));
    s
}

/// Renders violations as SARIF 2.1.0 (for GitHub code scanning upload).
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut s = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\n      \
         \"name\": \"simlint\",\n      \"rules\": [",
    );
    for (i, r) in RULE_INFOS.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_esc(r.name),
            json_esc(r.summary)
        ));
    }
    s.push_str("\n      ]\n    }},\n    \"results\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_esc(&v.rule),
            json_esc(&v.message),
            json_esc(&v.file),
            v.line
        ));
    }
    if !violations.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }]\n}\n");
    s
}

/// Renders violations as GitHub Actions workflow annotations.
pub fn to_github(violations: &[Violation]) -> String {
    let esc = |s: &str| s.replace('%', "%25").replace('\n', "%0A");
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "::error file={},line={},title=simlint({})::{}\n",
            v.file,
            v.line,
            v.rule,
            esc(&v.message)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: &str = "crates/tlb/src/lib.rs"; // in a result crate, not hot

    #[test]
    fn hashmap_in_result_crate_is_flagged() {
        let v = lint_source(F, "use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash-iter");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hashmap_outside_result_crates_is_fine() {
        let v = lint_source("crates/bench/src/lib.rs", "use std::collections::HashMap;\n");
        assert!(v.is_empty());
    }

    #[test]
    fn hashmap_in_cfg_test_module_is_fine() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint_source(F, src).is_empty());
    }

    #[test]
    fn test_attribute_on_single_fn_is_skipped() {
        let src = "#[test]\nfn t() { let _ = std::time::Instant::now(); }\nfn live() { let _ = std::time::Instant::now(); }\n";
        let v = lint_source(F, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].rule, "wall-clock");
    }

    #[test]
    fn wall_clock_and_rng_sources_flagged() {
        let v = lint_source(F, "fn f() { let _ = SystemTime::now(); }\n");
        assert_eq!(v[0].rule, "wall-clock");
        let v = lint_source(F, "fn f() { let mut r = rand::thread_rng(); }\n");
        assert_eq!(v[0].rule, "unseeded-rng");
        let v = lint_source(F, "fn f() -> u32 { rand::random() }\n");
        assert_eq!(v[0].rule, "unseeded-rng");
    }

    #[test]
    fn lossy_cast_needs_address_taint_and_narrow_target() {
        let v = lint_source(F, "fn f(vpn: Vpn, n: usize) -> usize { (vpn.raw() as usize) % n }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lossy-cast");
        // Widening is fine.
        assert!(lint_source(F, "fn f(vpn: Vpn) -> u64 { vpn.raw() as u64 }\n").is_empty());
        // Narrowing of non-address values is fine.
        assert!(lint_source(F, "fn f(x: u64) -> usize { x as usize }\n").is_empty());
    }

    #[test]
    fn hot_unwrap_only_in_hot_files() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint_source("crates/gpu-sim/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-unwrap");
        assert!(lint_source(F, src).is_empty());
        // unwrap_or is a different method.
        assert!(lint_source(
            "crates/gpu-sim/src/engine.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n"
        )
        .is_empty());
    }

    #[test]
    fn engine_lock_only_in_hot_files() {
        let src = "use std::sync::Mutex;\nfn f() { let _l = std::sync::RwLock::new(0u8); }\n";
        let v = lint_source("crates/gpu-sim/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "engine-lock"), "{v:?}");
        // The private/shared split is hot too.
        let v = lint_source("crates/mem-hier/src/split.rs", "use std::sync::Mutex;\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "engine-lock");
        // Outside the hot path, locks are allowed.
        assert!(lint_source(F, src).is_empty());
        // Channels are the sanctioned mechanism and never flagged.
        assert!(lint_source(
            "crates/gpu-sim/src/engine.rs",
            "use std::sync::mpsc::{channel, Sender};\n"
        )
        .is_empty());
    }

    #[test]
    fn engine_spawn_only_in_hot_files_and_not_in_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nfn g() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let v = lint_source("crates/gpu-sim/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "engine-spawn"), "{v:?}");
        // The sharded drain is hot too.
        let v = lint_source("crates/mem-hier/src/drain.rs", "fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "engine-spawn");
        // pool.rs is the sanctioned parallelism module.
        assert!(lint_source("crates/gpu-sim/src/pool.rs", src).is_empty());
        // Unrelated identifiers named `scope`/`spawn` are fine.
        assert!(lint_source(
            "crates/gpu-sim/src/engine.rs",
            "fn f(scope: u8) -> u8 { scope }\nfn g() { self.spawn(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_with_reason() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-iter, reason = \"keyed access only\")\n";
        assert!(lint_source(F, src).is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "// simlint: allow(hash-iter, reason = \"keyed access only\")\nuse std::collections::HashMap;\n";
        assert!(lint_source(F, src).is_empty());
        // ...but not the line after that.
        let src2 = "// simlint: allow(hash-iter, reason = \"keyed access only\")\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let v = lint_source(F, src2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn allow_with_unknown_rule_or_missing_reason_is_a_violation() {
        let v = lint_source(F, "// simlint: allow(made-up-rule, reason = \"x\")\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "bad-allow");
        assert!(v[0].message.contains("unknown rule"));
        let v = lint_source(F, "use std::collections::HashMap; // simlint: allow(hash-iter)\n");
        assert_eq!(v.len(), 2, "{v:?}"); // the bad allow AND the unsuppressed use
        assert!(v.iter().any(|v| v.rule == "bad-allow"));
        assert!(v.iter().any(|v| v.rule == "hash-iter"));
    }

    #[test]
    fn graph_rules_are_allowable() {
        for r in ["taint-reaches-report", "phase-a-shared", "deferred-fill-payload"] {
            assert!(RULES.contains(&r), "{r} must be waivable");
        }
        for r in ["stale-allow", "bad-allow"] {
            assert!(!RULES.contains(&r), "{r} must not be waivable");
        }
        // Every allowable rule is documented; so are the meta rules.
        for r in RULES {
            assert!(RULE_INFOS.iter().any(|i| i.name == r), "{r} missing from RULE_INFOS");
        }
        assert!(rules_table_markdown().contains("| `stale-allow` |"));
    }

    #[test]
    fn strings_comments_and_lifetimes_do_not_trip_rules() {
        let src = concat!(
            "fn f<'a>(x: &'a str) -> &'a str { x }\n",
            "const S: &str = \"HashMap Instant thread_rng\";\n",
            "const R: &str = r#\"HashMap \" quote\"#;\n",
            "/* HashMap /* nested Instant */ still comment */\n",
            "const C: char = '\"';\n",
            "// plain comment mentioning HashMap\n",
        );
        assert!(lint_source(F, src).is_empty(), "{:?}", lint_source(F, src));
    }

    #[test]
    fn compat_and_test_dirs_are_skipped() {
        let bad = "fn f() { let _ = Instant::now(); }\n";
        assert!(lint_source("crates/criterion-compat/src/lib.rs", bad).is_empty());
        assert!(lint_source("crates/tlb/tests/integration.rs", bad).is_empty());
        assert!(lint_source("crates/bench/benches/sweep.rs", bad).is_empty());
    }

    #[test]
    fn json_output_is_well_formed() {
        let v = vec![Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "hash-iter".into(),
            message: "say \"no\"".into(),
        }];
        let j = to_json(&v);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"no\\\""));
        assert_eq!(to_json(&[]), "{\n  \"violations\": [],\n  \"count\": 0\n}\n");
    }

    #[test]
    fn sarif_and_github_outputs_are_well_formed() {
        let v = vec![Violation {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            rule: "phase-a-shared".into(),
            message: "multi\nline \"msg\"".into(),
        }];
        let s = to_sarif(&v);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"phase-a-shared\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("multi\\nline \\\"msg\\\""));
        // Every known rule is declared in the tool driver.
        for r in &RULE_INFOS {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.name)), "{} missing", r.name);
        }
        let g = to_github(&v);
        assert_eq!(
            g,
            "::error file=crates/x/src/a.rs,line=3,title=simlint(phase-a-shared)::multi%0Aline \"msg\"\n"
        );
    }

    #[test]
    fn workspace_is_clean() {
        // The acceptance gate: the post-PR workspace must lint clean —
        // lexical rules, graph analyses and allow hygiene included.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let v = lint_tree(&root).expect("workspace sources readable");
        assert!(
            v.is_empty(),
            "workspace has simlint violations:\n{}",
            v.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn injected_violations_in_a_fixture_tree_are_caught() {
        let dir = std::env::temp_dir().join(format!("simlint-fixture-{}", std::process::id()));
        let src_dir = dir.join("crates/vmem/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("bad.rs"),
            "use std::collections::HashMap;\n\
             fn t() -> std::time::Instant { std::time::Instant::now() }\n\
             fn c(vpn: u64, n: usize) -> usize { (vpn as usize) % n }\n",
        )
        .unwrap();
        let v = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"hash-iter"), "{v:?}");
        assert!(rules.contains(&"wall-clock"), "{v:?}");
        assert!(rules.contains(&"lossy-cast"), "{v:?}");
        assert_eq!(v[0].file, "crates/vmem/src/bad.rs");
    }

    #[test]
    fn stale_allow_is_reported_in_tree_runs_only() {
        let dir = std::env::temp_dir().join(format!("simlint-stale-{}", std::process::id()));
        let src_dir = dir.join("crates/vmem/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("lib.rs"),
            "// simlint: allow(hash-iter, reason = \"it was here once\")\n\
             pub fn fine() {}\n",
        )
        .unwrap();
        let v = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stale-allow");
        assert_eq!(v[0].line, 1);
        // lint_source cannot judge staleness (no workspace context).
        let alone = lint_source(
            "crates/vmem/src/lib.rs",
            "// simlint: allow(hash-iter, reason = \"it was here once\")\npub fn fine() {}\n",
        );
        assert!(alone.is_empty(), "{alone:?}");
    }

    #[test]
    fn used_allow_is_not_stale() {
        let dir = std::env::temp_dir().join(format!("simlint-used-{}", std::process::id()));
        let src_dir = dir.join("crates/vmem/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("lib.rs"),
            "// simlint: allow(hash-iter, reason = \"keyed access only\")\n\
             use std::collections::HashMap;\n\
             pub fn get(m: &HashMap<u64, u64>, k: u64) -> u64 { *m.get(&k).unwrap_or(&0) } \
             // simlint: allow(hash-iter, reason = \"keyed access only\")\n",
        )
        .unwrap();
        let v = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn mem_hier_is_a_result_crate_and_its_pipeline_is_hot() {
        // The extracted hierarchy produces the simulation's timing, so it
        // gets the full result-crate scope; its per-access pipeline files
        // additionally get `hot-unwrap`.
        assert!(RESULT_CRATES.contains(&"crates/mem-hier/"));
        // The differential oracle's reference models must themselves be
        // deterministic and cast-safe: divergence verdicts are results.
        assert!(RESULT_CRATES.contains(&"crates/sim-oracle/"));
        for f in [
            "crates/mem-hier/src/hierarchy.rs",
            "crates/mem-hier/src/split.rs",
            "crates/mem-hier/src/stages.rs",
            "crates/mem-hier/src/ports.rs",
            // The deferred-fill fast paths (partitioned `insert`/`place`/
            // `patch_ppn` and the per-organization MRU memos) all live in
            // these files and must stay under hot-path scrutiny.
            "crates/tlb/src/set_assoc.rs",
            "crates/tlb/src/compressed.rs",
            "crates/core/src/partitioned.rs",
            // Multi-tenant hot paths: the app-interleaved co-run merge
            // runs per TB launch, and the sub-entry-sharing L2 TLB sits
            // on the shared lookup path and claims deferred-fill support.
            "crates/gpu-sim/src/corun.rs",
            "crates/tlb/src/sub_entry.rs",
        ] {
            assert!(HOT_PATHS.contains(&f), "{f} missing from HOT_PATHS");
        }

        let dir = std::env::temp_dir().join(format!("simlint-mh-fixture-{}", std::process::id()));
        let src_dir = dir.join("crates/mem-hier/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("stages.rs"),
            "use std::collections::HashMap;\n\
             fn s(vpn: u64, n: usize) -> usize { (vpn as u32) as usize % n }\n\
             fn h(x: Option<u64>) -> u64 { x.unwrap() }\n",
        )
        .unwrap();
        let v = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"hash-iter"), "{v:?}");
        assert!(rules.contains(&"lossy-cast"), "{v:?}");
        assert!(rules.contains(&"hot-unwrap"), "{v:?}");
    }
}
