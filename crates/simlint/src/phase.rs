//! Phase-safety verification for the two-phase parallel engine.
//!
//! The `--sim-threads` byte-identical contract rests on a partition:
//! phase A (per-SM, runs concurrently) may touch only SM-private state;
//! phase B (shared back half: L2 TLB, walkers, DRAM model, interconnect)
//! runs in deterministic SM-index order. Three checks enforce it:
//!
//! 1. **`phase-a-shared`** — every item reachable over the call graph
//!    from a phase-A entry point (`PerSmFront` methods, free functions
//!    named `phase_a`/`run_chain`) must not *name* a shared-phase type
//!    ([`FORBIDDEN`]) and must not be a method of one. Naming shared
//!    state from concurrently-running code is how the partition breaks.
//! 2. **`deferred-fill-payload`** — a `TranslationBuffer` whose
//!    `supports_deferred_fill()` can return `true` promises that
//!    `patch_ppn` after a sentinel `insert` is equivalent to inserting
//!    the real PPN up front. That holds only when `insert`'s placement
//!    decisions never depend on the payload value: the payload parameter
//!    must not appear in branch conditions, index expressions,
//!    comparisons, or as a method-call receiver, and the type must
//!    actually override `patch_ppn`.
//! 3. **`engine-spawn`** — `thread::spawn`/`thread::scope` stays
//!    confined to `pool.rs`; ad-hoc threading anywhere else can leak
//!    arrival order into simulation state.

use crate::graph::{ItemId, Workspace};
use crate::lexer::TokKind;
use crate::parser::ItemKind;
use crate::Violation;

/// Rule name for phase-A code naming shared state.
pub const RULE_SHARED: &str = "phase-a-shared";
/// Rule name for unsound `supports_deferred_fill` implementations.
pub const RULE_DEFERRED: &str = "deferred-fill-payload";
/// Rule name for threading outside `pool.rs`.
pub const RULE_SPAWN: &str = "engine-spawn";

/// Shared-phase (phase B) types phase-A code must never name.
pub const FORBIDDEN: [&str; 7] = [
    "AddressSpace",
    "IcntLink",
    "L2TlbStage",
    "SerialExec",
    "SharedBack",
    "WalkerPool",
    "WalkerStage",
];

/// Runs all phase-safety checks.
pub fn analyze(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    phase_a_shared(ws, &mut out);
    deferred_fill(ws, &mut out);
    spawn_confinement(ws, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Phase-A entry points: `PerSmFront` methods plus free `phase_a` /
/// `run_chain` functions.
pub fn phase_a_entries(ws: &Workspace) -> Vec<ItemId> {
    ws.items_where(|ws, id| {
        let it = ws.item(id);
        if it.kind != ItemKind::Fn || it.is_test || ws.krate(id) == "simlint" {
            return false;
        }
        match &it.self_ty {
            Some(ty) => ty == "PerSmFront",
            None => it.name == "phase_a" || it.name == "run_chain",
        }
    })
}

fn phase_a_shared(ws: &Workspace, out: &mut Vec<Violation>) {
    let entries = phase_a_entries(ws);
    if entries.is_empty() {
        return;
    }
    let reached = ws.reach(&entries);
    for &id in reached.keys() {
        let it = ws.item(id);
        if ws.krate(id) == "simlint" {
            continue;
        }
        // A method of a shared-phase type in the reachable set is only
        // flagged when it can mutate that state (`&mut self`): the call
        // graph's bare-receiver fallback over-approximates, and a
        // read-only getter pulled in through an untyped local is noise,
        // while a mutation reachable from phase A is exactly the
        // partition break this rule exists for.
        if let Some(ty) = it.self_ty.as_deref() {
            if FORBIDDEN.contains(&ty) && takes_mut_self(ws, id) {
                out.push(Violation {
                    file: ws.rel(id).to_string(),
                    line: it.line,
                    rule: RULE_SHARED.into(),
                    message: format!(
                        "`{}` is a method of shared-phase type `{ty}` but is reachable from \
                         phase A ({}); phase-A code must stay on SM-private state",
                        ws.qual_name(id),
                        ws.path_to(&reached, id)
                    ),
                });
                continue;
            }
        }
        let named: Vec<&str> = FORBIDDEN
            .iter()
            .copied()
            .filter(|f| ws.uses[id].contains(*f))
            .collect();
        for f in named {
            let line = first_mention_line(ws, id, f).unwrap_or(it.line);
            out.push(Violation {
                file: ws.rel(id).to_string(),
                line,
                rule: RULE_SHARED.into(),
                message: format!(
                    "phase-A-reachable `{}` names shared-phase type `{f}` ({}); the two-phase \
                     determinism contract forbids phase A touching back-half state",
                    ws.qual_name(id),
                    ws.path_to(&reached, id)
                ),
            });
        }
    }
}

/// True when the method's receiver is `&mut self` / `mut self`.
fn takes_mut_self(ws: &Workspace, id: ItemId) -> bool {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let (start, sig_end) = (it.span.0, it.body.0);
    toks[start.min(toks.len())..sig_end.min(toks.len())]
        .windows(2)
        .any(|w| w[0].text == "mut" && w[1].text == "self")
}

fn first_mention_line(ws: &Workspace, id: ItemId, ident: &str) -> Option<usize> {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let (start, end) = it.span;
    toks[start.min(toks.len())..end.min(toks.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text == ident)
        .map(|t| t.line)
}

/// `supports_deferred_fill` soundness: payload-independent `insert`,
/// `patch_ppn` overridden.
fn deferred_fill(ws: &Workspace, out: &mut Vec<Violation>) {
    for id in ws.items_where(|ws, id| {
        let it = ws.item(id);
        it.kind == ItemKind::Fn
            && it.name == "supports_deferred_fill"
            && it.self_ty.is_some()
            && !it.is_test
            && ws.krate(id) != "simlint"
    }) {
        let it = ws.item(id);
        let ty = it.self_ty.clone().unwrap_or_default();
        // Only implementors that can answer `true` make the promise: a
        // body that is exactly `false` opts out. Anything else — a bare
        // `true` or a *conditional* claim like
        // `self.cfg.compression.is_none()` — is analyzed.
        if claims_only_false(ws, id) {
            continue;
        }
        // A conditional claim licenses `insert` regions guarded on the
        // claim's own identifiers: inside
        // `if self.cfg.compression.is_some() { … }` the payload may drive
        // placement, because the claim promises deferred fills never take
        // that configuration. An unconditional `true` claim licenses
        // nothing.
        let guards = claim_idents(ws, id);
        let insert = ws.items_where(|ws, j| {
            let jt = ws.item(j);
            jt.kind == ItemKind::Fn && jt.name == "insert" && jt.self_ty.as_deref() == Some(ty.as_str())
        });
        let has_patch = ws
            .items_where(|ws, j| {
                let jt = ws.item(j);
                jt.kind == ItemKind::Fn
                    && jt.name == "patch_ppn"
                    && jt.self_ty.as_deref() == Some(ty.as_str())
            })
            .first()
            .copied();
        if has_patch.is_none() {
            out.push(Violation {
                file: ws.rel(id).to_string(),
                line: it.line,
                rule: RULE_DEFERRED.into(),
                message: format!(
                    "`{ty}` claims supports_deferred_fill() but does not override patch_ppn; \
                     sentinel fills could never be patched to the real PPN"
                ),
            });
        }
        for ins in insert {
            let params = &ws.item(ins).params;
            let Some(payload) = params.iter().rev().find(|p| p.name != "self") else {
                continue;
            };
            if let Some((line, why)) = payload_dependent(ws, ins, &payload.name, 0, &guards) {
                out.push(Violation {
                    file: ws.rel(ins).to_string(),
                    line,
                    rule: RULE_DEFERRED.into(),
                    message: format!(
                        "`{ty}::insert` {why} `{}`, but `{ty}` claims supports_deferred_fill(): \
                         placement must be payload-independent or patch_ppn after a sentinel \
                         insert diverges from a direct insert",
                        payload.name
                    ),
                });
            }
        }
    }
}

/// True when the item's body is exactly the single token `false` — the
/// canonical "never defers" opt-out (the trait default and explicit
/// `{ false }` overrides).
fn claims_only_false(ws: &Workspace, id: ItemId) -> bool {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let (start, end) = it.body;
    let mut significant = toks[start.min(toks.len())..end.min(toks.len())]
        .iter()
        .filter(|t| t.text != "{" && t.text != "}");
    significant.next().map(|t| t.text.as_str()) == Some("false") && significant.next().is_none()
}

/// Identifiers a conditional `supports_deferred_fill` body conditions
/// its claim on (`compression` for `self.cfg.compression.is_none()`).
/// Access-path plumbing (`self`, `cfg`, `config`) and the
/// `Option`-test method names are excluded: they appear in guards that
/// have nothing to do with the claim (`self.cfg.sharing`,
/// `x.is_some()`) and must not license them. Empty for the
/// unconditional `{ true }` claim.
fn claim_idents(ws: &Workspace, id: ItemId) -> Vec<String> {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let (start, end) = it.body;
    let mut out: Vec<String> = toks[start.min(toks.len())..end.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .filter(|t| {
            !matches!(
                t.text.as_str(),
                "self" | "true" | "false" | "cfg" | "config" | "is_none" | "is_some"
            )
        })
        .map(|t| t.text.clone())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Marks the body tokens of `toks[start..end]` that sit inside a block
/// whose `if`/`while`/`match` head names one of `guards`. Within such a
/// block the payload may drive placement: the conditional claim promises
/// that configuration never answers `true`, so deferred fills never
/// reach it. Granularity is the guarded block itself — a guarded `match`
/// licenses all its arms, and `else` branches are deliberately NOT
/// licensed: the opposite configuration is exactly the one that must
/// stay payload-independent.
fn licensed_spans(toks: &[crate::lexer::Tok], start: usize, end: usize, guards: &[String]) -> Vec<bool> {
    let mut lic = vec![false; end.saturating_sub(start)];
    if guards.is_empty() {
        return lic;
    }
    let mut depth = 0usize;
    let mut lic_stack: Vec<usize> = Vec::new();
    let mut in_head = false;
    let mut head_mentions = false;
    for k in start..end {
        let t = &toks[k];
        match t.text.as_str() {
            "if" | "while" | "match" => {
                in_head = true;
                head_mentions = false;
            }
            "{" => {
                depth += 1;
                if in_head {
                    in_head = false;
                    if head_mentions {
                        lic_stack.push(depth);
                    }
                }
            }
            "}" => {
                if lic_stack.last() == Some(&depth) {
                    lic_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {
                if in_head && t.kind == TokKind::Ident && guards.iter().any(|g| g == &t.text) {
                    head_mentions = true;
                }
            }
        }
        lic[k - start] = !lic_stack.is_empty();
    }
    lic
}

/// Does the value of parameter `param` influence control flow or
/// placement inside item `id`? Returns the offending line and a verb
/// phrase. Recurses one level through `self.helper(...)` calls that
/// forward the payload. Occurrences inside regions licensed by a
/// conditional claim's `guards` (see [`licensed_spans`]) are exempt.
fn payload_dependent(
    ws: &Workspace,
    id: ItemId,
    param: &str,
    depth: usize,
    guards: &[String],
) -> Option<(usize, String)> {
    let (fi, it) = &ws.items[id];
    let toks = &ws.files[*fi].toks;
    let (start, end) = it.body;
    let end = end.min(toks.len());
    let txt = |k: usize| -> &str { toks.get(k).map(|t| t.text.as_str()).unwrap_or("") };
    let lic = licensed_spans(toks, start, end, guards);

    let mut cond_active = false;
    let mut bracket_depth = 0usize;
    for k in start..end {
        let t = &toks[k];
        match t.text.as_str() {
            "if" | "while" | "match" => cond_active = true,
            "{" => cond_active = false,
            "[" => bracket_depth += 1,
            "]" => bracket_depth = bracket_depth.saturating_sub(1),
            _ => {}
        }
        if lic[k - start] {
            continue;
        }
        if t.kind != TokKind::Ident || t.text != param {
            continue;
        }
        // `way.ppn` / `Foo::ppn`: a field or path segment, not the param.
        if txt(k.wrapping_sub(1)) == "." || txt(k.wrapping_sub(1)) == ":" {
            continue;
        }
        if cond_active {
            return Some((t.line, "branches on the payload".into()));
        }
        if bracket_depth > 0 {
            return Some((t.line, "indexes with the payload".into()));
        }
        if txt(k + 1) == "." && toks.get(k + 2).map(|t| t.kind) == Some(TokKind::Ident) && txt(k + 3) == "(" {
            return Some((t.line, "computes on the payload".into()));
        }
        if txt(k.wrapping_sub(1)) == "=" && matches!(txt(k.wrapping_sub(2)), "=" | "!" | "<" | ">") {
            return Some((t.line, "compares the payload".into()));
        }
        if txt(k + 1) == "=" && txt(k + 2) == "=" {
            return Some((t.line, "compares the payload".into()));
        }
    }

    // One-level recursion: `self.helper(..., param, ...)` forwards the
    // payload — check the helper's matching parameter too.
    if depth >= 2 {
        return None;
    }
    let self_ty = it.self_ty.as_deref()?;
    for k in start..end {
        if txt(k) != "self" || txt(k + 1) != "." {
            continue;
        }
        // Calls inside licensed regions may forward the payload into
        // payload-dependent helpers: the claim guarantees those paths are
        // never taken by a deferred fill.
        if lic[k - start] {
            continue;
        }
        let m = txt(k + 2).to_string();
        if txt(k + 3) != "(" || m == it.name {
            continue;
        }
        // Find the arg index at which `param` is passed (top level only).
        let mut dep = 0i32;
        let mut arg = 0usize;
        let mut found: Option<usize> = None;
        let mut j = k + 3;
        while j < end {
            match txt(j) {
                "(" | "[" | "{" => dep += 1,
                ")" | "]" | "}" => {
                    dep -= 1;
                    if dep == 0 {
                        break;
                    }
                }
                "," if dep == 1 => arg += 1,
                s if s == param && dep == 1 && txt(j.wrapping_sub(1)) != "." => {
                    found = Some(arg);
                }
                _ => {}
            }
            j += 1;
        }
        let Some(argi) = found else { continue };
        let helper = ws.items_where(|ws, h| {
            let ht = ws.item(h);
            ht.kind == ItemKind::Fn && ht.name == m && ht.self_ty.as_deref() == Some(self_ty)
        });
        for h in helper {
            let hp: Vec<&crate::parser::Param> = ws
                .item(h)
                .params
                .iter()
                .filter(|p| p.name != "self")
                .collect();
            if let Some(p) = hp.get(argi) {
                if let Some(hit) = payload_dependent(ws, h, &p.name, depth + 1, guards) {
                    return Some(hit);
                }
            }
        }
    }
    None
}

/// `thread::spawn` / `thread::scope` outside `pool.rs`.
fn spawn_confinement(ws: &Workspace, out: &mut Vec<Violation>) {
    for (id, (fi, it)) in ws.items.iter().enumerate() {
        if it.is_test || !matches!(it.kind, ItemKind::Fn | ItemKind::Const) {
            continue;
        }
        let rel = &ws.files[*fi].rel;
        if rel.ends_with("pool.rs") || ws.krate(id) == "simlint" {
            continue;
        }
        let toks = &ws.files[*fi].toks;
        let (start, end) = it.span;
        for k in start..end.min(toks.len()) {
            let t = &toks[k];
            if t.kind == TokKind::Ident
                && (t.text == "spawn" || t.text == "scope")
                && k >= 3
                && toks[k - 1].text == ":"
                && toks[k - 2].text == ":"
                && toks[k - 3].text == "thread"
            {
                out.push(Violation {
                    file: rel.clone(),
                    line: t.line,
                    rule: RULE_SPAWN.into(),
                    message: format!(
                        "`thread::{}` in `{}` — threading is confined to the engine pool \
                         (pool.rs) so arrival order cannot leak into simulation state",
                        t.text,
                        ws.qual_name(id)
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| parse_file(rel, lex(src)))
                .collect(),
        )
    }

    const FRONT: &str = "pub struct PerSmFront { sm: usize }\n\
        impl PerSmFront {\n\
            pub fn probe(&mut self) { helper(self.sm); }\n\
        }\n";

    #[test]
    fn phase_a_naming_shared_back_is_flagged() {
        let w = ws(&[
            ("crates/mem-hier/src/split.rs", FRONT),
            (
                "crates/mem-hier/src/help.rs",
                "pub struct SharedBack;\n\
                 pub fn helper(_sm: usize) { let _b: Option<&SharedBack> = None; }\n",
            ),
        ]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_SHARED);
        assert_eq!(v[0].file, "crates/mem-hier/src/help.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("SharedBack"));
    }

    #[test]
    fn phase_a_on_private_state_is_clean() {
        let w = ws(&[
            ("crates/mem-hier/src/split.rs", FRONT),
            (
                "crates/mem-hier/src/help.rs",
                "pub struct SharedBack;\n\
                 pub fn helper(_sm: usize) {}\n\
                 pub fn backside(_b: &SharedBack) {}\n",
            ),
        ]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn reaching_a_method_of_a_forbidden_type_is_flagged() {
        let w = ws(&[(
            "crates/mem-hier/src/split.rs",
            "pub struct PerSmFront;\n\
             pub struct SharedBack;\n\
             impl SharedBack { pub fn apply(&mut self) {} }\n\
             pub struct H { back: SharedBack }\n\
             impl PerSmFront { pub fn probe(&mut self, h: &mut H) { h.back.apply(); } }\n",
        )]);
        let v = analyze(&w);
        assert!(v.iter().any(|v| v.rule == RULE_SHARED && v.message.contains("SharedBack::apply")
            || v.message.contains("method of shared-phase type")), "{v:?}");
    }

    const TLB_TRAIT: &str = "pub struct Vpn(pub u64);\npub struct Ppn(pub u64);\n\
        pub trait TranslationBuffer {\n\
            fn insert(&mut self, vpn: Vpn, ppn: Ppn);\n\
            fn supports_deferred_fill(&self) -> bool { false }\n\
            fn patch_ppn(&mut self, vpn: Vpn, ppn: Ppn) { let _ = (vpn, ppn); }\n\
        }\n";

    #[test]
    fn payload_dependent_insert_with_deferred_fill_is_flagged() {
        let w = ws(&[(
            "crates/tlb/src/bad.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct BadTlb {{ slot: u64 }}\n\
                 impl TranslationBuffer for BadTlb {{\n\
                     fn insert(&mut self, vpn: Vpn, ppn: Ppn) {{\n\
                         if ppn.0 == 0 {{ return; }}\n\
                         self.slot = vpn.0;\n\
                     }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ true }}\n\
                     fn patch_ppn(&mut self, _vpn: Vpn, _ppn: Ppn) {{}}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DEFERRED);
        assert!(v[0].message.contains("payload-independent"));
    }

    #[test]
    fn payload_independent_insert_is_clean_and_false_claim_is_ignored() {
        let w = ws(&[(
            "crates/tlb/src/good.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct GoodTlb {{ ppn: u64 }}\n\
                 impl TranslationBuffer for GoodTlb {{\n\
                     fn insert(&mut self, vpn: Vpn, ppn: Ppn) {{\n\
                         if vpn.0 > 4 {{ return; }}\n\
                         self.ppn = ppn.0;\n\
                     }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ true }}\n\
                     fn patch_ppn(&mut self, _vpn: Vpn, ppn: Ppn) {{ self.ppn = ppn.0; }}\n\
                 }}\n\
                 pub struct Lazy;\n\
                 impl TranslationBuffer for Lazy {{\n\
                     fn insert(&mut self, _vpn: Vpn, ppn: Ppn) {{ if ppn.0 == 1 {{}} }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ false }}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        // GoodTlb reads `ppn.0` outside any condition/index: that is
        // storing the payload, which deferred fill explicitly permits…
        // but `.0` is tuple-field access via `.` punct + Num, not a
        // method call, so it stays clean. Lazy answers false: ignored.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn conditional_claim_licenses_guarded_payload_use() {
        // CondTlb defers only when compression is off; the
        // payload-dependent merge logic lives entirely under the
        // `compression.is_some()` guard, which the conditional claim
        // licenses. The unguarded tail is payload-independent: clean.
        let w = ws(&[(
            "crates/tlb/src/cond.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct Cfg {{ pub compression: Option<u64> }}\n\
                 pub struct CondTlb {{ cfg: Cfg, slot: u64 }}\n\
                 impl TranslationBuffer for CondTlb {{\n\
                     fn insert(&mut self, vpn: Vpn, ppn: Ppn) {{\n\
                         if self.cfg.compression.is_some() {{\n\
                             if ppn.0 == 0 {{ return; }}\n\
                             self.slot = ppn.0;\n\
                             return;\n\
                         }}\n\
                         self.slot = vpn.0;\n\
                     }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ self.cfg.compression.is_none() }}\n\
                     fn patch_ppn(&mut self, _vpn: Vpn, ppn: Ppn) {{ self.slot = ppn.0; }}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn conditional_claim_with_unguarded_payload_use_is_flagged() {
        // Same conditional claim, but the payload branch sits OUTSIDE the
        // compression guard — the deferred path itself is
        // payload-dependent and must be caught.
        let w = ws(&[(
            "crates/tlb/src/condbad.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct Cfg {{ pub compression: Option<u64> }}\n\
                 pub struct CondBad {{ cfg: Cfg, slot: u64 }}\n\
                 impl TranslationBuffer for CondBad {{\n\
                     fn insert(&mut self, vpn: Vpn, ppn: Ppn) {{\n\
                         if self.cfg.compression.is_some() {{ self.slot = 1; return; }}\n\
                         if ppn.0 == 0 {{ return; }}\n\
                         self.slot = vpn.0;\n\
                     }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ self.cfg.compression.is_none() }}\n\
                     fn patch_ppn(&mut self, _vpn: Vpn, _ppn: Ppn) {{}}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DEFERRED);
        assert!(v[0].message.contains("branches on the payload"), "{v:?}");
    }

    #[test]
    fn conditional_claim_does_not_license_unrelated_guards() {
        // A guard on an identifier the claim never mentions licenses
        // nothing: the payload branch under it is still flagged.
        let w = ws(&[(
            "crates/tlb/src/condfake.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct Cfg {{ pub compression: Option<u64>, pub verbose: bool }}\n\
                 pub struct CondFake {{ cfg: Cfg, slot: u64 }}\n\
                 impl TranslationBuffer for CondFake {{\n\
                     fn insert(&mut self, vpn: Vpn, ppn: Ppn) {{\n\
                         if self.cfg.verbose {{\n\
                             if ppn.0 == 0 {{ return; }}\n\
                         }}\n\
                         self.slot = vpn.0;\n\
                     }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ self.cfg.compression.is_none() }}\n\
                     fn patch_ppn(&mut self, _vpn: Vpn, _ppn: Ppn) {{}}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DEFERRED);
    }

    #[test]
    fn missing_patch_ppn_override_is_flagged() {
        let w = ws(&[(
            "crates/tlb/src/nopatch.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct NoPatch;\n\
                 impl TranslationBuffer for NoPatch {{\n\
                     fn insert(&mut self, _vpn: Vpn, _ppn: Ppn) {{}}\n\
                     fn supports_deferred_fill(&self) -> bool {{ true }}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("patch_ppn"));
    }

    #[test]
    fn forwarded_payload_is_checked_through_self_helpers() {
        let w = ws(&[(
            "crates/tlb/src/fwd.rs",
            &format!(
                "{TLB_TRAIT}\
                 pub struct Fwd;\n\
                 impl Fwd {{\n\
                     fn place(&mut self, vpn: Vpn, ppn: Ppn) {{ if ppn.0 > 0 {{ let _ = vpn; }} }}\n\
                 }}\n\
                 impl TranslationBuffer for Fwd {{\n\
                     fn insert(&mut self, vpn: Vpn, ppn: Ppn) {{ self.place(vpn, ppn); }}\n\
                     fn supports_deferred_fill(&self) -> bool {{ true }}\n\
                     fn patch_ppn(&mut self, _vpn: Vpn, _ppn: Ppn) {{}}\n\
                 }}\n"
            ),
        )]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DEFERRED);
    }

    #[test]
    fn spawn_outside_pool_rs_is_flagged() {
        let w = ws(&[
            (
                "crates/gpu-sim/src/engine.rs",
                "pub fn run() { std::thread::spawn(|| {}); }\n",
            ),
            (
                "crates/gpu-sim/src/pool.rs",
                "pub fn pooled() { std::thread::spawn(|| {}); }\n",
            ),
        ]);
        let v = analyze(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_SPAWN);
        assert_eq!(v[0].file, "crates/gpu-sim/src/engine.rs");
    }
}
