//! Character-level Rust lexer shared by the lexical rules ([`crate`])
//! and the item parser ([`crate::parser`]).
//!
//! The lexer classifies every token rather than discarding literals: the
//! taint analysis needs string contents (sink markers like
//! `"BENCH_engine.json"` live in literals) and the parser needs literals
//! to occupy exactly one token so brace/paren matching cannot be thrown
//! off by a `{` inside a string. The lexical rules filter down to
//! [`Tok::is_code`] tokens, which reproduces the v1 token stream.
//!
//! Handled exactly (with regression fixtures in `tests/lexer_edges.rs`):
//! raw strings `r"…"`/`r#"…"#`/`br##"…"##`, nested block comments, char
//! literals containing `"` or escapes, lifetimes vs char literals, raw
//! identifiers `r#type`, byte strings/chars, and the `\`-newline string
//! continuation escape (which must still advance the line counter).

use std::fmt;

/// What a token is; the lexical rules look only at code tokens, the
/// parser and the taint sink scan additionally read literals.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped).
    Ident,
    /// Number literal (suffixes and hex digits attached).
    Num,
    /// Single punctuation character.
    Punct,
    /// String literal (plain, raw or byte); `text` is the content.
    Str,
    /// Char or byte-char literal; `text` is the content between quotes.
    Chr,
    /// Lifetime; `text` is the name without the leading `'`.
    Life,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: usize,
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for literal conventions).
    pub text: String,
}

impl Tok {
    /// True for the tokens the v1 lexical rules operate on
    /// (identifiers, numbers, punctuation — not literals or lifetimes).
    pub fn is_code(&self) -> bool {
        matches!(self.kind, TokKind::Ident | TokKind::Num | TokKind::Punct)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.text)
    }
}

/// A `//` comment with its line and whether it had the line to itself.
#[derive(Clone, Debug)]
pub struct LineComment {
    /// 1-based source line.
    pub line: usize,
    /// Text after the `//`.
    pub text: String,
    /// True when no token precedes the comment on its line.
    pub standalone: bool,
}

/// The result of lexing one source file.
pub struct Lexed {
    /// All tokens, literals included.
    pub toks: Vec<Tok>,
    /// All `//` comments (allow escapes are parsed out of these).
    pub comments: Vec<LineComment>,
}

impl Lexed {
    /// The v1-compatible token stream: code tokens only.
    pub fn code_tokens(&self) -> Vec<Tok> {
        self.toks.iter().filter(|t| t.is_code()).cloned().collect()
    }
}

/// Tokenizes Rust source.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments = Vec::new();
    let n = chars.len();

    // Returns the char at `i + k`, or '\0' past the end.
    let at = |i: usize, k: usize| -> char {
        if i + k < n {
            chars[i + k]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i, 1) == '/' => {
                let standalone = toks.last().map(|t| t.line) != Some(line);
                let start = i + 2;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(LineComment {
                    line,
                    text: chars[start..i].iter().collect(),
                    standalone,
                });
            }
            '/' if at(i, 1) == '*' => {
                // Nested block comment (discarded; allows must use `//`).
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && at(i, 1) == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && at(i, 1) == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (tok, ni, nl) = lex_string(&chars, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            '\'' => {
                // Char literal or lifetime. 'a' is a char, 'a (no closing
                // quote) is a lifetime; '\x' is always a char.
                if at(i, 1) == '\\' {
                    let start_line = line;
                    let start = i + 1;
                    i += 2; // skip ' and the backslash
                    if at(i, 0) == '\'' || at(i, 0) == '\\' {
                        i += 1; // escaped quote/backslash is not the closer
                    }
                    while i < n && chars[i] != '\'' {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    toks.push(Tok {
                        line: start_line,
                        kind: TokKind::Chr,
                        text: chars[start..i.min(n)].iter().collect(),
                    });
                    i += 1;
                } else if (at(i, 1).is_alphanumeric() || at(i, 1) == '_') && at(i, 2) != '\'' {
                    // Lifetime: consume the quote and the identifier.
                    i += 1;
                    let start = i;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        line,
                        kind: TokKind::Life,
                        text: chars[start..i].iter().collect(),
                    });
                } else {
                    // 'x' for any single char, including '"'.
                    let start = i + 1;
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    toks.push(Tok {
                        line,
                        kind: TokKind::Chr,
                        text: chars[start..i.min(n)].iter().collect(),
                    });
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Raw/byte string prefixes: r"..", r#".."#, br".."; byte
                // char b'x'. A raw *identifier* (r#foo) falls through.
                let mut hashes = 0;
                while (text == "r" || text == "br") && at(i, hashes) == '#' {
                    hashes += 1;
                }
                if (text == "r" || text == "br") && at(i, hashes) == '"' {
                    let start_line = line;
                    i += hashes + 1;
                    let content_start = i;
                    let mut content_end = i;
                    // Scan for " followed by `hashes` #s.
                    'raw: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                        } else if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && at(i, 1 + k) == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                content_end = i;
                                i += 1 + hashes;
                                break 'raw;
                            }
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    if content_end < content_start {
                        content_end = n;
                    }
                    toks.push(Tok {
                        line: start_line,
                        kind: TokKind::Str,
                        text: chars[content_start..content_end].iter().collect(),
                    });
                } else if text == "r" && at(i, 0) == '#' {
                    // Raw identifier r#foo: token is the bare name.
                    i += 1;
                    let start = i;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        line,
                        kind: TokKind::Ident,
                        text: chars[start..i].iter().collect(),
                    });
                } else if text == "b" && (at(i, 0) == '"' || at(i, 0) == '\'') {
                    // Byte string/char: the next loop iteration lexes the
                    // quote as a plain string/char literal.
                } else {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Ident,
                        text,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                // Number literal (also swallows suffixes, hex digits and
                // `0..n` range dots — harmless for these rules).
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    i += 1;
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                });
            }
            _ => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Punct,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    Lexed { toks, comments }
}

/// Lexes a plain (escaped) string literal starting at the opening quote.
/// Returns the token, the index past the closing quote, and the updated
/// line counter — escaped newlines (the `\`-continuation) count too.
fn lex_string(chars: &[char], start: usize, start_line: usize) -> (Tok, usize, usize) {
    let n = chars.len();
    let mut i = start + 1;
    let mut line = start_line;
    let content_start = i;
    while i < n {
        match chars[i] {
            '\\' => {
                // Skip the escape lead; a continuation escape still ends
                // the physical line, so keep the counter honest.
                if i + 1 < n && chars[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            '\n' => {
                line += 1;
                i += 1;
            }
            '"' => {
                break;
            }
            _ => i += 1,
        }
    }
    let tok = Tok {
        line: start_line,
        kind: TokKind::Str,
        text: chars[content_start..i.min(n)].iter().collect(),
    };
    (tok, (i + 1).min(n + 1), line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_hide_contents_and_keep_lines() {
        let src = "let a = r#\"HashMap \" Instant\n//still string\"#;\nlet b = 1;\n";
        let l = lex(src);
        assert!(!idents(src).contains(&"HashMap".to_string()));
        let b = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3, "the newline inside the raw string counts");
        assert!(l.comments.is_empty(), "comment-looking raw-string content leaked");
        let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("HashMap"));
    }

    #[test]
    fn string_continuation_escape_counts_the_line() {
        let src = "let s = \"a\\\nb\";\nlet c = 1;\n";
        let l = lex(src);
        let c = l.toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c.line, 3, "escaped newline inside a string must advance the line counter");
    }

    #[test]
    fn char_literal_with_quote_does_not_open_a_string() {
        let src = "let q = '\"'; let m = HashMap::new();\n";
        assert!(idents(src).contains(&"HashMap".to_string()));
        let l = lex(src);
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Str));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = "let q = '\\''; let b = '\\\\'; let m = Instant::now();\n";
        assert!(idents(src).contains(&"Instant".to_string()));
    }

    #[test]
    fn nested_block_comments_are_discarded() {
        let src = "/* a /* HashMap */ still */ let x = 1;\n";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let l = lex(src);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Life).count(), 3);
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Chr));
    }

    #[test]
    fn byte_and_raw_prefixes() {
        let src = "let a = b\"bytes\"; let c = b'x'; let d = br#\"raw\"#; let e = r#type;\n";
        let l = lex(src);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Chr).count(), 1);
        assert!(idents(src).contains(&"type".to_string()), "raw ident unescapes");
    }

    #[test]
    fn standalone_detection_sees_literal_tokens() {
        // A line whose only token is a string literal: a trailing comment
        // on that line is NOT standalone (v1 got this wrong by dropping
        // literal tokens).
        let src = "const S: &str =\n    \"x\"; // simlint: allow(hash-iter, reason = \"xx\")\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(!l.comments[0].standalone);
    }
}
