//! Regression fixtures for the lexer edge cases that v1's token scanner
//! got wrong (or could not represent at all): raw strings, nested block
//! comments, char literals containing `"`, byte-string prefixes, and
//! line accounting across multi-line literals.
//!
//! These run through the public entry points (`lexer::lex` and
//! `lint_source`) over whole-file fixtures, so they also pin the
//! contract the lexical rules depend on: rule keywords inside any
//! literal or comment form must never fire, and line numbers reported
//! for code *after* such a form must be exact.

use simlint::lexer::{lex, TokKind};
use simlint::lint_source;

/// A fixture file exercising every literal form at once. The only real
/// violation is the `HashMap` use on the last line; everything before it
/// only *mentions* rule triggers inside literals/comments.
const GAUNTLET: &str = r##"// HashMap in a line comment
/* Instant::now() in a block comment
   /* nested: thread_rng() */
   still inside */
pub const A: &str = "HashMap::new() \" Instant";
pub const B: &str = r#"raw: std::time::Instant::now() // not a comment"#;
pub const C: &[u8] = b"bytes: thread_rng()";
pub const D: char = '"';
pub const E: char = '\'';
pub fn generic<'a>(x: &'a str) -> &'a str { x }
pub fn hit() { let _m = std::collections::HashMap::<u8, u8>::new(); }
"##;

#[test]
fn literal_and_comment_forms_never_trip_rules() {
    let v = lint_source("crates/vmem/src/gauntlet.rs", GAUNTLET);
    assert_eq!(v.len(), 1, "only the real HashMap use may fire: {v:?}");
    assert_eq!(v[0].rule, "hash-iter");
    assert_eq!(v[0].line, 11, "line accounting drifted across the literals");
}

#[test]
fn raw_string_contents_survive_for_the_sink_scan() {
    // The taint analysis reads literal contents (sink markers such as
    // "BENCH_*" live in strings), so the lexer must keep them.
    let l = lex(GAUNTLET);
    let strings: Vec<&str> = l
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert!(strings.iter().any(|s| s.contains("Instant::now()")));
    assert!(strings.iter().any(|s| s.contains("bytes: thread_rng()")));
}

#[test]
fn multiline_raw_string_keeps_the_line_counter_honest() {
    let src = "pub const X: &str = r#\"a\nb\nc\"#;\nuse std::collections::HashMap;\n";
    let v = lint_source("crates/vmem/src/multi.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 4, "three raw-string lines precede the use");
}

#[test]
fn hash_depth_must_match_to_close_a_raw_string() {
    // `"#` inside an `r##"…"##` literal does not end it.
    let src = "pub const X: &str = r##\"inner \"# quote\"##;\nuse std::collections::HashMap;\n";
    let l = lex(src);
    let s = l.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
    assert_eq!(s.text, "inner \"# quote");
    let v = lint_source("crates/vmem/src/hashes.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 2);
}

#[test]
fn char_quote_then_allow_comment_still_parses() {
    // A `'"'` literal before an allow comment: if the lexer mistook the
    // char for a string opener, the allow comment would be swallowed.
    let src = "pub const Q: char = '\"';\n\
               // simlint: allow(hash-iter, reason = \"keyed access only\")\n\
               pub fn f(m: &std::collections::HashMap<u8, u8>) -> usize { m.len() }\n";
    let v = lint_source("crates/vmem/src/charq.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn block_comment_nesting_depth_is_tracked() {
    // An unbalanced-looking close inside a nested comment must not
    // resurface code early; rule triggers after the real close do fire.
    let src = "/* outer /* inner */ tail: use std::collections::HashMap; */\n\
               pub fn f() { let _t = std::time::Instant::now(); }\n";
    let v = lint_source("crates/vmem/src/nest.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "wall-clock");
    assert_eq!(v[0].line, 2);
}

#[test]
fn raw_identifiers_unescape_to_plain_idents() {
    let l = lex("pub fn r#async(r#type: u8) -> u8 { r#type }");
    let idents: Vec<&str> = l
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert!(idents.contains(&"async"));
    assert!(idents.contains(&"type"));
    assert!(!idents.contains(&"r"));
}
