//! Mutation-style sensitivity tests for the v2 graph rules, in the
//! spirit of `sim-oracle --mutate`: start from a fixture workspace that
//! lints clean, inject one bug, and require the matching rule to catch
//! it. A linter that stays green on the mutated tree is a linter that
//! would miss the same bug in the real workspace.
//!
//! Each test materializes the fixture under a unique temp directory and
//! runs the full [`simlint::lint_tree`] pipeline (lexical pass, item
//! graph, taint + phase analyses, allow hygiene) — not the per-module
//! unit entry points, which have their own positive/negative pairs in
//! `src/taint.rs` and `src/phase.rs`.

use std::fs;
use std::path::PathBuf;

use simlint::lint_tree;

/// Writes `files` (workspace-relative path, source) under a fresh temp
/// tree named for the calling test and returns its root.
fn write_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("simlint-{name}-{}", std::process::id()));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, src).unwrap();
    }
    root
}

/// The clean baseline: a report path over keyed (non-iterating) hash
/// access, a phase-A front that touches only private state, and a
/// deferred-fill TLB whose insert ignores its payload. `crates/repro/`
/// is deliberately outside `RESULT_CRATES`, so anything these tests
/// catch comes from the graph analyses, not the v1 lexical scope.
const REPORT_RS: &str = "pub struct SimReport { pub cycles: u64 }\n\
     pub fn emit() -> SimReport { SimReport { cycles: summarize() } }\n";

const AGG_CLEAN: &str = "use std::collections::HashMap;\n\
     pub fn summarize() -> u64 {\n\
         let m: HashMap<u64, u64> = HashMap::new();\n\
         *m.get(&0).unwrap_or(&0)\n\
     }\n";

const FRONT_CLEAN: &str = "pub struct PerSmFront { sm: usize }\n\
     impl PerSmFront {\n\
         pub fn probe(&mut self) { helper(self.sm); }\n\
     }\n\
     pub fn helper(_sm: usize) {}\n";

const BACK_RS: &str = "pub struct SharedBack { pub pending: u64 }\n\
     pub fn apply_back(b: &mut SharedBack) { b.pending = 0; }\n";

const TLB_CLEAN: &str = "pub struct Vpn(pub u64);\npub struct Ppn(pub u64);\n\
     pub trait TranslationBuffer {\n\
         fn insert(&mut self, vpn: Vpn, ppn: Ppn);\n\
         fn supports_deferred_fill(&self) -> bool { false }\n\
         fn patch_ppn(&mut self, vpn: Vpn, ppn: Ppn) { let _ = (vpn, ppn); }\n\
     }\n\
     pub struct DeferTlb { ppn: u64 }\n\
     impl TranslationBuffer for DeferTlb {\n\
         fn insert(&mut self, vpn: Vpn, ppn: Ppn) {\n\
             if vpn.0 > 4 { return; }\n\
             self.ppn = ppn.0;\n\
         }\n\
         fn supports_deferred_fill(&self) -> bool { true }\n\
         fn patch_ppn(&mut self, _vpn: Vpn, ppn: Ppn) { self.ppn = ppn.0; }\n\
     }\n";

/// A second sink family: a trace writer (recognized by the
/// `TraceWriter` identifier, like the real `workloads::format` encoder)
/// whose payload comes from a keyed — hence deterministic — encoder.
const TRACE_RS: &str = "pub struct TraceWriter { pub written: u64 }\n\
     pub fn dump() -> TraceWriter { TraceWriter { written: encode() } }\n";

const ENC_CLEAN: &str = "use std::collections::HashMap;\n\
     pub fn encode() -> u64 {\n\
         let m: HashMap<u64, u64> = HashMap::new();\n\
         *m.get(&0).unwrap_or(&0)\n\
     }\n";

const BASE: [(&str, &str); 7] = [
    ("crates/repro/src/report.rs", REPORT_RS),
    ("crates/repro/src/agg.rs", AGG_CLEAN),
    ("crates/repro/src/front.rs", FRONT_CLEAN),
    ("crates/repro/src/back.rs", BACK_RS),
    ("crates/repro/src/tlb_impl.rs", TLB_CLEAN),
    ("crates/repro/src/trace.rs", TRACE_RS),
    ("crates/repro/src/trace_enc.rs", ENC_CLEAN),
];

fn lint_and_remove(root: PathBuf) -> Vec<simlint::Violation> {
    let v = lint_tree(&root).unwrap();
    fs::remove_dir_all(&root).unwrap();
    v
}

#[test]
fn baseline_fixture_workspace_lints_clean() {
    let v = lint_and_remove(write_tree("base", &BASE));
    assert!(v.is_empty(), "mutations below start from a dirty tree:\n{v:?}");
}

#[test]
fn mutation_hash_iteration_into_report_path_is_caught() {
    let mut files = BASE;
    files[1].1 = "use std::collections::HashMap;\n\
         pub fn summarize() -> u64 {\n\
             let m: HashMap<u64, u64> = HashMap::new();\n\
             let mut s = 0;\n\
             for (_k, v) in m.iter() { s += v; }\n\
             s\n\
         }\n";
    let v = lint_and_remove(write_tree("mut-taint", &files));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::taint::RULE);
    assert_eq!(v[0].file, "crates/repro/src/agg.rs");
    assert_eq!(v[0].line, 5);
    assert!(
        v[0].message.contains("`emit` → `summarize`"),
        "the witness call path to the sink is part of the message: {}",
        v[0].message
    );
}

#[test]
fn mutation_hash_iteration_into_trace_writer_path_is_caught() {
    // The trace writer is a sink in its own right: nondeterministic
    // bytes in a trace file would silently re-seed every downstream
    // replay, so the taint rule must treat `TraceWriter` like a report.
    let mut files = BASE;
    files[6].1 = "use std::collections::HashMap;\n\
         pub fn encode() -> u64 {\n\
             let m: HashMap<u64, u64> = HashMap::new();\n\
             let mut s = 0;\n\
             for (_k, v) in m.iter() { s += v; }\n\
             s\n\
         }\n";
    let v = lint_and_remove(write_tree("mut-trace", &files));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::taint::RULE);
    assert_eq!(v[0].file, "crates/repro/src/trace_enc.rs");
    assert_eq!(v[0].line, 5);
    assert!(
        v[0].message.contains("`dump` → `encode`"),
        "the witness call path to the trace-writer sink is part of the message: {}",
        v[0].message
    );
}

#[test]
fn mutation_wall_clock_into_report_path_is_caught() {
    // Same sink, different source kind: a wall-clock read feeding the
    // summary (e.g. someone "improves" the report with elapsed time).
    let mut files = BASE;
    files[1].1 = "pub fn summarize() -> u64 {\n\
         let t = std::time::Instant::now();\n\
         t.elapsed().as_nanos() as u64\n\
     }\n";
    let v = lint_and_remove(write_tree("mut-clock", &files));
    // Both layers see this one: the lexical `wall-clock` rule (which is
    // workspace-wide) and the graph taint rule (which additionally
    // proves the read can reach the report).
    let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
    assert_eq!(rules, vec![simlint::taint::RULE, "wall-clock"], "{v:?}");
    assert!(v.iter().all(|v| v.line == 2), "{v:?}");
}

#[test]
fn mutation_phase_a_reaching_shared_state_is_caught() {
    let mut files = BASE;
    files[2].1 = "pub struct PerSmFront { sm: usize }\n\
         impl PerSmFront {\n\
             pub fn probe(&mut self) { helper(self.sm); }\n\
         }\n\
         pub fn helper(_sm: usize) { let _b: Option<&SharedBack> = None; }\n";
    let v = lint_and_remove(write_tree("mut-phase", &files));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::phase::RULE_SHARED);
    assert_eq!(v[0].file, "crates/repro/src/front.rs");
    assert_eq!(v[0].line, 5);
    assert!(v[0].message.contains("SharedBack"), "{}", v[0].message);
}

#[test]
fn mutation_payload_dependent_deferred_insert_is_caught() {
    let mut files = BASE;
    files[4].1 = "pub struct Vpn(pub u64);\npub struct Ppn(pub u64);\n\
         pub trait TranslationBuffer {\n\
             fn insert(&mut self, vpn: Vpn, ppn: Ppn);\n\
             fn supports_deferred_fill(&self) -> bool { false }\n\
             fn patch_ppn(&mut self, vpn: Vpn, ppn: Ppn) { let _ = (vpn, ppn); }\n\
         }\n\
         pub struct DeferTlb { ppn: u64 }\n\
         impl TranslationBuffer for DeferTlb {\n\
             fn insert(&mut self, _vpn: Vpn, ppn: Ppn) {\n\
                 if ppn.0 == 0 { return; }\n\
                 self.ppn = ppn.0;\n\
             }\n\
             fn supports_deferred_fill(&self) -> bool { true }\n\
             fn patch_ppn(&mut self, _vpn: Vpn, ppn: Ppn) { self.ppn = ppn.0; }\n\
         }\n";
    let v = lint_and_remove(write_tree("mut-defer", &files));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::phase::RULE_DEFERRED);
    assert_eq!(v[0].file, "crates/repro/src/tlb_impl.rs");
}

#[test]
fn mutation_conditionally_deferring_insert_with_unguarded_payload_is_caught() {
    // The PartitionedTlb shape: a *conditional* claim
    // (`supports_deferred_fill` = "only when compression is off") whose
    // insert keeps its payload-dependent logic under the
    // compression guard. The mutation hoists a payload branch OUT of the
    // guard into the deferred path — exactly the bug that would make a
    // sentinel insert diverge from a direct one — and the rule must
    // catch it with no allow.
    let mut files = BASE;
    files[4].1 = "pub struct Vpn(pub u64);\npub struct Ppn(pub u64);\n\
         pub struct Cfg { pub compression: Option<u64> }\n\
         pub trait TranslationBuffer {\n\
             fn insert(&mut self, vpn: Vpn, ppn: Ppn);\n\
             fn supports_deferred_fill(&self) -> bool { false }\n\
             fn patch_ppn(&mut self, vpn: Vpn, ppn: Ppn) { let _ = (vpn, ppn); }\n\
         }\n\
         pub struct CondTlb { cfg: Cfg, ppn: u64 }\n\
         impl TranslationBuffer for CondTlb {\n\
             fn insert(&mut self, vpn: Vpn, ppn: Ppn) {\n\
                 if self.cfg.compression.is_some() {\n\
                     if ppn.0 == 0 { return; }\n\
                     self.ppn = ppn.0;\n\
                     return;\n\
                 }\n\
                 if ppn.0 == 7 { return; }\n\
                 self.ppn = vpn.0;\n\
             }\n\
             fn supports_deferred_fill(&self) -> bool { self.cfg.compression.is_none() }\n\
             fn patch_ppn(&mut self, _vpn: Vpn, ppn: Ppn) { self.ppn = ppn.0; }\n\
         }\n";
    let v = lint_and_remove(write_tree("mut-cond-defer", &files));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::phase::RULE_DEFERRED);
    assert_eq!(v[0].file, "crates/repro/src/tlb_impl.rs");
    assert_eq!(v[0].line, 17, "flagged the unguarded branch, not the licensed one");
    assert!(
        v[0].message.contains("branches on the payload"),
        "{}",
        v[0].message
    );
}

#[test]
fn mutation_payload_dependent_sub_entry_merge_is_caught() {
    // The SubEntryTlb shape: one way holds per-ASID sub-entry slots and
    // claims deferred-fill support because way victims key on stamps
    // and slot victims on a round-robin cursor. The mutation makes the
    // slot-merge decision branch on the incoming frame (merge only
    // even PPNs) — a sentinel insert would then pick a different slot
    // than the later patched fill, so the rule must flag it.
    let mut files = BASE;
    files[4].1 = "pub struct Vpn(pub u64);\npub struct Ppn(pub u64);\n\
         pub trait TranslationBuffer {\n\
             fn insert(&mut self, vpn: Vpn, ppn: Ppn);\n\
             fn supports_deferred_fill(&self) -> bool { false }\n\
             fn patch_ppn(&mut self, vpn: Vpn, ppn: Ppn) { let _ = (vpn, ppn); }\n\
         }\n\
         pub struct SubWay { pub vpn: u64, pub slots: [u64; 2], pub cursor: usize }\n\
         pub struct SubTlb { way: SubWay }\n\
         impl TranslationBuffer for SubTlb {\n\
             fn insert(&mut self, vpn: Vpn, ppn: Ppn) {\n\
                 if ppn.0 % 2 == 0 {\n\
                     self.way.slots[self.way.cursor] = ppn.0;\n\
                     return;\n\
                 }\n\
                 self.way.vpn = vpn.0;\n\
                 self.way.cursor = (self.way.cursor + 1) % 2;\n\
                 self.way.slots[self.way.cursor] = ppn.0;\n\
             }\n\
             fn supports_deferred_fill(&self) -> bool { true }\n\
             fn patch_ppn(&mut self, _vpn: Vpn, ppn: Ppn) { self.way.slots[self.way.cursor] = ppn.0; }\n\
         }\n";
    let v = lint_and_remove(write_tree("mut-sub-entry-defer", &files));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::phase::RULE_DEFERRED);
    assert_eq!(v[0].file, "crates/repro/src/tlb_impl.rs");
}

#[test]
fn mutation_stray_thread_spawn_is_caught() {
    let v = lint_and_remove(write_tree(
        "mut-spawn",
        &[
            ("crates/repro/src/report.rs", REPORT_RS),
            ("crates/repro/src/agg.rs", AGG_CLEAN),
            (
                "crates/repro/src/runner.rs",
                "pub fn run_all() { std::thread::spawn(|| {}); }\n",
            ),
        ],
    ));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, simlint::phase::RULE_SPAWN);
    assert_eq!(v[0].file, "crates/repro/src/runner.rs");
}

#[test]
fn allowed_injected_taint_is_suppressed_and_the_allow_counts_as_used() {
    // End-to-end allow integration for a graph rule: the same taint
    // mutation, but with a reasoned allow on the source line. The run
    // must be clean — the finding suppressed AND no stale-allow echo.
    let mut files = BASE;
    files[1].1 = "use std::collections::HashMap;\n\
         pub fn summarize() -> u64 {\n\
             let m: HashMap<u64, u64> = HashMap::new();\n\
             let mut s = 0;\n\
             // simlint: allow(taint-reaches-report, reason = \"sum is order-independent\")\n\
             for (_k, v) in m.iter() { s += v; }\n\
             s\n\
         }\n";
    let v = lint_and_remove(write_tree("mut-allow", &files));
    assert!(v.is_empty(), "{v:?}");
}
