//! Graph-derived cross-checks over the *real* workspace.
//!
//! v1 pinned the linter's scope with hand-written lists (`RESULT_CRATES`,
//! `HOT_PATHS`) and unit tests that re-asserted their contents — which
//! drifted every time a crate or file was added. These tests derive the
//! same facts from the [`simlint::graph::Workspace`] item graph instead:
//! the hand lists stay for one release cycle as a cross-check, and these
//! assertions are the thing that actually fails when the workspace
//! grows past them.

use std::collections::BTreeSet;
use std::path::Path;

use simlint::graph::Workspace;
use simlint::parser::ItemKind;
use simlint::{build_workspace, HOT_PATHS, RESULT_CRATES};

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    build_workspace(&root).expect("workspace sources readable")
}

#[test]
fn hand_result_crates_match_the_computed_influence_set() {
    let ws = real_workspace();
    let computed = simlint::taint::result_crates(&ws);

    // No dead entries: every hand-listed crate must be provably
    // result-influencing (some item the sinks reach lives in it).
    for entry in RESULT_CRATES {
        let name = entry
            .strip_prefix("crates/")
            .and_then(|s| s.strip_suffix('/'))
            .expect("RESULT_CRATES entries are crates/<name>/ prefixes");
        assert!(
            computed.contains(name),
            "{entry} is hand-listed as a result crate but no sink reaches it; \
             remove it from RESULT_CRATES"
        );
    }

    // No missed crates: everything the graph proves result-influencing
    // is either hand-listed or `bench` — the sink side itself (the CSV /
    // BENCH_* emitters). bench is deliberately outside the *lexical*
    // hash-iter/lossy-cast scope, but the graph taint rule covers it
    // workspace-wide, so nondeterminism there is still caught.
    for name in &computed {
        let listed = RESULT_CRATES.contains(&format!("crates/{name}/").as_str())
            || RESULT_CRATES
                .iter()
                .any(|e| e.strip_prefix("crates/").and_then(|s| s.strip_suffix('/')) == Some(name));
        assert!(
            listed || name == "bench",
            "crate `{name}` is reachable from a result sink but not in RESULT_CRATES; \
             add it (or extend the documented exceptions here)"
        );
    }
}

#[test]
fn phase_a_entry_files_are_all_in_the_hot_path() {
    // Every phase-A entry point (the code `hot-unwrap`/`engine-lock`
    // exist to protect) must live in a HOT_PATHS file. v1 asserted the
    // file names; this derives them.
    let ws = real_workspace();
    let entries = simlint::phase::phase_a_entries(&ws);
    assert!(!entries.is_empty(), "no phase-A entry points found — parser regression?");
    for id in entries {
        let rel = ws.rel(id);
        assert!(
            HOT_PATHS.contains(&rel),
            "phase-A entry `{}` lives in {rel}, which is not in HOT_PATHS",
            ws.qual_name(id)
        );
    }
}

#[test]
fn translation_buffer_impls_are_hot_or_documented_exceptions() {
    // Every `TranslationBuffer` implementation is lookup/insert code on
    // the per-access path and belongs in HOT_PATHS — except wrappers
    // whose entire point is to sit outside the engine's no-panic /
    // no-lock discipline. Each exception carries its reason; a new impl
    // file showing up here means: add it to HOT_PATHS or justify it.
    const EXCEPTIONS: [(&str, &str); 1] = [(
        "crates/sim-oracle/src/mutate.rs",
        "oracle mutants are correctness references, never on the timing path",
    )];

    let ws = real_workspace();
    let mut impl_files: BTreeSet<&str> = BTreeSet::new();
    for id in ws.items_where(|w, i| {
        w.item(i).trait_name.as_deref() == Some("TranslationBuffer") && !w.item(i).is_test
    }) {
        impl_files.insert(ws.rel(id));
    }
    assert!(
        impl_files.len() >= 4,
        "suspiciously few TranslationBuffer impls found: {impl_files:?}"
    );
    for rel in &impl_files {
        assert!(
            HOT_PATHS.contains(rel) || EXCEPTIONS.iter().any(|(e, _)| e == rel),
            "{rel} implements TranslationBuffer but is neither in HOT_PATHS nor a \
             documented exception"
        );
    }
    // The exception list cannot rot: each entry must still contain an impl.
    for (e, why) in EXCEPTIONS {
        assert!(
            impl_files.contains(e),
            "exception {e} ({why}) no longer implements TranslationBuffer; drop it"
        );
    }
}

#[test]
fn shared_state_definitions_live_in_the_hierarchy_or_the_walk_machinery() {
    // The phase-safety FORBIDDEN types must be defined either in a
    // HOT_PATHS file (the hierarchy split that phase B drains) or in
    // `crates/vmem/` (walkers and address spaces, which only run behind
    // the drain). A definition anywhere else means phase-B state leaked
    // into a layer the phase analysis does not know about.
    let ws = real_workspace();
    let mut found = BTreeSet::new();
    for id in ws.items_where(|w, i| {
        let it = w.item(i);
        matches!(it.kind, ItemKind::Struct | ItemKind::Enum)
            && simlint::phase::FORBIDDEN.contains(&it.name.as_str())
    }) {
        let rel = ws.rel(id);
        assert!(
            HOT_PATHS.contains(&rel) || rel.starts_with("crates/vmem/"),
            "shared-phase type `{}` is defined in {rel}",
            ws.item(id).name
        );
        found.insert(ws.item(id).name.clone());
    }
    // And all of them must exist somewhere: a renamed type would
    // silently hollow out the phase-safety rule.
    for ty in simlint::phase::FORBIDDEN {
        assert!(
            found.contains(ty),
            "FORBIDDEN type `{ty}` is not defined anywhere; update phase::FORBIDDEN \
             for the rename"
        );
    }
}

#[test]
fn hot_paths_exist_and_every_entry_is_parsed() {
    // HOT_PATHS is string-matched against relative paths; a typo or a
    // file rename would silently un-hot a file. The graph knows every
    // parsed file, so stale entries are detectable.
    let ws = real_workspace();
    let parsed: BTreeSet<&str> = ws.files.iter().map(|f| f.rel.as_str()).collect();
    for p in HOT_PATHS {
        assert!(parsed.contains(p), "HOT_PATHS entry {p} does not exist in the workspace");
    }
}
