//! Property-based tests for the vmem substrate.

use proptest::prelude::*;
use vmem::{
    AddressSpace, FrameAllocator, PageSize, PageTable, PhysAddr, Ppn, PteFlags, VirtAddr, Vpn,
    WalkerPool,
};

fn present() -> PteFlags {
    PteFlags {
        present: true,
        writable: true,
        ..Default::default()
    }
}

proptest! {
    /// Splitting an address into (vpn, offset) and recombining is identity
    /// for both page sizes.
    #[test]
    fn addr_split_roundtrip(raw in 0u64..(1 << 48), large in any::<bool>()) {
        let size = if large { PageSize::Large } else { PageSize::Small };
        let va = VirtAddr::new(raw);
        let rebuilt = VirtAddr::from_parts(va.vpn(size), va.page_offset(size), size);
        prop_assert_eq!(rebuilt, va);
        let pa = PhysAddr::new(raw);
        let rebuilt = PhysAddr::from_parts(pa.ppn(size), pa.page_offset(size), size);
        prop_assert_eq!(rebuilt, pa);
    }

    /// align_down <= addr <= align_up, both aligned, within one page.
    #[test]
    fn alignment_invariants(raw in 0u64..(1 << 47)) {
        let size = PageSize::Small;
        let va = VirtAddr::new(raw);
        let down = va.align_down(size);
        let up = va.align_up(size);
        prop_assert!(down <= va);
        prop_assert!(up >= va);
        prop_assert!(down.is_aligned(size));
        prop_assert!(up.is_aligned(size));
        prop_assert!(up.raw() - down.raw() <= size.bytes());
    }

    /// Page-table map/walk agree on arbitrary sparse VPN sets; unmapped
    /// VPNs miss.
    #[test]
    fn page_table_map_walk_agree(vpns in proptest::collection::hash_set(0u64..(1 << 36), 1..50)) {
        let mut pt = PageTable::new();
        let vpns: Vec<u64> = vpns.into_iter().collect();
        for (i, &v) in vpns.iter().enumerate() {
            pt.map(Vpn::new(v), Ppn::new(i as u64), PageSize::Small, present()).unwrap();
        }
        for (i, &v) in vpns.iter().enumerate() {
            let w = pt.walk_vpn(Vpn::new(v)).expect("mapped page walks");
            prop_assert_eq!(w.ppn, Ppn::new(i as u64));
            prop_assert_eq!(w.levels_touched, 4);
        }
        prop_assert_eq!(pt.mapped_pages(), vpns.len() as u64);
        // A vpn not in the set misses.
        let absent = vpns.iter().max().unwrap() + 1;
        prop_assert!(pt.walk_vpn(Vpn::new(absent)).is_none());
    }

    /// Frame allocator never returns the same live frame twice.
    #[test]
    fn frames_unique_while_live(n in 1u64..200) {
        let mut fa = FrameAllocator::new(n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let p = fa.allocate(PageSize::Small).unwrap();
            prop_assert!(seen.insert(p));
        }
        prop_assert!(fa.allocate(PageSize::Small).is_err());
    }

    /// Demand paging is idempotent: re-translation returns the same frame,
    /// and offsets within a page are preserved.
    #[test]
    fn translation_stable(offsets in proptest::collection::vec(0u64..65536, 1..40)) {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("buf", 65536).unwrap();
        let mut first: std::collections::HashMap<u64, u64> = Default::default();
        for &off in &offsets {
            let pa = s.translate_or_fault(b.addr_of(off)).unwrap();
            let page = off / 4096;
            let frame = pa.ppn(PageSize::Small).raw();
            prop_assert_eq!(pa.page_offset(PageSize::Small), off % 4096);
            if let Some(&f) = first.get(&page) {
                prop_assert_eq!(frame, f);
            } else {
                first.insert(page, frame);
            }
        }
        // Fault count equals the number of distinct pages touched.
        prop_assert_eq!(s.stats().demand_faults, first.len() as u64);
    }

    /// Walker pool: completion is never before issue + latency and walkers
    /// are conserved (no more than `w` walks overlap).
    #[test]
    fn walker_pool_conserves_walkers(
        w in 1usize..8,
        lat in 1u64..600,
        reqs in proptest::collection::vec((0u64..10_000, 0u64..64), 1..100),
    ) {
        let mut pool = WalkerPool::new(w, lat);
        let mut reqs = reqs;
        reqs.sort_by_key(|&(c, _)| c);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(cycle, vpn) in &reqs {
            let done = pool.submit(cycle, Vpn::new(vpn));
            // A coalesced request may ride an in-flight walk and finish in
            // fewer than `lat` cycles, but never before its own issue.
            prop_assert!(done > cycle);
            intervals.push((done - lat, done));
        }
        // Check max overlap of actual walks <= w: coalesced requests share
        // intervals, which dedup removes.
        intervals.sort_unstable();
        intervals.dedup();
        for &(start, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(s, e)| s <= start && start < e)
                .count();
            prop_assert!(overlapping <= w, "{} walks overlap with {} walkers", overlapping, w);
        }
    }
}
