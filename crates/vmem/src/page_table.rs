//! A 4-level x86-64-style radix page table.
//!
//! The table maps [`Vpn`]s to [`Ppn`]s through four levels of 512-entry
//! nodes (9 index bits per level), exactly as the x86-64 tables walked by
//! gem5-gpu's page-table walkers. 2 MiB huge pages terminate the walk one
//! level early at the PD level.
//!
//! The simulator never stores data in pages, so leaf entries hold only the
//! frame number and flag bits; interior nodes are arena indices.

use crate::addr::{Ppn, VirtAddr, Vpn};
use crate::error::VmemError;
use crate::page::PageSize;

/// Number of radix levels in the table.
pub const PAGE_TABLE_LEVELS: usize = 4;

/// Index bits consumed per level.
const BITS_PER_LEVEL: u32 = 9;

/// Entries per node.
const NODE_ENTRIES: usize = 1 << BITS_PER_LEVEL;

/// Per-leaf permission/status flags.
///
/// Only the bits the simulator consults are modeled.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PteFlags {
    /// Entry holds a valid translation.
    pub present: bool,
    /// Page may be written.
    pub writable: bool,
    /// Leaf maps a 2 MiB page (set on PD-level leaves).
    pub huge: bool,
    /// Page has been written since mapping (set by the simulator on
    /// write accesses).
    pub dirty: bool,
    /// Page has been referenced since mapping.
    pub accessed: bool,
}

/// The outcome of a successful page-table walk.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WalkResult {
    /// The translated frame number, in units of the mapped page size.
    pub ppn: Ppn,
    /// Size of the mapping that was hit.
    pub page_size: PageSize,
    /// Leaf flags at the time of the walk.
    pub flags: PteFlags,
    /// Number of page-table memory references the walk performed
    /// (4 for a 4 KiB leaf, 3 for a 2 MiB leaf).
    pub levels_touched: u32,
}

#[derive(Clone, Debug)]
struct Node {
    entries: Vec<Entry>,
}

#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
enum Entry {
    #[default]
    Empty,
    /// Interior pointer into the node arena.
    Interior(u32),
    /// Leaf translation.
    Leaf {
        ppn: Ppn,
        flags: PteFlags,
    },
}

impl Node {
    fn new() -> Self {
        Node {
            entries: vec![Entry::Empty; NODE_ENTRIES],
        }
    }
}

/// A 4-level radix page table mapping virtual to physical page numbers.
///
/// # Example
///
/// ```
/// use vmem::{PageTable, PageSize, Ppn, PteFlags, VirtAddr};
///
/// # fn main() -> Result<(), vmem::VmemError> {
/// let mut pt = PageTable::new();
/// let va = VirtAddr::new(0x40_0000);
/// pt.map(va.vpn(PageSize::Small), Ppn::new(7), PageSize::Small,
///        PteFlags { present: true, writable: true, ..Default::default() })?;
/// let walk = pt.walk(va).expect("mapped");
/// assert_eq!(walk.ppn, Ppn::new(7));
/// assert_eq!(walk.levels_touched, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PageTable {
    /// Node arena; index 0 is the root (PML4).
    nodes: Vec<Node>,
    /// Count of live leaf mappings.
    mapped_pages: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            nodes: vec![Node::new()],
            mapped_pages: 0,
        }
    }

    /// Splits a small-page VPN into the four per-level indices, root first.
    fn level_indices(vpn: Vpn) -> [usize; PAGE_TABLE_LEVELS] {
        let v = vpn.raw();
        [
            ((v >> (3 * BITS_PER_LEVEL)) & (NODE_ENTRIES as u64 - 1)) as usize,
            ((v >> (2 * BITS_PER_LEVEL)) & (NODE_ENTRIES as u64 - 1)) as usize,
            ((v >> BITS_PER_LEVEL) & (NODE_ENTRIES as u64 - 1)) as usize,
            (v & (NODE_ENTRIES as u64 - 1)) as usize,
        ]
    }

    /// Installs a mapping from `vpn` to `ppn` at the given page size.
    ///
    /// For [`PageSize::Large`], `vpn` and `ppn` are expressed in 2 MiB units
    /// and the leaf is installed at the PD level.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::AlreadyMapped`] if a translation (of either
    /// size) already covers the page.
    pub fn map(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), VmemError> {
        let flags = PteFlags {
            huge: size == PageSize::Large,
            ..flags
        };
        // Normalize to small-page VPN space to compute the radix path.
        let small_vpn = match size {
            PageSize::Small => vpn,
            PageSize::Large => Vpn::new(vpn.raw() << BITS_PER_LEVEL),
        };
        let idx = Self::level_indices(small_vpn);
        let leaf_level = match size {
            PageSize::Small => PAGE_TABLE_LEVELS - 1,
            PageSize::Large => PAGE_TABLE_LEVELS - 2,
        };

        let mut node = 0usize;
        for (level, &i) in idx.iter().enumerate().take(leaf_level) {
            node = match self.nodes[node].entries[i] {
                Entry::Interior(n) => n as usize,
                Entry::Empty => {
                    let n = self.nodes.len() as u32;
                    self.nodes.push(Node::new());
                    self.nodes[node].entries[i] = Entry::Interior(n);
                    n as usize
                }
                Entry::Leaf { .. } => {
                    // A huge-page leaf already covers this region.
                    debug_assert!(level == PAGE_TABLE_LEVELS - 2);
                    return Err(VmemError::AlreadyMapped(
                        small_vpn.base_addr(PageSize::Small),
                    ));
                }
            };
        }
        let slot = &mut self.nodes[node].entries[idx[leaf_level]];
        if !matches!(slot, Entry::Empty) {
            return Err(VmemError::AlreadyMapped(
                small_vpn.base_addr(PageSize::Small),
            ));
        }
        *slot = Entry::Leaf { ppn, flags };
        self.mapped_pages += 1;
        Ok(())
    }

    /// Walks the table for a virtual address.
    ///
    /// Returns `None` when the address is unmapped. A successful walk
    /// reports the number of levels touched, which the walker-latency model
    /// uses.
    pub fn walk(&self, va: VirtAddr) -> Option<WalkResult> {
        let idx = Self::level_indices(va.vpn(PageSize::Small));
        let mut node = 0usize;
        for (level, &i) in idx.iter().enumerate() {
            match self.nodes[node].entries[i] {
                Entry::Empty => return None,
                Entry::Interior(n) => node = n as usize,
                Entry::Leaf { ppn, flags } => {
                    if !flags.present {
                        return None;
                    }
                    let page_size = if flags.huge {
                        PageSize::Large
                    } else {
                        PageSize::Small
                    };
                    return Some(WalkResult {
                        ppn,
                        page_size,
                        flags,
                        levels_touched: level as u32 + 1,
                    });
                }
            }
        }
        None
    }

    /// Convenience wrapper: walks `vpn` (a small-page VPN) by its base
    /// address.
    pub fn walk_vpn(&self, vpn: Vpn) -> Option<WalkResult> {
        self.walk(vpn.base_addr(PageSize::Small))
    }

    /// Marks the leaf covering `va` accessed (and dirty when `write`).
    ///
    /// Returns `false` when the address is unmapped.
    pub fn mark_accessed(&mut self, va: VirtAddr, write: bool) -> bool {
        let idx = Self::level_indices(va.vpn(PageSize::Small));
        let mut node = 0usize;
        for &i in &idx {
            match self.nodes[node].entries[i] {
                Entry::Empty => return false,
                Entry::Interior(n) => node = n as usize,
                Entry::Leaf { ppn, mut flags } => {
                    flags.accessed = true;
                    flags.dirty |= write;
                    self.nodes[node].entries[i] = Entry::Leaf { ppn, flags };
                    return true;
                }
            }
        }
        false
    }

    /// Removes the mapping covering `va`; returns the removed leaf.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<WalkResult> {
        let idx = Self::level_indices(va.vpn(PageSize::Small));
        let mut node = 0usize;
        for (level, &i) in idx.iter().enumerate() {
            match self.nodes[node].entries[i] {
                Entry::Empty => return None,
                Entry::Interior(n) => node = n as usize,
                Entry::Leaf { ppn, flags } => {
                    self.nodes[node].entries[i] = Entry::Empty;
                    self.mapped_pages -= 1;
                    let page_size = if flags.huge {
                        PageSize::Large
                    } else {
                        PageSize::Small
                    };
                    return Some(WalkResult {
                        ppn,
                        page_size,
                        flags,
                        levels_touched: level as u32 + 1,
                    });
                }
            }
        }
        None
    }

    /// Number of live leaf mappings (pages of any size).
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of radix nodes allocated (a proxy for table memory).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> PteFlags {
        PteFlags {
            present: true,
            writable: true,
            ..Default::default()
        }
    }

    #[test]
    fn map_then_walk_small() {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(0x1234_5000);
        pt.map(va.vpn(PageSize::Small), Ppn::new(42), PageSize::Small, flags())
            .unwrap();
        let w = pt.walk(va).unwrap();
        assert_eq!(w.ppn, Ppn::new(42));
        assert_eq!(w.page_size, PageSize::Small);
        assert_eq!(w.levels_touched, 4);
        // Neighbouring page is unmapped.
        assert!(pt.walk(va.offset(4096)).is_none());
    }

    #[test]
    fn map_then_walk_large() {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(0x4000_0000); // 2MiB aligned
        pt.map(va.vpn(PageSize::Large), Ppn::new(3), PageSize::Large, flags())
            .unwrap();
        // Any address within the 2MiB region translates.
        let w = pt.walk(va.offset(0x12_3456)).unwrap();
        assert_eq!(w.ppn, Ppn::new(3));
        assert_eq!(w.page_size, PageSize::Large);
        assert_eq!(w.levels_touched, 3);
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        let vpn = Vpn::new(100);
        pt.map(vpn, Ppn::new(1), PageSize::Small, flags()).unwrap();
        assert!(matches!(
            pt.map(vpn, Ppn::new(2), PageSize::Small, flags()),
            Err(VmemError::AlreadyMapped(_))
        ));
    }

    #[test]
    fn small_map_under_huge_leaf_rejected() {
        let mut pt = PageTable::new();
        let base = VirtAddr::new(0x4000_0000);
        pt.map(base.vpn(PageSize::Large), Ppn::new(1), PageSize::Large, flags())
            .unwrap();
        let inner = base.offset(4096).vpn(PageSize::Small);
        assert!(matches!(
            pt.map(inner, Ppn::new(9), PageSize::Small, flags()),
            Err(VmemError::AlreadyMapped(_))
        ));
    }

    #[test]
    fn unmap_removes_translation() {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(0x8000);
        pt.map(va.vpn(PageSize::Small), Ppn::new(5), PageSize::Small, flags())
            .unwrap();
        assert_eq!(pt.mapped_pages(), 1);
        let removed = pt.unmap(va).unwrap();
        assert_eq!(removed.ppn, Ppn::new(5));
        assert_eq!(pt.mapped_pages(), 0);
        assert!(pt.walk(va).is_none());
        assert!(pt.unmap(va).is_none());
    }

    #[test]
    fn mark_accessed_sets_flags() {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(0x9000);
        pt.map(va.vpn(PageSize::Small), Ppn::new(5), PageSize::Small, flags())
            .unwrap();
        assert!(pt.mark_accessed(va, true));
        let w = pt.walk(va).unwrap();
        assert!(w.flags.accessed);
        assert!(w.flags.dirty);
        assert!(!pt.mark_accessed(VirtAddr::new(0xdead_0000), false));
    }

    #[test]
    fn non_present_leaf_misses() {
        let mut pt = PageTable::new();
        let va = VirtAddr::new(0xa000);
        pt.map(
            va.vpn(PageSize::Small),
            Ppn::new(5),
            PageSize::Small,
            PteFlags::default(),
        )
        .unwrap();
        assert!(pt.walk(va).is_none());
    }

    #[test]
    fn distinct_mappings_dont_collide() {
        let mut pt = PageTable::new();
        // Map pages that differ only in the level-0 index (stride 512^3).
        for i in 0..8u64 {
            let vpn = Vpn::new(i << 27);
            pt.map(vpn, Ppn::new(i), PageSize::Small, flags()).unwrap();
        }
        for i in 0..8u64 {
            let vpn = Vpn::new(i << 27);
            assert_eq!(pt.walk_vpn(vpn).unwrap().ppn, Ppn::new(i));
        }
        assert_eq!(pt.mapped_pages(), 8);
    }

    #[test]
    fn node_count_grows_with_sparse_mappings() {
        let mut pt = PageTable::new();
        assert_eq!(pt.node_count(), 1);
        pt.map(Vpn::new(0), Ppn::new(0), PageSize::Small, flags())
            .unwrap();
        // Root + 3 interior levels.
        assert_eq!(pt.node_count(), 4);
    }
}
