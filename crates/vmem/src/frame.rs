//! Physical frame allocation.
//!
//! The simulator does not store data in frames — only the *identity* of the
//! frame matters for translation behaviour — so the allocator is a simple
//! bump allocator with a free list for returned frames. Frames are always
//! tracked at 4 KiB granularity; a 2 MiB huge page consumes 512 contiguous
//! small frames.

use crate::addr::Ppn;
use crate::error::VmemError;
use crate::page::PageSize;

/// Allocates physical frames for demand paging.
///
/// # Example
///
/// ```
/// use vmem::{FrameAllocator, PageSize};
///
/// # fn main() -> Result<(), vmem::VmemError> {
/// let mut alloc = FrameAllocator::new(1024); // 4 MiB of physical memory
/// let a = alloc.allocate(PageSize::Small)?;
/// let b = alloc.allocate(PageSize::Small)?;
/// assert_ne!(a, b);
/// alloc.free(a, PageSize::Small);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// Total number of 4 KiB frames in the pool.
    capacity_frames: u64,
    /// Next never-allocated frame (index into the allocation order).
    next: u64,
    /// Returned 4 KiB frames available for reuse.
    free_small: Vec<Ppn>,
    /// Returned 2 MiB-aligned frame runs available for reuse.
    free_large: Vec<Ppn>,
    /// Number of 4 KiB frames currently live.
    live_frames: u64,
    /// Huge frames handed out so far in scrambled mode.
    huge_count: u64,
    /// Scramble small-frame allocation order (UVM fragmentation model):
    /// consecutive allocations receive physically scattered frames, as in
    /// a long-running system with interleaved CPU/GPU faults. Requires a
    /// power-of-two capacity; huge frames are always contiguous.
    scramble: bool,
}

/// Number of 4 KiB frames per 2 MiB huge frame.
const SMALL_PER_LARGE: u64 = PageSize::Large.bytes() / PageSize::Small.bytes();

/// Odd multiplier for the frame-scrambling permutation (any odd constant
/// is a bijection modulo a power of two).
const SCRAMBLE_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

impl FrameAllocator {
    /// Creates an allocator managing `capacity_frames` 4 KiB frames,
    /// handing frames out in physically sequential order.
    pub fn new(capacity_frames: u64) -> Self {
        FrameAllocator {
            capacity_frames,
            next: 0,
            free_small: Vec::new(),
            free_large: Vec::new(),
            live_frames: 0,
            huge_count: 0,
            scramble: false,
        }
    }

    /// Creates an allocator that scrambles small-frame order
    /// (deterministically), modeling physical-memory fragmentation under
    /// UVM demand paging.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_frames` is a power of two (the scrambling
    /// permutation is defined modulo a power of two).
    pub fn new_scrambled(capacity_frames: u64) -> Self {
        assert!(
            capacity_frames.is_power_of_two(),
            "scrambled pool capacity must be a power of two"
        );
        FrameAllocator {
            scramble: true,
            ..Self::new(capacity_frames)
        }
    }

    /// Maps an allocation index to a physical frame number. Scrambled
    /// small frames are confined to the bottom half of the pool; huge
    /// frames are carved from the top half (see `allocate`), so the two
    /// never collide.
    fn frame_of(&self, index: u64) -> Ppn {
        if self.scramble {
            Ppn::new(index.wrapping_mul(SCRAMBLE_MULTIPLIER) & (self.capacity_frames / 2 - 1))
        } else {
            Ppn::new(index)
        }
    }

    /// Allocates one frame of the given size and returns its PPN
    /// (expressed in units of the requested page size).
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::OutOfFrames`] when the pool cannot satisfy the
    /// request.
    pub fn allocate(&mut self, size: PageSize) -> Result<Ppn, VmemError> {
        match size {
            PageSize::Small => {
                let limit = if self.scramble {
                    self.capacity_frames / 2
                } else {
                    self.capacity_frames
                };
                let ppn = if let Some(ppn) = self.free_small.pop() {
                    ppn
                } else if self.next < limit {
                    let ppn = self.frame_of(self.next);
                    self.next += 1;
                    ppn
                } else {
                    return Err(VmemError::OutOfFrames);
                };
                self.live_frames += 1;
                Ok(ppn)
            }
            PageSize::Large => {
                let base = if let Some(ppn) = self.free_large.pop() {
                    ppn
                } else if self.scramble {
                    // Huge frames come from the top half, bumping down in
                    // whole 2 MiB-aligned chunks; small scrambled frames
                    // stay in the bottom half.
                    let huge_total = self.capacity_frames / SMALL_PER_LARGE;
                    let huge_low = self.capacity_frames / 2 / SMALL_PER_LARGE;
                    if self.huge_count >= huge_total - huge_low {
                        return Err(VmemError::OutOfFrames);
                    }
                    Ppn::new(huge_total - 1 - self.huge_count)
                } else {
                    // Align the bump pointer up to a huge-frame boundary.
                    let aligned = self.next.div_ceil(SMALL_PER_LARGE) * SMALL_PER_LARGE;
                    if aligned + SMALL_PER_LARGE > self.capacity_frames {
                        return Err(VmemError::OutOfFrames);
                    }
                    // Alignment waste is recycled as small frames.
                    for f in self.next..aligned {
                        self.free_small.push(Ppn::new(f));
                    }
                    self.next = aligned + SMALL_PER_LARGE;
                    // Express the huge-frame PPN in 2 MiB units.
                    Ppn::new(aligned / SMALL_PER_LARGE)
                };
                if self.scramble {
                    self.huge_count += 1;
                }
                self.live_frames += SMALL_PER_LARGE;
                Ok(base)
            }
        }
    }

    /// Returns a frame to the pool.
    ///
    /// The PPN must be one previously produced by [`allocate`] with the same
    /// `size`; the allocator does not validate double-frees.
    ///
    /// [`allocate`]: FrameAllocator::allocate
    pub fn free(&mut self, ppn: Ppn, size: PageSize) {
        match size {
            PageSize::Small => {
                self.free_small.push(ppn);
                self.live_frames = self.live_frames.saturating_sub(1);
            }
            PageSize::Large => {
                self.free_large.push(ppn);
                self.live_frames = self.live_frames.saturating_sub(SMALL_PER_LARGE);
            }
        }
    }

    /// Number of 4 KiB frames currently allocated.
    pub fn live_frames(&self) -> u64 {
        self.live_frames
    }

    /// Total pool capacity in 4 KiB frames.
    pub fn capacity_frames(&self) -> u64 {
        self.capacity_frames
    }

    /// Number of 4 KiB frames still allocatable (never-used plus freed).
    pub fn available_frames(&self) -> u64 {
        self.capacity_frames - self.next
            + self.free_small.len() as u64
            + self.free_large.len() as u64 * SMALL_PER_LARGE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_frames_are_distinct() {
        let mut a = FrameAllocator::new(16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let ppn = a.allocate(PageSize::Small).unwrap();
            assert!(seen.insert(ppn));
        }
        assert_eq!(a.allocate(PageSize::Small), Err(VmemError::OutOfFrames));
    }

    #[test]
    fn free_allows_reuse() {
        let mut a = FrameAllocator::new(1);
        let p = a.allocate(PageSize::Small).unwrap();
        assert!(a.allocate(PageSize::Small).is_err());
        a.free(p, PageSize::Small);
        assert_eq!(a.allocate(PageSize::Small).unwrap(), p);
    }

    #[test]
    fn large_frame_consumes_512_small() {
        let mut a = FrameAllocator::new(1024);
        let l = a.allocate(PageSize::Large).unwrap();
        assert_eq!(l, Ppn::new(0));
        assert_eq!(a.live_frames(), 512);
        let l2 = a.allocate(PageSize::Large).unwrap();
        assert_eq!(l2, Ppn::new(1));
        assert!(a.allocate(PageSize::Large).is_err());
    }

    #[test]
    fn large_alignment_waste_recycled_as_small() {
        let mut a = FrameAllocator::new(1536);
        let _s = a.allocate(PageSize::Small).unwrap(); // frame 0
        let l = a.allocate(PageSize::Large).unwrap(); // frames 512..1024
        assert_eq!(l, Ppn::new(1));
        // Frames 1..512 were recycled; we can still allocate 511 small ones
        // plus frames 1024..1536.
        let mut count = 0;
        while a.allocate(PageSize::Small).is_ok() {
            count += 1;
        }
        assert_eq!(count, 511 + 512);
    }

    #[test]
    fn available_frames_tracks_pool() {
        let mut a = FrameAllocator::new(10);
        assert_eq!(a.available_frames(), 10);
        let p = a.allocate(PageSize::Small).unwrap();
        assert_eq!(a.available_frames(), 9);
        a.free(p, PageSize::Small);
        assert_eq!(a.available_frames(), 10);
    }

    #[test]
    fn freed_large_frame_reused() {
        let mut a = FrameAllocator::new(512);
        let l = a.allocate(PageSize::Large).unwrap();
        a.free(l, PageSize::Large);
        assert_eq!(a.allocate(PageSize::Large).unwrap(), l);
    }
}
