//! Page sizes supported by the UVM substrate.
//!
//! The paper evaluates with 4 KiB pages and conducts a separate huge-page
//! (2 MiB) study in Section V.

use std::fmt;

/// Bytes in a 4 KiB page.
pub const PAGE_SIZE_4K: u64 = 4096;

/// Bytes in a 2 MiB huge page.
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;

/// A translation granularity.
///
/// # Example
///
/// ```
/// use vmem::PageSize;
///
/// assert_eq!(PageSize::Small.bytes(), 4096);
/// assert_eq!(PageSize::Large.offset_bits(), 21);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// A 4 KiB base page (the paper's default).
    #[default]
    Small,
    /// A 2 MiB huge page (the paper's Section V large-page study).
    Large,
}

impl PageSize {
    /// Number of bytes covered by one page of this size.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small => PAGE_SIZE_4K,
            PageSize::Large => PAGE_SIZE_2M,
        }
    }

    /// Number of low address bits used for the in-page offset.
    #[inline]
    pub const fn offset_bits(self) -> u32 {
        match self {
            PageSize::Small => 12,
            PageSize::Large => 21,
        }
    }

    /// Mask selecting the in-page offset bits.
    #[inline]
    pub const fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }

    /// Number of pages needed to cover `bytes` (ceiling division).
    ///
    /// # Example
    ///
    /// ```
    /// use vmem::PageSize;
    ///
    /// assert_eq!(PageSize::Small.pages_for(1), 1);
    /// assert_eq!(PageSize::Small.pages_for(4096), 1);
    /// assert_eq!(PageSize::Small.pages_for(4097), 2);
    /// assert_eq!(PageSize::Small.pages_for(0), 0);
    /// ```
    #[inline]
    pub const fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes())
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Small => write!(f, "4KiB"),
            PageSize::Large => write!(f, "2MiB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_constants() {
        assert_eq!(PageSize::Small.bytes(), PAGE_SIZE_4K);
        assert_eq!(PageSize::Large.bytes(), PAGE_SIZE_2M);
    }

    #[test]
    fn offset_bits_consistent_with_bytes() {
        for size in [PageSize::Small, PageSize::Large] {
            assert_eq!(1u64 << size.offset_bits(), size.bytes());
            assert_eq!(size.offset_mask(), size.bytes() - 1);
        }
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(PageSize::Large.pages_for(PAGE_SIZE_2M + 1), 2);
        assert_eq!(PageSize::Large.pages_for(PAGE_SIZE_2M), 1);
    }

    #[test]
    fn default_is_small() {
        assert_eq!(PageSize::default(), PageSize::Small);
    }

    #[test]
    fn display_names() {
        assert_eq!(PageSize::Small.to_string(), "4KiB");
        assert_eq!(PageSize::Large.to_string(), "2MiB");
    }
}
