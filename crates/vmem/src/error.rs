//! Error type for virtual-memory operations.

use crate::addr::VirtAddr;
use std::error::Error;
use std::fmt;

/// Errors produced by the virtual-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmemError {
    /// Physical memory is exhausted; no frame could be allocated.
    OutOfFrames,
    /// The virtual address is not covered by any allocated buffer.
    Unmapped(VirtAddr),
    /// A buffer allocation request had zero size.
    ZeroSizedAllocation {
        /// The buffer name passed by the caller.
        name: String,
    },
    /// A buffer with this name already exists in the address space.
    DuplicateBuffer {
        /// The buffer name passed by the caller.
        name: String,
    },
    /// A mapping already exists for this virtual page.
    AlreadyMapped(VirtAddr),
}

impl fmt::Display for VmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmemError::OutOfFrames => write!(f, "physical frame pool exhausted"),
            VmemError::Unmapped(va) => {
                write!(f, "virtual address {va} is not covered by any buffer")
            }
            VmemError::ZeroSizedAllocation { name } => {
                write!(f, "buffer `{name}` requested with zero size")
            }
            VmemError::DuplicateBuffer { name } => {
                write!(f, "buffer `{name}` already exists in this address space")
            }
            VmemError::AlreadyMapped(va) => {
                write!(f, "virtual page containing {va} is already mapped")
            }
        }
    }
}

impl Error for VmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            VmemError::OutOfFrames.to_string(),
            VmemError::Unmapped(VirtAddr::new(0x123)).to_string(),
            VmemError::ZeroSizedAllocation { name: "x".into() }.to_string(),
            VmemError::DuplicateBuffer { name: "x".into() }.to_string(),
            VmemError::AlreadyMapped(VirtAddr::new(0x123)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with('v'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VmemError>();
    }
}
