//! Shared page-table-walker pool.
//!
//! Table III of the paper configures **8 shared page-table walkers with a
//! 500-cycle walk latency**. The pool is modeled analytically: each walker
//! has a next-free cycle; a walk submitted at cycle `t` starts on the
//! earliest-free walker (no earlier than `t`) and completes a fixed latency
//! later. Concurrent walks for the *same* VPN coalesce onto the in-flight
//! walk, as the MSHR-style merging in MASK/gem5-gpu does.

use crate::addr::Vpn;

/// A submitted walk request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WalkRequest {
    /// Cycle at which the request reached the walker pool.
    pub issue_cycle: u64,
    /// Virtual page being translated.
    pub vpn: Vpn,
}

/// Counters describing walker-pool activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WalkerStats {
    /// Walks actually performed by a walker.
    pub walks: u64,
    /// Requests that coalesced onto an in-flight walk for the same VPN.
    pub coalesced: u64,
    /// Total cycles requests spent waiting for a free walker.
    pub queue_wait_cycles: u64,
    /// Maximum observed queue wait for a single request.
    pub max_queue_wait: u64,
}

impl WalkerStats {
    /// Total requests that reached the pool (performed + coalesced).
    pub fn requests(&self) -> u64 {
        self.walks + self.coalesced
    }

    /// Internal consistency: the max single-request wait can never
    /// exceed the total wait, and waits require walks.
    pub fn check(&self) -> Result<(), String> {
        if self.max_queue_wait > self.queue_wait_cycles {
            return Err(format!(
                "max_queue_wait {} exceeds total queue_wait_cycles {}",
                self.max_queue_wait, self.queue_wait_cycles
            ));
        }
        if self.walks == 0 && (self.queue_wait_cycles > 0 || self.coalesced > 0) {
            return Err(String::from("activity recorded without any walks"));
        }
        Ok(())
    }
}

/// A pool of hardware page-table walkers with fixed walk latency.
///
/// # Example
///
/// ```
/// use vmem::{Vpn, WalkerPool};
///
/// let mut pool = WalkerPool::new(8, 500);
/// let done = pool.submit(100, Vpn::new(7));
/// assert_eq!(done, 600);
/// // A second request for the same page while the walk is in flight
/// // coalesces and completes at the same time.
/// assert_eq!(pool.submit(200, Vpn::new(7)), 600);
/// ```
#[derive(Debug, Clone)]
pub struct WalkerPool {
    /// Next-free cycle per walker.
    free_at: Vec<u64>,
    latency: u64,
    /// In-flight walks as `(vpn, completion cycle)` pairs with unique
    /// VPNs. Lazy pruning bounds the list to a few times the walker
    /// count, so a linear scan beats an ordered map on every submit.
    in_flight: Vec<(Vpn, u64)>,
    stats: WalkerStats,
}

impl WalkerPool {
    /// Creates a pool of `walkers` walkers, each walk taking `latency`
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `walkers == 0`.
    pub fn new(walkers: usize, latency: u64) -> Self {
        assert!(walkers > 0, "walker pool must have at least one walker");
        WalkerPool {
            free_at: vec![0; walkers],
            latency,
            in_flight: Vec::new(),
            stats: WalkerStats::default(),
        }
    }

    /// Submits a walk at `cycle` and returns its completion cycle.
    ///
    /// Requests for a VPN that already has a walk in flight return that
    /// walk's completion cycle without occupying a walker.
    pub fn submit(&mut self, cycle: u64, vpn: Vpn) -> u64 {
        self.submit_with_latency(cycle, vpn, self.latency)
    }

    /// Like [`WalkerPool::submit`] with an explicit per-walk latency
    /// (e.g. radix walks whose cost depends on the levels touched).
    pub fn submit_with_latency(&mut self, cycle: u64, vpn: Vpn, latency: u64) -> u64 {
        // Drop completed walks from the in-flight list lazily.
        if self.in_flight.len() > 4 * self.free_at.len() {
            self.in_flight.retain(|&(_, done)| done > cycle);
        }
        let slot = self.in_flight.iter().position(|&(v, _)| v == vpn);
        if let Some(i) = slot {
            let done = self.in_flight[i].1;
            if done > cycle {
                self.stats.coalesced += 1;
                return done;
            }
        }
        // Pick the earliest-free walker.
        let (idx, &start) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("pool is non-empty");
        let begin = start.max(cycle);
        let wait = begin - cycle;
        let done = begin + latency;
        self.free_at[idx] = done;
        // Unique VPNs: refresh a stale slot in place, else append.
        match slot {
            Some(i) => self.in_flight[i].1 = done,
            None => self.in_flight.push((vpn, done)),
        }
        self.stats.walks += 1;
        self.stats.queue_wait_cycles += wait;
        self.stats.max_queue_wait = self.stats.max_queue_wait.max(wait);
        done
    }

    /// Fixed per-walk latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of walkers in the pool.
    pub fn walkers(&self) -> usize {
        self.free_at.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> WalkerStats {
        self.stats
    }

    /// Resets walker occupancy and statistics (keeps configuration).
    pub fn reset(&mut self) {
        self.free_at.fill(0);
        self.in_flight.clear();
        self.stats = WalkerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_walk_takes_latency() {
        let mut p = WalkerPool::new(1, 500);
        assert_eq!(p.submit(0, Vpn::new(1)), 500);
        assert_eq!(p.stats().walks, 1);
    }

    #[test]
    fn pool_parallelism() {
        let mut p = WalkerPool::new(2, 100);
        // Two distinct walks at the same cycle proceed in parallel.
        assert_eq!(p.submit(0, Vpn::new(1)), 100);
        assert_eq!(p.submit(0, Vpn::new(2)), 100);
        // Third queues behind one of them.
        assert_eq!(p.submit(0, Vpn::new(3)), 200);
        assert_eq!(p.stats().queue_wait_cycles, 100);
        assert_eq!(p.stats().max_queue_wait, 100);
    }

    #[test]
    fn same_vpn_coalesces() {
        let mut p = WalkerPool::new(8, 500);
        let d1 = p.submit(10, Vpn::new(42));
        let d2 = p.submit(20, Vpn::new(42));
        assert_eq!(d1, d2);
        assert_eq!(p.stats().walks, 1);
        assert_eq!(p.stats().coalesced, 1);
    }

    #[test]
    fn completed_walk_does_not_coalesce() {
        let mut p = WalkerPool::new(8, 500);
        let d1 = p.submit(0, Vpn::new(42));
        let d2 = p.submit(d1 + 1, Vpn::new(42));
        assert_eq!(d2, d1 + 1 + 500);
        assert_eq!(p.stats().walks, 2);
    }

    #[test]
    fn eight_walkers_saturate_like_paper_config() {
        let mut p = WalkerPool::new(8, 500);
        // 16 distinct walks at cycle 0: first 8 finish at 500, next 8 at 1000.
        let mut completions: Vec<u64> = (0..16).map(|i| p.submit(0, Vpn::new(i))).collect();
        completions.sort_unstable();
        assert_eq!(&completions[..8], &[500; 8]);
        assert_eq!(&completions[8..], &[1000; 8]);
    }

    #[test]
    fn explicit_latency_overrides_default() {
        let mut p = WalkerPool::new(2, 500);
        assert_eq!(p.submit_with_latency(0, Vpn::new(1), 50), 50);
        assert_eq!(p.submit(0, Vpn::new(2)), 500);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = WalkerPool::new(1, 500);
        p.submit(0, Vpn::new(1));
        p.reset();
        assert_eq!(p.stats(), WalkerStats::default());
        assert_eq!(p.submit(0, Vpn::new(1)), 500);
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_walkers_rejected() {
        let _ = WalkerPool::new(0, 500);
    }

    #[test]
    fn stats_requests_and_check() {
        let mut p = WalkerPool::new(1, 100);
        p.submit(0, Vpn::new(1));
        p.submit(50, Vpn::new(1)); // coalesces
        p.submit(0, Vpn::new(2)); // queues 100 cycles
        let s = p.stats();
        assert_eq!(s.requests(), 3);
        assert!(s.check().is_ok());
        let bad = WalkerStats {
            max_queue_wait: 10,
            queue_wait_cycles: 5,
            walks: 1,
            ..Default::default()
        };
        assert!(bad.check().is_err());
        let phantom = WalkerStats {
            coalesced: 1,
            ..Default::default()
        };
        assert!(phantom.check().is_err());
    }

    #[test]
    fn in_flight_map_pruned() {
        let mut p = WalkerPool::new(1, 10);
        for i in 0..1000u64 {
            p.submit(i * 100, Vpn::new(i));
        }
        // Lazy pruning keeps the map bounded (4x walker count threshold
        // triggers a retain; afterwards only live walks remain).
        assert!(p.in_flight.len() <= 8);
    }
}
