//! # vmem — Unified Virtual Memory substrate for the GPU TLB simulator
//!
//! This crate provides the virtual-memory machinery that the DAC'23 paper
//! *Orchestrated Scheduling and Partitioning for Improved Address
//! Translation in GPUs* assumes from its gem5-gpu substrate:
//!
//! * strongly-typed virtual/physical addresses and page numbers
//!   ([`VirtAddr`], [`PhysAddr`], [`Vpn`], [`Ppn`]),
//! * 4 KiB and 2 MiB page sizes ([`PageSize`]),
//! * a 4-level x86-64-style radix [`PageTable`] with a physical
//!   [`FrameAllocator`],
//! * a UVM [`AddressSpace`] with named buffer allocation and first-touch
//!   demand paging,
//! * a shared [`WalkerPool`] that models the paper's eight page-table
//!   walkers with 500-cycle walks (Table III).
//!
//! # Example
//!
//! ```
//! use vmem::{AddressSpace, PageSize};
//!
//! # fn main() -> Result<(), vmem::VmemError> {
//! let mut space = AddressSpace::new(PageSize::Small);
//! let buf = space.allocate("matrix_a", 1 << 20)?; // 1 MiB buffer
//! let va = buf.addr_of(4096);
//! // First touch demand-pages the backing frame in.
//! let pa = space.translate_or_fault(va)?;
//! assert_eq!(pa.page_offset(PageSize::Small), va.page_offset(PageSize::Small));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod frame;
mod page;
mod page_table;
mod space;
mod walker;

pub use addr::{Asid, PhysAddr, Ppn, VirtAddr, Vpn};
pub use error::VmemError;
pub use frame::FrameAllocator;
pub use page::{PageSize, PAGE_SIZE_2M, PAGE_SIZE_4K};
pub use page_table::{PageTable, PteFlags, WalkResult, PAGE_TABLE_LEVELS};
pub use space::{AddressSpace, Buffer, BufferId, FaultKind, SpaceStats};
pub use walker::{WalkRequest, WalkerPool, WalkerStats};
