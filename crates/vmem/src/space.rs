//! UVM address spaces with named buffers and first-touch demand paging.
//!
//! Workload generators allocate named buffers (`"matrix_a"`, `"csr_row"`,
//! …) in an [`AddressSpace`] and emit virtual addresses into those buffers.
//! The space backs pages lazily: the first touch of a page demand-allocates
//! a physical frame and installs the translation, exactly like UVM demand
//! paging in the paper's gem5-gpu substrate.

use crate::addr::{PhysAddr, VirtAddr, Vpn};
use crate::error::VmemError;
use crate::frame::FrameAllocator;
use crate::page::PageSize;
use crate::page_table::{PageTable, PteFlags, WalkResult};
use std::collections::BTreeMap;

/// Identifier for an allocated buffer within an [`AddressSpace`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u32);

impl BufferId {
    /// Returns the raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A named, contiguous virtual allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Buffer {
    id: BufferId,
    name: String,
    base: VirtAddr,
    size: u64,
}

impl Buffer {
    /// The buffer's identifier.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// The buffer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The first virtual address of the buffer.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// The buffer length in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Returns the virtual address `offset` bytes into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= size()` — addresses must stay inside the
    /// allocation.
    pub fn addr_of(&self, offset: u64) -> VirtAddr {
        assert!(
            offset < self.size,
            "offset {offset:#x} out of bounds for buffer `{}` of size {:#x}",
            self.name,
            self.size
        );
        self.base.offset(offset)
    }

    /// Returns `true` when `va` lies inside this buffer.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.base && va.raw() < self.base.raw() + self.size
    }
}

/// What happened on a translation request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The page was already backed; no fault.
    None,
    /// First touch: a frame was demand-allocated ("far fault" in UVM).
    DemandPaged,
}

/// Counters describing demand-paging activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Translations requested through [`AddressSpace::translate_or_fault`].
    pub translations: u64,
    /// Demand-paging faults taken (pages backed on first touch).
    pub demand_faults: u64,
    /// Total bytes allocated across buffers.
    pub allocated_bytes: u64,
}

/// A UVM address space: virtual buffer allocation + lazy physical backing.
///
/// The default physical pool is large enough that frame exhaustion never
/// perturbs the paper's experiments (translation behaviour, not memory
/// oversubscription, is the object of study); use
/// [`AddressSpace::with_capacity`] to model a constrained pool.
///
/// # Example
///
/// ```
/// use vmem::{AddressSpace, PageSize};
///
/// # fn main() -> Result<(), vmem::VmemError> {
/// let mut space = AddressSpace::new(PageSize::Small);
/// let a = space.allocate("a", 64 * 1024)?;
/// let pa1 = space.translate_or_fault(a.addr_of(0))?;
/// let pa2 = space.translate_or_fault(a.addr_of(8))?;
/// assert_eq!(pa1.raw() + 8, pa2.raw());
/// assert_eq!(space.stats().demand_faults, 1); // one page touched
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_size: PageSize,
    page_table: PageTable,
    frames: FrameAllocator,
    buffers: Vec<Buffer>,
    by_name: BTreeMap<String, BufferId>,
    /// Next free virtual address for buffer placement.
    next_va: u64,
    stats: SpaceStats,
}

/// Default physical pool: 16 Mi frames = 64 GiB, effectively unbounded for
/// the scaled workloads.
const DEFAULT_POOL_FRAMES: u64 = 16 * 1024 * 1024;

/// Buffers are placed starting at 4 GiB and separated by a guard gap so
/// that out-of-bounds strides fault loudly instead of aliasing.
const VA_BASE: u64 = 4 << 30;

impl AddressSpace {
    /// Creates an address space that backs pages of `page_size` on
    /// demand. Physical frames are handed out in *scrambled* order,
    /// modeling the fragmentation of a long-running UVM system with
    /// interleaved CPU/GPU faults (so physically-contiguous runs only
    /// arise where something actively creates them).
    pub fn new(page_size: PageSize) -> Self {
        AddressSpace {
            page_size,
            page_table: PageTable::new(),
            frames: FrameAllocator::new_scrambled(DEFAULT_POOL_FRAMES),
            buffers: Vec::new(),
            by_name: BTreeMap::new(),
            next_va: VA_BASE,
            stats: SpaceStats::default(),
        }
    }

    /// Creates an address space whose frames are physically sequential in
    /// first-touch order (an idealized, unfragmented system — the regime
    /// in which contiguity-based TLB techniques shine).
    pub fn new_contiguous(page_size: PageSize) -> Self {
        Self::with_capacity(page_size, DEFAULT_POOL_FRAMES)
    }

    /// Creates an address space with a bounded physical pool of
    /// `capacity_frames` 4 KiB frames (sequential frame order).
    pub fn with_capacity(page_size: PageSize, capacity_frames: u64) -> Self {
        AddressSpace {
            page_size,
            page_table: PageTable::new(),
            frames: FrameAllocator::new(capacity_frames),
            buffers: Vec::new(),
            by_name: BTreeMap::new(),
            next_va: VA_BASE,
            stats: SpaceStats::default(),
        }
    }

    /// The translation granularity of this space.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Allocates a named buffer of `size` bytes and returns its handle.
    ///
    /// Buffers are aligned to the space's page size and separated by an
    /// unmapped guard page.
    ///
    /// # Errors
    ///
    /// * [`VmemError::ZeroSizedAllocation`] when `size == 0`.
    /// * [`VmemError::DuplicateBuffer`] when `name` is already taken.
    pub fn allocate(&mut self, name: &str, size: u64) -> Result<Buffer, VmemError> {
        if size == 0 {
            return Err(VmemError::ZeroSizedAllocation { name: name.into() });
        }
        if self.by_name.contains_key(name) {
            return Err(VmemError::DuplicateBuffer { name: name.into() });
        }
        let id = BufferId(self.buffers.len() as u32);
        let base = VirtAddr::new(self.next_va).align_up(self.page_size);
        // Reserve the span plus one guard page.
        let span = self.page_size.pages_for(size) * self.page_size.bytes();
        self.next_va = base.raw() + span + self.page_size.bytes();
        let buffer = Buffer {
            id,
            name: name.to_owned(),
            base,
            size,
        };
        self.buffers.push(buffer.clone());
        self.by_name.insert(name.to_owned(), id);
        self.stats.allocated_bytes += size;
        Ok(buffer)
    }

    /// Looks up a buffer by name.
    pub fn buffer(&self, name: &str) -> Option<&Buffer> {
        self.by_name.get(name).map(|id| &self.buffers[id.0 as usize])
    }

    /// Looks up a buffer by id.
    pub fn buffer_by_id(&self, id: BufferId) -> Option<&Buffer> {
        self.buffers.get(id.0 as usize)
    }

    /// Iterates over all buffers in allocation order.
    pub fn buffers(&self) -> impl Iterator<Item = &Buffer> {
        self.buffers.iter()
    }

    /// Translates `va`, demand-paging the backing frame on first touch.
    ///
    /// # Errors
    ///
    /// * [`VmemError::Unmapped`] when `va` lies outside every buffer.
    /// * [`VmemError::OutOfFrames`] when the physical pool is exhausted.
    pub fn translate_or_fault(&mut self, va: VirtAddr) -> Result<PhysAddr, VmemError> {
        self.translate_with_fault_info(va).map(|(pa, _)| pa)
    }

    /// Like [`translate_or_fault`], also reporting whether a demand fault
    /// was taken.
    ///
    /// # Errors
    ///
    /// Same as [`translate_or_fault`].
    ///
    /// [`translate_or_fault`]: AddressSpace::translate_or_fault
    pub fn translate_with_fault_info(
        &mut self,
        va: VirtAddr,
    ) -> Result<(PhysAddr, FaultKind), VmemError> {
        self.translate_with_walk_info(va).map(|(pa, kind, _)| (pa, kind))
    }

    /// Like [`translate_with_fault_info`], additionally reporting the
    /// number of radix levels a walk of `va` touches — the same count a
    /// separate [`AddressSpace::walk`] after the translation would
    /// return, without paying for a second radix traversal (walker
    /// latency models consume both on every miss).
    ///
    /// # Errors
    ///
    /// Same as [`translate_or_fault`].
    ///
    /// [`translate_or_fault`]: AddressSpace::translate_or_fault
    /// [`translate_with_fault_info`]: AddressSpace::translate_with_fault_info
    pub fn translate_with_walk_info(
        &mut self,
        va: VirtAddr,
    ) -> Result<(PhysAddr, FaultKind, u32), VmemError> {
        self.stats.translations += 1;
        if let Some(walk) = self.page_table.walk(va) {
            let off = va.page_offset(walk.page_size);
            return Ok((
                PhysAddr::from_parts(walk.ppn, off, walk.page_size),
                FaultKind::None,
                walk.levels_touched,
            ));
        }
        if !self.is_covered(va) {
            return Err(VmemError::Unmapped(va));
        }
        // Demand-page the frame.
        let vpn = va.vpn(self.page_size);
        let ppn = self.frames.allocate(self.page_size)?;
        self.page_table.map(
            vpn,
            ppn,
            self.page_size,
            PteFlags {
                present: true,
                writable: true,
                ..Default::default()
            },
        )?;
        self.stats.demand_faults += 1;
        let off = va.page_offset(self.page_size);
        // A freshly mapped page walks the full radix path: 4 levels for
        // small pages, 3 for huge pages (leaf at the PD level).
        let levels = match self.page_size {
            PageSize::Small => crate::page_table::PAGE_TABLE_LEVELS as u32,
            PageSize::Large => crate::page_table::PAGE_TABLE_LEVELS as u32 - 1,
        };
        Ok((
            PhysAddr::from_parts(ppn, off, self.page_size),
            FaultKind::DemandPaged,
            levels,
        ))
    }

    /// Walks the page table without faulting (returns `None` for pages not
    /// yet touched).
    pub fn walk(&self, va: VirtAddr) -> Option<WalkResult> {
        self.page_table.walk(va)
    }

    /// Pre-faults every page of a buffer (eager backing, used by the
    /// eager-paging comparison and by tests).
    ///
    /// # Errors
    ///
    /// Propagates [`VmemError::OutOfFrames`] from the frame pool.
    pub fn prefault(&mut self, buffer: &Buffer) -> Result<u64, VmemError> {
        let mut faulted = 0;
        let mut va = buffer.base();
        let end = buffer.base().raw() + buffer.size();
        while va.raw() < end {
            let (_, kind) = self.translate_with_fault_info(va)?;
            if kind == FaultKind::DemandPaged {
                faulted += 1;
            }
            va = va.offset(self.page_size.bytes());
        }
        Ok(faulted)
    }

    /// Returns `true` when `va` falls inside an allocated buffer.
    pub fn is_covered(&self, va: VirtAddr) -> bool {
        // Buffers are sorted by base address (monotone allocation), so a
        // binary search over bases finds the only candidate.
        let i = self
            .buffers
            .partition_point(|b| b.base().raw() <= va.raw());
        i > 0 && self.buffers[i - 1].contains(va)
    }

    /// Translation/fault statistics.
    pub fn stats(&self) -> SpaceStats {
        self.stats
    }

    /// Direct access to the underlying page table (for walker models).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Number of distinct virtual pages a buffer spans.
    pub fn pages_in(&self, buffer: &Buffer) -> u64 {
        let first = buffer.base().vpn(self.page_size).raw();
        let last = VirtAddr::new(buffer.base().raw() + buffer.size() - 1)
            .vpn(self.page_size)
            .raw();
        last - first + 1
    }

    /// The small-page VPN of `va` under this space's page size.
    pub fn vpn_of(&self, va: VirtAddr) -> Vpn {
        va.vpn(self.page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_touch() {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("buf", 10_000).unwrap();
        assert_eq!(s.pages_in(&b), 3);
        let pa = s.translate_or_fault(b.addr_of(0)).unwrap();
        let pa2 = s.translate_or_fault(b.addr_of(100)).unwrap();
        assert_eq!(pa.raw() + 100, pa2.raw());
        assert_eq!(s.stats().demand_faults, 1);
        // Touch the third page.
        s.translate_or_fault(b.addr_of(9000)).unwrap();
        assert_eq!(s.stats().demand_faults, 2);
    }

    #[test]
    fn unmapped_addresses_error() {
        let mut s = AddressSpace::new(PageSize::Small);
        let err = s.translate_or_fault(VirtAddr::new(0x1000)).unwrap_err();
        assert!(matches!(err, VmemError::Unmapped(_)));
    }

    #[test]
    fn guard_gap_between_buffers() {
        let mut s = AddressSpace::new(PageSize::Small);
        let a = s.allocate("a", 4096).unwrap();
        let b = s.allocate("b", 4096).unwrap();
        // One guard page between them.
        assert!(b.base().raw() >= a.base().raw() + 2 * 4096);
        // The guard page faults.
        let guard = VirtAddr::new(a.base().raw() + 4096);
        assert!(s.translate_or_fault(guard).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = AddressSpace::new(PageSize::Small);
        s.allocate("x", 1).unwrap();
        assert!(matches!(
            s.allocate("x", 1),
            Err(VmemError::DuplicateBuffer { .. })
        ));
    }

    #[test]
    fn zero_size_rejected() {
        let mut s = AddressSpace::new(PageSize::Small);
        assert!(matches!(
            s.allocate("z", 0),
            Err(VmemError::ZeroSizedAllocation { .. })
        ));
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("named", 8).unwrap();
        assert_eq!(s.buffer("named").unwrap().id(), b.id());
        assert_eq!(s.buffer_by_id(b.id()).unwrap().name(), "named");
        assert!(s.buffer("missing").is_none());
        assert_eq!(s.buffers().count(), 1);
    }

    #[test]
    fn huge_pages_back_2mib_at_a_time() {
        let mut s = AddressSpace::new(PageSize::Large);
        let b = s.allocate("big", 3 << 20).unwrap();
        s.translate_or_fault(b.addr_of(0)).unwrap();
        s.translate_or_fault(b.addr_of(1 << 20)).unwrap(); // same huge page
        assert_eq!(s.stats().demand_faults, 1);
        s.translate_or_fault(b.addr_of(2 << 20)).unwrap(); // second huge page
        assert_eq!(s.stats().demand_faults, 2);
    }

    #[test]
    fn prefault_touches_every_page() {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("pre", 5 * 4096 + 1).unwrap();
        let n = s.prefault(&b).unwrap();
        assert_eq!(n, 6);
        assert_eq!(s.stats().demand_faults, 6);
        // Second prefault is a no-op.
        assert_eq!(s.prefault(&b).unwrap(), 0);
    }

    #[test]
    fn bounded_pool_exhausts() {
        let mut s = AddressSpace::with_capacity(PageSize::Small, 2);
        let b = s.allocate("buf", 3 * 4096).unwrap();
        s.translate_or_fault(b.addr_of(0)).unwrap();
        s.translate_or_fault(b.addr_of(4096)).unwrap();
        assert_eq!(
            s.translate_or_fault(b.addr_of(2 * 4096)),
            Err(VmemError::OutOfFrames)
        );
    }

    #[test]
    fn addr_of_panics_out_of_bounds() {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("buf", 16).unwrap();
        assert!(std::panic::catch_unwind(|| b.addr_of(16)).is_err());
    }

    #[test]
    fn is_covered_matches_buffers() {
        let mut s = AddressSpace::new(PageSize::Small);
        let a = s.allocate("a", 100).unwrap();
        let b = s.allocate("b", 100).unwrap();
        assert!(s.is_covered(a.addr_of(0)));
        assert!(s.is_covered(a.addr_of(99)));
        assert!(s.is_covered(b.addr_of(50)));
        assert!(!s.is_covered(VirtAddr::new(0)));
        assert!(!s.is_covered(VirtAddr::new(a.base().raw() + 100)));
    }

    #[test]
    fn stats_track_allocations_and_translations() {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("buf", 1234).unwrap();
        assert_eq!(s.stats().allocated_bytes, 1234);
        s.translate_or_fault(b.addr_of(0)).unwrap();
        s.translate_or_fault(b.addr_of(1)).unwrap();
        assert_eq!(s.stats().translations, 2);
    }
}
