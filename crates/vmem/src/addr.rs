//! Strongly-typed virtual and physical addresses and page numbers.
//!
//! The simulator deals with four address-like quantities that are easy to
//! confuse when they are all `u64`: virtual addresses, physical addresses,
//! virtual page numbers (VPNs) and physical page numbers (PPNs). Each gets
//! a newtype so the compiler keeps them apart (C-NEWTYPE).

use crate::page::PageSize;
use std::fmt;

/// A virtual address in a UVM address space.
///
/// # Example
///
/// ```
/// use vmem::{PageSize, VirtAddr};
///
/// let va = VirtAddr::new(0x1234_5678);
/// assert_eq!(va.vpn(PageSize::Small).raw(), 0x1234_5678 >> 12);
/// assert_eq!(va.page_offset(PageSize::Small), 0x678);
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(u64);

/// A physical address produced by translation.
///
/// # Example
///
/// ```
/// use vmem::{PageSize, PhysAddr, Ppn};
///
/// let pa = PhysAddr::from_parts(Ppn::new(7), 0x10, PageSize::Small);
/// assert_eq!(pa.raw(), (7 << 12) | 0x10);
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

/// A virtual page number: the virtual address shifted right by the page
/// size's offset bits.
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(u64);

/// A physical page number (frame number).
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppn(u64);

/// An address-space identifier distinguishing co-running applications.
///
/// Every translation structure tags its entries with the owning ASID so
/// co-running apps can never hit on (or be evicted through a sharing
/// rescue into) another app's translations. ASIDs are small: at most
/// [`Asid::MAX_ASIDS`] concurrent address spaces, so an ASID packs into
/// the high bits of a TLB probe tag alongside a ≤52-bit VPN.
///
/// # Example
///
/// ```
/// use vmem::Asid;
///
/// let a = Asid::new(3);
/// assert_eq!(a.raw(), 3);
/// assert_eq!(Asid::default(), Asid::new(0));
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asid(u16);

impl Asid {
    /// Upper bound (exclusive) on ASID values: 11 bits, so
    /// `(asid << 53) | (vpn << 1) | 1` packs losslessly with a 52-bit VPN.
    pub const MAX_ASIDS: u16 = 1 << 11;

    /// Wraps a raw ASID value.
    ///
    /// # Panics
    ///
    /// Panics if `raw >= Asid::MAX_ASIDS`.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        assert!(raw < Self::MAX_ASIDS, "ASID out of range");
        Asid(raw)
    }

    /// Returns the raw ASID value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The raw value widened for index arithmetic.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asid({})", self.0)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

macro_rules! addr_common {
    ($ty:ident) => {
        impl $ty {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $ty {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            #[inline]
            fn from(v: $ty) -> u64 {
                v.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($ty), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::Octal for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Octal::fmt(&self.0, f)
            }
        }
    };
}

addr_common!(VirtAddr);
addr_common!(PhysAddr);
addr_common!(Vpn);
addr_common!(Ppn);

impl VirtAddr {
    /// Returns the virtual page number under the given page size.
    #[inline]
    pub const fn vpn(self, size: PageSize) -> Vpn {
        Vpn(self.0 >> size.offset_bits())
    }

    /// Returns the offset within the page under the given page size.
    #[inline]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & size.offset_mask()
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space in debug builds.
    #[inline]
    #[must_use]
    pub const fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// Builds a virtual address from a page number and in-page offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit within a page of the given size.
    #[inline]
    pub fn from_parts(vpn: Vpn, offset: u64, size: PageSize) -> VirtAddr {
        assert!(
            offset <= size.offset_mask(),
            "offset {offset:#x} exceeds page size {size}"
        );
        VirtAddr((vpn.0 << size.offset_bits()) | offset)
    }

    /// Aligns the address down to the containing page boundary.
    #[inline]
    #[must_use]
    pub const fn align_down(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !size.offset_mask())
    }

    /// Aligns the address up to the next page boundary (identity if already
    /// aligned).
    #[inline]
    #[must_use]
    pub const fn align_up(self, size: PageSize) -> VirtAddr {
        VirtAddr((self.0 + size.offset_mask()) & !size.offset_mask())
    }

    /// Returns `true` if the address is aligned to the given page size.
    #[inline]
    pub const fn is_aligned(self, size: PageSize) -> bool {
        self.0 & size.offset_mask() == 0
    }
}

impl PhysAddr {
    /// Returns the physical page number under the given page size.
    #[inline]
    pub const fn ppn(self, size: PageSize) -> Ppn {
        Ppn(self.0 >> size.offset_bits())
    }

    /// Returns the offset within the frame under the given page size.
    #[inline]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & size.offset_mask()
    }

    /// Builds a physical address from a frame number and in-page offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit within a page of the given size.
    #[inline]
    pub fn from_parts(ppn: Ppn, offset: u64, size: PageSize) -> PhysAddr {
        assert!(
            offset <= size.offset_mask(),
            "offset {offset:#x} exceeds page size {size}"
        );
        PhysAddr((ppn.0 << size.offset_bits()) | offset)
    }
}

impl Vpn {
    /// Returns the base virtual address of this page.
    #[inline]
    pub const fn base_addr(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 << size.offset_bits())
    }

    /// Returns the next page number.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl Ppn {
    /// Returns the base physical address of this frame.
    #[inline]
    pub const fn base_addr(self, size: PageSize) -> PhysAddr {
        PhysAddr(self.0 << size.offset_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset_roundtrip_small() {
        let va = VirtAddr::new(0xdead_beef);
        let vpn = va.vpn(PageSize::Small);
        let off = va.page_offset(PageSize::Small);
        assert_eq!(VirtAddr::from_parts(vpn, off, PageSize::Small), va);
    }

    #[test]
    fn vpn_and_offset_roundtrip_large() {
        let va = VirtAddr::new(0x1234_5678_9abc);
        let vpn = va.vpn(PageSize::Large);
        let off = va.page_offset(PageSize::Large);
        assert_eq!(VirtAddr::from_parts(vpn, off, PageSize::Large), va);
    }

    #[test]
    fn phys_roundtrip() {
        let pa = PhysAddr::new(0xcafe_f00d);
        let ppn = pa.ppn(PageSize::Small);
        let off = pa.page_offset(PageSize::Small);
        assert_eq!(PhysAddr::from_parts(ppn, off, PageSize::Small), pa);
    }

    #[test]
    fn align_down_and_up() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.align_down(PageSize::Small), VirtAddr::new(0x1000));
        assert_eq!(va.align_up(PageSize::Small), VirtAddr::new(0x2000));
        let aligned = VirtAddr::new(0x3000);
        assert_eq!(aligned.align_up(PageSize::Small), aligned);
        assert!(aligned.is_aligned(PageSize::Small));
        assert!(!va.is_aligned(PageSize::Small));
    }

    #[test]
    fn offset_advances() {
        let va = VirtAddr::new(0x1000);
        assert_eq!(va.offset(0x234), VirtAddr::new(0x1234));
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn from_parts_rejects_oversized_offset() {
        let _ = VirtAddr::from_parts(Vpn::new(1), 0x1000, PageSize::Small);
    }

    #[test]
    fn vpn_base_addr() {
        assert_eq!(
            Vpn::new(3).base_addr(PageSize::Small),
            VirtAddr::new(3 * 4096)
        );
        assert_eq!(Vpn::new(3).next(), Vpn::new(4));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VirtAddr::new(255)), "0xff");
        assert_eq!(format!("{:x}", Ppn::new(255)), "ff");
        assert_eq!(format!("{:b}", Ppn::new(5)), "101");
        assert_eq!(format!("{:?}", Vpn::new(16)), "Vpn(0x10)");
    }

    #[test]
    fn conversions() {
        let va: VirtAddr = 42u64.into();
        let raw: u64 = va.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VirtAddr::new(1) < VirtAddr::new(2));
        assert!(Ppn::new(9) > Ppn::new(8));
    }

    #[test]
    fn asid_basics() {
        let a = Asid::new(5);
        assert_eq!(a.raw(), 5);
        assert_eq!(a.index(), 5);
        assert_eq!(format!("{a}"), "5");
        assert_eq!(format!("{a:?}"), "Asid(5)");
        assert_eq!(Asid::default(), Asid::new(0));
        assert!(Asid::new(1) < Asid::new(2));
    }

    #[test]
    #[should_panic(expected = "ASID out of range")]
    fn asid_rejects_out_of_range() {
        let _ = Asid::new(Asid::MAX_ASIDS);
    }
}
