//! Per-level translation-latency attribution (mem-hier breakdown).

use gpu_sim::LatencyBreakdown;

/// Names of the breakdown components, in pipeline order. Matches the
/// order of the fractions returned by [`latency_shares`].
pub const LATENCY_COMPONENTS: [&str; 6] = [
    "l1_tlb",
    "icnt",
    "l2_tlb_queue",
    "l2_tlb_lookup",
    "walk",
    "fault",
];

/// Splits an accumulated [`LatencyBreakdown`] into per-component
/// fractions of total translation latency, in [`LATENCY_COMPONENTS`]
/// order. An idle breakdown (no translations) yields all zeros; otherwise
/// the fractions sum to 1 (the breakdown's stage-sum identity guarantees
/// the components cover every end-to-end cycle).
pub fn latency_shares(b: &LatencyBreakdown) -> [f64; 6] {
    let total = b.stage_sum();
    if total == 0 {
        return [0.0; 6];
    }
    let frac = |c: u64| c as f64 / total as f64;
    [
        frac(b.l1_tlb_cycles),
        frac(b.icnt_cycles),
        frac(b.l2_tlb_queue_cycles),
        frac(b.l2_tlb_lookup_cycles),
        frac(b.walk_cycles),
        frac(b.fault_cycles),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_cover_the_whole_latency() {
        let b = LatencyBreakdown {
            translations: 2,
            l1_tlb_cycles: 2,
            icnt_cycles: 40,
            l2_tlb_queue_cycles: 3,
            l2_tlb_lookup_cycles: 10,
            walk_cycles: 500,
            fault_cycles: 2000,
            end_to_end_cycles: 2555,
        };
        let shares = latency_shares(&b);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The fault term dominates this synthetic example.
        assert!(shares[5] > 0.7);
        assert_eq!(shares.len(), LATENCY_COMPONENTS.len());
    }

    #[test]
    fn idle_breakdown_is_all_zero() {
        assert_eq!(latency_shares(&LatencyBreakdown::default()), [0.0; 6]);
    }
}
