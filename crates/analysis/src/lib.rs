//! # analysis — translation-reuse characterization (paper §III)
//!
//! Implements the paper's characterization methodology:
//!
//! * **Reuse intensity** (Equation 1, Figures 3 and 4): per-TB translation
//!   streams are extracted from workload traces post-coalescing;
//!   [`intra_intensities`] computes the fraction of each TB's translations
//!   that are reused within the TB, [`inter_intensities`] the pairwise
//!   cross-TB sharing; [`ReuseBins`] buckets them into the paper's five
//!   20%-wide bins.
//! * **Reuse distance** (Figures 5 and 6): [`reuse_distance_samples`]
//!   replays a simulator translation trace per SM and measures, for every
//!   re-access of a page by the same TB, the number of *distinct* pages
//!   translated in between (an LRU stack distance, computed with a
//!   Fenwick tree in `O(n log n)`); [`Cdf`] summarizes the samples on the
//!   paper's power-of-two x-axis.
//!
//! # Example
//!
//! ```
//! use analysis::{intra_intensities, tb_translation_streams, ReuseBins};
//! use workloads::{registry, Scale};
//!
//! let wl = registry()[8].generate(Scale::Test, 42); // gemm
//! let streams = tb_translation_streams(&wl, 128);
//! let bins = ReuseBins::from_intensities(&intra_intensities(&streams));
//! assert!((bins.fractions().iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod distance;
mod imbalance;
mod latency;
mod reuse;

pub use cdf::Cdf;
pub use imbalance::{tb_translation_imbalance, Imbalance};
pub use distance::{reuse_distance_samples, DistanceOptions};
pub use latency::{latency_shares, LATENCY_COMPONENTS};
pub use reuse::{
    inter_intensities, intra_intensities, tb_translation_streams, warp_translation_streams,
    ReuseBins, TbStream,
};
