//! Cumulative distribution summaries on the paper's power-of-two axis.

use std::fmt;

/// An empirical CDF over `u64` samples.
///
/// # Example
///
/// ```
/// use analysis::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1, 2, 4, 8, 100]);
/// assert_eq!(cdf.len(), 5);
/// assert!((cdf.at(4) - 0.6).abs() < 1e-12); // 3 of 5 samples <= 4
/// assert_eq!(cdf.at(1_000_000), 1.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from samples (unsorted input accepted).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; `0.0` for an empty CDF.
    pub fn at(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0..=1.0`); `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// CDF values at `2^min_exp, 2^(min_exp+1), …, 2^max_exp` — the
    /// paper's Figure 5/6 x-axis (they plot from `2^3`).
    pub fn log2_points(&self, min_exp: u32, max_exp: u32) -> Vec<(u64, f64)> {
        (min_exp..=max_exp)
            .map(|e| {
                let x = 1u64 << e;
                (x, self.at(x))
            })
            .collect()
    }

    /// Fraction of samples strictly greater than `x` (e.g. the share of
    /// reuses beyond the L1 TLB reach).
    pub fn tail_beyond(&self, x: u64) -> f64 {
        1.0 - self.at(x)
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "cdf(empty)");
        }
        write!(
            f,
            "cdf(n={}, median={}, p90={})",
            self.len(),
            self.median().unwrap_or(0),
            self.quantile(0.9).unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_is_monotone() {
        let cdf = Cdf::from_samples(vec![5, 3, 9, 1, 7]);
        let mut prev = 0.0;
        for x in 0..12 {
            let v = cdf.at(x);
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(cdf.at(9), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = Cdf::from_samples((1..=100).collect());
        assert_eq!(cdf.median(), Some(51));
        assert_eq!(cdf.quantile(0.0), Some(1));
        assert_eq!(cdf.quantile(1.0), Some(100));
        assert_eq!(Cdf::default().median(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        let _ = Cdf::from_samples(vec![1]).quantile(1.5);
    }

    #[test]
    fn log2_points_cover_axis() {
        let cdf = Cdf::from_samples(vec![8, 16, 64, 256]);
        let pts = cdf.log2_points(3, 8);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], (8, 0.25));
        assert_eq!(pts[5], (256, 1.0));
    }

    #[test]
    fn tail_beyond_capacity() {
        let cdf = Cdf::from_samples(vec![10, 100, 1000]);
        assert!((cdf.tail_beyond(64) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let cdf = Cdf::from_samples(vec![1, 2, 3]);
        assert!(cdf.to_string().contains("n=3"));
        assert_eq!(Cdf::default().to_string(), "cdf(empty)");
    }
}
