//! Translation-reuse intensity (the paper's Equation 1, Figures 3 and 4).

use gpu_sim::coalesce;
use std::collections::{BTreeMap, BTreeSet};
use workloads::Workload;

/// The translation stream of one thread block: VPNs in program order,
/// one per post-coalescing line transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TbStream {
    /// VPNs in issue order.
    pub vpns: Vec<u64>,
}

impl TbStream {
    /// Number of translations issued.
    pub fn len(&self) -> usize {
        self.vpns.len()
    }

    /// Whether the TB issued no translations.
    pub fn is_empty(&self) -> bool {
        self.vpns.is_empty()
    }

    /// The set of distinct pages touched (`uniq(T_c)` in Equation 1).
    pub fn unique_pages(&self) -> BTreeSet<u64> {
        self.vpns.iter().copied().collect()
    }
}

/// Extracts per-TB translation streams from a workload trace.
///
/// Warp lanes are coalesced into `line_bytes` transactions and then into
/// per-instruction page translations, exactly as the simulator's
/// coalescer + per-instruction TLB coalescer (Power et al., HPCA'14) do:
/// each warp memory instruction contributes one translation per distinct
/// page it touches. TBs from all kernels are concatenated (each TB keeps
/// its own stream).
pub fn tb_translation_streams(workload: &Workload, line_bytes: u64) -> Vec<TbStream> {
    let page_size = workload.space().page_size();
    let mut streams = Vec::new();
    for kernel in workload.kernels() {
        for tb in &kernel.tbs {
            let mut stream = TbStream::default();
            let mut op_pages: Vec<u64> = Vec::with_capacity(8);
            for warp in tb.warps() {
                for op in warp.ops() {
                    if let Some(acc) = op.accesses() {
                        op_pages.clear();
                        for line in coalesce(acc, line_bytes) {
                            let vpn = line.vpn(page_size).raw();
                            if !op_pages.contains(&vpn) {
                                op_pages.push(vpn);
                            }
                        }
                        stream.vpns.extend_from_slice(&op_pages);
                    }
                }
            }
            streams.push(stream);
        }
    }
    streams
}

/// Extracts per-*warp* translation streams (the paper's §VII
/// warp-granularity future work): like [`tb_translation_streams`] but one
/// stream per warp instead of per TB.
pub fn warp_translation_streams(workload: &Workload, line_bytes: u64) -> Vec<TbStream> {
    let page_size = workload.space().page_size();
    let mut streams = Vec::new();
    for kernel in workload.kernels() {
        for tb in &kernel.tbs {
            for warp in tb.warps() {
                let mut stream = TbStream::default();
                let mut op_pages: Vec<u64> = Vec::with_capacity(8);
                for op in warp.ops() {
                    if let Some(acc) = op.accesses() {
                        op_pages.clear();
                        for line in coalesce(acc, line_bytes) {
                            let vpn = line.vpn(page_size).raw();
                            if !op_pages.contains(&vpn) {
                                op_pages.push(vpn);
                            }
                        }
                        stream.vpns.extend_from_slice(&op_pages);
                    }
                }
                streams.push(stream);
            }
        }
    }
    streams
}

/// Intra-TB reuse intensity per TB: the fraction of a TB's translations
/// that target a page the TB translates more than once ("translations
/// being reused at least once", Figure 4).
pub fn intra_intensities(streams: &[TbStream]) -> Vec<f64> {
    streams
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
            for &v in &s.vpns {
                *counts.entry(v).or_default() += 1;
            }
            let reused: usize = s
                .vpns
                .iter()
                .filter(|v| counts[v] > 1)
                .count();
            reused as f64 / s.len() as f64
        })
        .collect()
}

/// Inter-TB reuse intensity over TB pairs (Equation 1 with `c1 != c2`):
/// for each ordered pair, the fraction of `c1`'s translations whose page
/// is also touched by `c2`.
///
/// The paper computes all pairs exhaustively on 10-TB examples; at
/// thousands of TBs that is quadratic, so `max_tbs` subsamples the TB
/// population evenly (pass `None` for exhaustive).
pub fn inter_intensities(streams: &[TbStream], max_tbs: Option<usize>) -> Vec<f64> {
    let nonempty: Vec<&TbStream> = streams.iter().filter(|s| !s.is_empty()).collect();
    let picked: Vec<&TbStream> = match max_tbs {
        Some(cap) if nonempty.len() > cap && cap > 0 => {
            let stride = nonempty.len() as f64 / cap as f64;
            (0..cap)
                .map(|i| nonempty[(i as f64 * stride) as usize])
                .collect()
        }
        _ => nonempty,
    };
    let uniqs: Vec<BTreeSet<u64>> = picked.iter().map(|s| s.unique_pages()).collect();
    let mut out = Vec::with_capacity(picked.len().saturating_sub(1).pow(2));
    for (i, s1) in picked.iter().enumerate() {
        for (j, uniq2) in uniqs.iter().enumerate() {
            if i == j {
                continue;
            }
            let shared: usize = s1.vpns.iter().filter(|v| uniq2.contains(v)).count();
            out.push(shared as f64 / s1.len() as f64);
        }
    }
    out
}

/// The paper's five 20%-wide reuse-intensity bins (b1..b5).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ReuseBins {
    counts: [u64; 5],
}

impl ReuseBins {
    /// Buckets intensities in `[0, 1]` into b1..b5.
    ///
    /// b1 = `[0, 0.2)`, b2 = `[0.2, 0.4)`, …, b5 = `[0.8, 1.0]`.
    pub fn from_intensities(intensities: &[f64]) -> Self {
        let mut counts = [0u64; 5];
        for &x in intensities {
            let bin = ((x * 5.0) as usize).min(4);
            counts[bin] += 1;
        }
        ReuseBins { counts }
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Fractions per bin (each in `[0, 1]`, summing to 1 when non-empty;
    /// all zeros when empty).
    pub fn fractions(&self) -> [f64; 5] {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return [0.0; 5];
        }
        let mut f = [0.0; 5];
        for (i, &c) in self.counts.iter().enumerate() {
            f[i] = c as f64 / total as f64;
        }
        f
    }

    /// Expected intensity under the bin midpoints (a scalar summary used
    /// in tests and reports).
    pub fn mean_midpoint(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (0.1 + 0.2 * i as f64) * c as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{registry, Scale};

    fn stream(vpns: &[u64]) -> TbStream {
        TbStream {
            vpns: vpns.to_vec(),
        }
    }

    #[test]
    fn intra_intensity_counts_repeats() {
        // Pages 1 and 2 repeat; page 3 is touched once: 4/5 reused.
        let s = stream(&[1, 2, 1, 2, 3]);
        let i = intra_intensities(&[s]);
        assert!((i[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn intra_intensity_extremes() {
        assert_eq!(intra_intensities(&[stream(&[1, 2, 3])])[0], 0.0);
        assert_eq!(intra_intensities(&[stream(&[7, 7, 7])])[0], 1.0);
        assert!(intra_intensities(&[TbStream::default()]).is_empty());
    }

    #[test]
    fn inter_intensity_is_asymmetric() {
        // c1 touches {1,2,3,4}; c2 touches {1}. R(c1,c2)=1/4, R(c2,c1)=1.
        let s1 = stream(&[1, 2, 3, 4]);
        let s2 = stream(&[1]);
        let r = inter_intensities(&[s1, s2], None);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 0.25).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inter_sampling_caps_pairs() {
        let streams: Vec<TbStream> = (0..50).map(|i| stream(&[i])).collect();
        let all = inter_intensities(&streams, None);
        assert_eq!(all.len(), 50 * 49);
        let capped = inter_intensities(&streams, Some(10));
        assert_eq!(capped.len(), 10 * 9);
    }

    #[test]
    fn bins_cover_unit_interval() {
        let b = ReuseBins::from_intensities(&[0.0, 0.1, 0.25, 0.5, 0.79, 0.8, 1.0]);
        assert_eq!(b.counts(), [2, 1, 1, 1, 2]);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(b.mean_midpoint() > 0.0);
        assert_eq!(ReuseBins::default().fractions(), [0.0; 5]);
    }

    #[test]
    fn warp_streams_partition_tb_streams() {
        let wl = registry()[8].generate(Scale::Test, 42);
        let tb_streams = tb_translation_streams(&wl, 128);
        let warp_streams = warp_translation_streams(&wl, 128);
        // One stream per warp, and translation volume is conserved.
        let warps: usize = wl
            .kernels()
            .iter()
            .flat_map(|k| k.tbs.iter())
            .map(|tb| tb.warps().len())
            .sum();
        assert_eq!(warp_streams.len(), warps);
        assert_eq!(
            tb_streams.iter().map(TbStream::len).sum::<usize>(),
            warp_streams.iter().map(TbStream::len).sum::<usize>()
        );
        // Warp-level intensities are at most slightly below TB-level ones
        // on gemm (warps own their rows): both should be high.
        let warp_intra = ReuseBins::from_intensities(&intra_intensities(&warp_streams));
        assert!(warp_intra.mean_midpoint() > 0.5);
    }

    #[test]
    fn streams_from_gemm_have_reuse() {
        let wl = registry()[8].generate(Scale::Test, 42);
        let streams = tb_translation_streams(&wl, 128);
        assert_eq!(
            streams.len(),
            wl.kernels().iter().map(|k| k.tbs.len()).sum::<usize>()
        );
        let intra = intra_intensities(&streams);
        let bins = ReuseBins::from_intensities(&intra);
        // gemm re-walks its tile rows every k step: strong intra-TB reuse.
        assert!(
            bins.mean_midpoint() > 0.6,
            "gemm intra reuse should be high, got {:.2}",
            bins.mean_midpoint()
        );
    }

    #[test]
    fn graph_apps_have_low_inter_tb_reuse() {
        // Needs a graph whose arrays span many pages; Test scale's 4 KiB
        // arrays make every TB alias onto the same page.
        let bfs = registry()[0].generate(Scale::Small, 42);
        let streams = tb_translation_streams(&bfs, 128);
        let inter = ReuseBins::from_intensities(&inter_intensities(&streams, Some(40)));
        let intra = ReuseBins::from_intensities(&intra_intensities(&streams));
        // Observation 1: intra-TB reuse dominates inter-TB reuse.
        assert!(
            intra.mean_midpoint() > inter.mean_midpoint(),
            "intra {:.2} should exceed inter {:.2}",
            intra.mean_midpoint(),
            inter.mean_midpoint()
        );
    }
}
