//! Translation reuse distance (the paper's §III-D, Figures 5 and 6).
//!
//! The paper defines reuse distance as *"the number of unique translations
//! between two memory accesses to the same page"*. Distances are measured
//! on each SM's L1 TLB access stream (the interleaving of all TBs resident
//! on that SM), and a sample is recorded for each re-access of a page *by
//! the TB that last touched it* — so the metric captures **intra-TB** reuse
//! while exposing how **inter-TB interference** stretches it.
//!
//! Computation uses the classic last-occurrence/Fenwick-tree technique:
//! each page keeps only its most recent position marked in a bit-indexed
//! tree, so "distinct pages in the window" is a prefix-sum query, giving
//! `O(n log n)` overall.

use gpu_sim::TranslationEvent;

/// Options for distance extraction.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DistanceOptions {
    /// Record a sample only when the previous access to the page came from
    /// the same TB (the paper's intra-TB distances). When `false`, every
    /// page re-access is sampled regardless of which TB touched it last.
    pub same_tb_only: bool,
    /// Additionally require the previous access to come from the same
    /// *warp* — the warp-granularity analysis the paper's §VII names as
    /// future work. Implies TB matching.
    pub same_warp_only: bool,
}

impl DistanceOptions {
    /// The paper's Figures 5/6 setting.
    pub fn intra_tb() -> Self {
        DistanceOptions {
            same_tb_only: true,
            same_warp_only: false,
        }
    }

    /// Warp-granularity reuse distances (§VII future work).
    pub fn intra_warp() -> Self {
        DistanceOptions {
            same_tb_only: true,
            same_warp_only: true,
        }
    }
}

/// Fenwick tree over event positions; a set bit marks "most recent
/// occurrence of some page lives here".
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Computes reuse-distance samples from a simulator translation trace.
///
/// The trace is partitioned by SM (L1 TLBs are private); within each SM
/// stream, the distance for a re-access at position `t` of a page last
/// seen at `t'` is the number of *distinct* pages accessed strictly
/// between them.
///
/// # Example
///
/// ```
/// use analysis::{reuse_distance_samples, DistanceOptions};
/// use gpu_sim::TranslationEvent;
///
/// let ev = |vpn| TranslationEvent { sm: 0, tb_global: 0, warp: 0, kernel: 0, vpn };
/// // Page 1 is re-accessed with pages 2 and 3 in between: distance 2.
/// let trace = vec![ev(1), ev(2), ev(3), ev(2), ev(1)];
/// let d = reuse_distance_samples(&trace, DistanceOptions::intra_tb());
/// assert_eq!(d, vec![1, 2]); // page 2 at distance 1, page 1 at distance 2
/// ```
pub fn reuse_distance_samples(
    trace: &[TranslationEvent],
    options: DistanceOptions,
) -> Vec<u64> {
    let mut samples = Vec::new();
    let max_sm = trace.iter().map(|e| e.sm).max().map(|m| m as usize + 1);
    let Some(num_sms) = max_sm else {
        return samples;
    };
    // Split positions per SM, preserving order.
    let mut per_sm: Vec<Vec<&TranslationEvent>> = vec![Vec::new(); num_sms];
    for e in trace {
        per_sm[e.sm as usize].push(e);
    }
    for events in per_sm {
        if events.is_empty() {
            continue;
        }
        let n = events.len();
        let mut fen = Fenwick::new(n);
        // page -> (last position, last (kernel, tb, warp)).
        // simlint: allow(hash-iter, reason = "keyed get/insert only, never iterated; hot loop over the full event trace")
        let mut last: std::collections::HashMap<u64, (usize, (u16, u32, u16))> =
            std::collections::HashMap::new(); // simlint: allow(hash-iter, reason = "keyed get/insert only, never iterated")
        for (t, e) in events.iter().enumerate() {
            let key = (e.kernel, e.tb_global, e.warp);
            if let Some(&(t_prev, prev)) = last.get(&e.vpn) {
                // Distinct pages strictly between t_prev and t: marked
                // positions in (t_prev, t). The page itself is marked at
                // t_prev, so subtract it out of the closed range.
                let distinct = fen.prefix(t - 1) - fen.prefix(t_prev);
                let matches = if options.same_warp_only {
                    prev == key
                } else if options.same_tb_only {
                    (prev.0, prev.1) == (key.0, key.1)
                } else {
                    true
                };
                if matches {
                    samples.push(distinct as u64);
                }
                fen.add(t_prev, -1);
            }
            fen.add(t, 1);
            last.insert(e.vpn, (t, key));
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sm: u8, tb: u32, vpn: u64) -> TranslationEvent {
        TranslationEvent {
            sm,
            tb_global: tb,
            warp: 0,
            kernel: 0,
            vpn,
        }
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let trace = vec![ev(0, 0, 5), ev(0, 0, 5)];
        assert_eq!(
            reuse_distance_samples(&trace, DistanceOptions::intra_tb()),
            vec![0]
        );
    }

    #[test]
    fn distance_counts_distinct_not_total() {
        // Between the two accesses to page 1: pages 2,2,2,3 -> 2 distinct.
        let trace = vec![
            ev(0, 0, 1),
            ev(0, 0, 2),
            ev(0, 0, 2),
            ev(0, 0, 2),
            ev(0, 0, 3),
            ev(0, 0, 1),
        ];
        let d = reuse_distance_samples(&trace, DistanceOptions::intra_tb());
        // Samples: page2@d0, page2@d0, page3? no reuse, page1@d2.
        assert_eq!(d, vec![0, 0, 2]);
    }

    #[test]
    fn interference_stretches_distances() {
        // TB 0 re-touches page 1; TB 1's pages intervene.
        let with_interference = vec![
            ev(0, 0, 1),
            ev(0, 1, 100),
            ev(0, 1, 101),
            ev(0, 1, 102),
            ev(0, 0, 1),
        ];
        let isolated = vec![ev(0, 0, 1), ev(0, 0, 1)];
        let d1 = reuse_distance_samples(&with_interference, DistanceOptions::intra_tb());
        let d2 = reuse_distance_samples(&isolated, DistanceOptions::intra_tb());
        assert_eq!(d1, vec![3]);
        assert_eq!(d2, vec![0]);
    }

    #[test]
    fn same_tb_only_filters_cross_tb_pairs() {
        // Page 1 touched by TB 0 then TB 1.
        let trace = vec![ev(0, 0, 1), ev(0, 1, 1)];
        assert!(reuse_distance_samples(&trace, DistanceOptions::intra_tb()).is_empty());
        let all = reuse_distance_samples(
            &trace,
            DistanceOptions {
                same_tb_only: false,
                same_warp_only: false,
            },
        );
        assert_eq!(all, vec![0]);
    }

    #[test]
    fn sms_are_independent_streams() {
        // The same page on two SMs never produces a cross-SM sample.
        let trace = vec![ev(0, 0, 1), ev(1, 0, 1)];
        assert!(reuse_distance_samples(&trace, DistanceOptions::intra_tb()).is_empty());
        // And interleaved SM streams do not pollute each other's windows.
        let trace = vec![
            ev(0, 0, 1),
            ev(1, 0, 50),
            ev(1, 0, 51),
            ev(0, 0, 1),
        ];
        assert_eq!(
            reuse_distance_samples(&trace, DistanceOptions::intra_tb()),
            vec![0]
        );
    }

    #[test]
    fn empty_trace() {
        assert!(reuse_distance_samples(&[], DistanceOptions::intra_tb()).is_empty());
    }

    #[test]
    fn kernel_id_distinguishes_tbs() {
        // Same tb_global in different kernels is a different TB.
        let mut e1 = ev(0, 7, 9);
        let mut e2 = ev(0, 7, 9);
        e1.kernel = 0;
        e2.kernel = 1;
        assert!(reuse_distance_samples(&[e1, e2], DistanceOptions::intra_tb()).is_empty());
    }

    #[test]
    fn warp_granularity_filters_cross_warp_pairs() {
        let mut e1 = ev(0, 0, 9);
        let mut e2 = ev(0, 0, 9);
        e1.warp = 0;
        e2.warp = 1;
        // Same TB, different warps: counts at TB granularity only.
        let trace = vec![e1, e2];
        assert_eq!(
            reuse_distance_samples(&trace, DistanceOptions::intra_tb()),
            vec![0]
        );
        assert!(
            reuse_distance_samples(&trace, DistanceOptions::intra_warp()).is_empty()
        );
        // Same warp: counts at both granularities.
        let trace = vec![e1, e1];
        assert_eq!(
            reuse_distance_samples(&trace, DistanceOptions::intra_warp()),
            vec![0]
        );
    }

    #[test]
    fn long_stream_matches_naive() {
        // Cross-check the Fenwick implementation against a naive O(n^2)
        // recomputation on a pseudo-random stream.
        let mut x = 12345u64;
        let mut trace = Vec::new();
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            trace.push(ev(0, 0, (x >> 33) % 40));
        }
        let fast = reuse_distance_samples(&trace, DistanceOptions::intra_tb());
        // Naive.
        let mut naive = Vec::new();
        let mut last: std::collections::HashMap<u64, usize> = Default::default();
        for (t, e) in trace.iter().enumerate() {
            if let Some(&tp) = last.get(&e.vpn) {
                let distinct: std::collections::HashSet<u64> =
                    trace[tp + 1..t].iter().map(|e| e.vpn).collect();
                naive.push(distinct.len() as u64);
            }
            last.insert(e.vpn, t);
        }
        assert_eq!(fast, naive);
    }
}
