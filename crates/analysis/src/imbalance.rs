//! Inter-TB imbalance metrics.
//!
//! The paper's §IV-A motivates TLB-aware scheduling with the *computation
//! discrepancy among TBs* — "particularly normal in graph applications
//! where the graph structure can cause imbalanced memory accesses among
//! TBs". These helpers quantify that discrepancy for workload traces and
//! for simulator placements.

use crate::reuse::TbStream;

/// Summary statistics of a non-negative sample set.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Imbalance {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Maximum over minimum (∞ when the minimum is zero but the maximum
    /// is not; 1.0 for a perfectly balanced set).
    pub max_over_min: f64,
    /// Coefficient of variation (`std_dev / mean`; 0 when the mean is 0).
    pub cv: f64,
}

impl Imbalance {
    /// Computes the statistics from raw per-entity counts.
    pub fn from_counts<I>(counts: I) -> Imbalance
    where
        I: IntoIterator<Item = u64>,
    {
        let counts: Vec<u64> = counts.into_iter().collect();
        if counts.is_empty() {
            return Imbalance::default();
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<u64>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let std_dev = var.sqrt();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        let max_over_min = if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        };
        Imbalance {
            mean,
            std_dev,
            max_over_min,
            cv: if mean == 0.0 { 0.0 } else { std_dev / mean },
        }
    }
}

/// Imbalance of per-TB translation counts (the §IV-A discrepancy).
pub fn tb_translation_imbalance(streams: &[TbStream]) -> Imbalance {
    Imbalance::from_counts(streams.iter().map(|s| s.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::tb_translation_streams;
    use workloads::{registry, Scale};

    fn stream(n: usize) -> TbStream {
        TbStream {
            vpns: vec![0; n],
        }
    }

    #[test]
    fn balanced_counts() {
        let im = Imbalance::from_counts([10, 10, 10]);
        assert_eq!(im.mean, 10.0);
        assert_eq!(im.std_dev, 0.0);
        assert_eq!(im.max_over_min, 1.0);
        assert_eq!(im.cv, 0.0);
    }

    #[test]
    fn skewed_counts() {
        let im = Imbalance::from_counts([1, 100]);
        assert!(im.cv > 0.9);
        assert!((im.max_over_min - 100.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(Imbalance::from_counts([]), Imbalance::default());
        let zeros = Imbalance::from_counts([0, 0]);
        assert_eq!(zeros.max_over_min, 1.0);
        assert_eq!(zeros.cv, 0.0);
        let half = Imbalance::from_counts([0, 4]);
        assert!(half.max_over_min.is_infinite());
    }

    #[test]
    fn tb_stream_imbalance() {
        let im = tb_translation_imbalance(&[stream(5), stream(15)]);
        assert_eq!(im.mean, 10.0);
        assert!(im.cv > 0.0);
    }

    #[test]
    fn graph_apps_are_more_imbalanced_than_dense_kernels() {
        let cv = |name: &str| -> f64 {
            let spec = registry().into_iter().find(|s| s.name == name).unwrap();
            let wl = spec.generate(Scale::Test, 42);
            tb_translation_imbalance(&tb_translation_streams(&wl, 128)).cv
        };
        // Power-law degrees make graph TBs' translation counts vary; the
        // dense gemm grid is uniform.
        assert!(
            cv("pagerank") > cv("gemm"),
            "pagerank cv {} vs gemm cv {}",
            cv("pagerank"),
            cv("gemm")
        );
    }
}
