//! Property-based tests for the per-level latency attribution
//! ([`analysis::latency_shares`]): for *any* accumulated breakdown, the
//! shares are non-negative, cover the whole latency (sum to 1, or are
//! all zero for an idle breakdown), and attribute each component
//! independently of the others (permuting component magnitudes permutes
//! the shares).

use analysis::{latency_shares, LATENCY_COMPONENTS};
use gpu_sim::LatencyBreakdown;
use proptest::prelude::*;

/// Builds a breakdown from six per-component cycle counts, keeping the
/// stage-sum identity intact (end-to-end = sum of stages).
fn breakdown(c: &[u64]) -> LatencyBreakdown {
    LatencyBreakdown {
        translations: 1,
        l1_tlb_cycles: c[0],
        icnt_cycles: c[1],
        l2_tlb_queue_cycles: c[2],
        l2_tlb_lookup_cycles: c[3],
        walk_cycles: c[4],
        fault_cycles: c[5],
        end_to_end_cycles: c.iter().sum(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Shares are a probability vector: each in [0, 1], summing to 1
    /// within float epsilon — or exactly all-zero when no cycle was
    /// attributed anywhere.
    #[test]
    fn shares_form_a_probability_vector(c in proptest::collection::vec(0u64..1_000_000, 6..7)) {
        let shares = latency_shares(&breakdown(&c));
        prop_assert_eq!(shares.len(), LATENCY_COMPONENTS.len());
        for (i, s) in shares.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(s), "{}: share {s} out of range", LATENCY_COMPONENTS[i]);
        }
        let total: f64 = shares.iter().sum();
        if c.iter().all(|&x| x == 0) {
            prop_assert_eq!(total, 0.0, "idle breakdown must be all zeros");
        } else {
            prop_assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}, not 1");
        }
    }

    /// Attribution is component-local: swapping two components' cycle
    /// counts swaps exactly their shares and leaves the rest untouched.
    #[test]
    fn shares_are_permutation_stable(
        c in proptest::collection::vec(0u64..1_000_000, 6..7),
        i in 0usize..6,
        j in 0usize..6,
    ) {
        let base = latency_shares(&breakdown(&c));
        let mut swapped = c;
        swapped.swap(i, j);
        let mut expected = base;
        expected.swap(i, j);
        let got = latency_shares(&breakdown(&swapped));
        for k in 0..6 {
            prop_assert!(
                (got[k] - expected[k]).abs() < 1e-12,
                "component {k}: swapped ({i},{j}) share {} != permuted original {}",
                got[k],
                expected[k]
            );
        }
    }

    /// Scaling every component by the same factor leaves the shares
    /// unchanged (they are fractions, not magnitudes).
    #[test]
    fn shares_are_scale_invariant(
        c in proptest::collection::vec(1u64..10_000, 6..7),
        k in 1u64..1000,
    ) {
        let base = latency_shares(&breakdown(&c));
        let scaled: [f64; 6] =
            latency_shares(&breakdown(&c.iter().map(|x| x * k).collect::<Vec<u64>>()));
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a - b).abs() < 1e-9, "share moved under uniform scaling: {a} vs {b}");
        }
    }
}
