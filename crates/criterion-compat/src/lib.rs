//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and `Bencher::iter` — backed by a simple
//! median-of-samples wall-clock measurement instead of criterion's full
//! statistical machinery. Results print as
//! `name  time: [median per iter]  thrpt: [elements/s]` so existing
//! `BENCH_*.json`-style scraping keeps working approximately.
//!
//! `cargo bench` passes harness flags like `--bench`; unknown flags are
//! ignored. A positional filter argument restricts which benchmarks run,
//! mirroring criterion's CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Top-level benchmark harness state.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional (non-flag) argument = benchmark name filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in's run length is
    /// governed by [`Criterion::sample_size`] alone.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (one warm-up call is always made).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        match b.median() {
            Some(median) => {
                let thrpt = throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  thrpt: {:.3} Kelem/s", n as f64 / median.as_secs_f64() / 1e3)
                    }
                    Throughput::Bytes(n) => {
                        format!("  thrpt: {:.3} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
                    }
                });
                println!(
                    "{id:<50} time: [{median:?}]{}",
                    thrpt.unwrap_or_default()
                );
            }
            None => println!("{id:<50} (no samples)"),
        }
    }

    /// Prints the closing summary (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Re-export for `use criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: either `criterion_group!(name, f1, f2)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.filter = None;
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_respect_throughput_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = Some("nomatch".into());
        let mut runs = 0;
        c.bench_function("other", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 0);
    }
}
