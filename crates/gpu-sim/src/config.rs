//! Simulator configuration (the paper's Table III).

use mem_hier::{CacheConfig, HierarchyConfig, L2Policy};
use tlb::TlbConfig;

/// Full GPU configuration.
///
/// [`GpuConfig::dac23_baseline`] reproduces Table III. Latencies that
/// Table III leaves unspecified (interconnect, L2 data, DRAM, UVM
/// first-touch fault) follow the gem5-gpu defaults used by the paper's
/// cited prior work and are documented in DESIGN.md.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in MHz (for reporting only; the simulator counts
    /// cycles).
    pub clock_mhz: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Warp instructions issued per SM per cycle (dual GTO scheduler).
    pub issue_width: u32,
    /// Hardware cap on concurrent TBs per SM (Kepler: 16).
    pub max_concurrent_tbs: u8,
    /// Per-SM private L1 data cache.
    pub l1_cache: CacheConfig,
    /// Shared L2 data cache (aggregate across memory partitions).
    pub l2_cache: CacheConfig,
    /// Per-SM private L1 TLB.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Number of shared page-table walkers.
    pub walkers: usize,
    /// Base page-table walk latency in cycles (Table III: 500).
    pub walk_latency: u64,
    /// Additional walk cycles per radix level touched (0 = the paper's
    /// flat 500-cycle walks; > 0 makes 2 MiB pages' 3-level walks cheaper
    /// than 4 KiB pages' 4-level walks).
    pub walk_latency_per_level: u64,
    /// L1 data-cache hit latency.
    pub l1_hit_latency: u64,
    /// One-way SM-to-partition interconnect latency.
    pub icnt_latency: u64,
    /// L2 data-cache access latency.
    pub l2_hit_latency: u64,
    /// DRAM access latency beyond L2.
    pub dram_latency: u64,
    /// One-time UVM first-touch (demand-paging) penalty per page.
    pub demand_fault_latency: u64,
    /// Flush per-SM L1 TLBs at each kernel launch (gem5-gpu invalidates
    /// GPU TLBs on launch; also the source of the paper's `nw` cold
    /// misses). The shared L2 TLB is not flushed.
    pub flush_l1_tlb_on_kernel_launch: bool,
    /// Lookups the shared L2 TLB can start per cycle (per slice). L1 TLB
    /// miss floods from all 16 SMs queue on these ports, which is what
    /// turns poor L1 hit rates into execution-time loss.
    pub l2_tlb_ports: usize,
    /// Slices the shared L2 TLB is distributed over (Figure 1 shows it
    /// spread across the memory partitions; 1 = monolithic). Entries are
    /// divided evenly; pages map to slices by VPN.
    pub l2_tlb_slices: usize,
    /// Cycles a granted lookup holds an L2 TLB port. The baseline's 1
    /// models fully pipelined lookups (a slice starts `l2_tlb_ports` new
    /// lookups per cycle regardless of `lookup_latency`); setting it to
    /// the lookup latency models unpipelined ports.
    pub l2_tlb_port_occupancy: u64,
    /// Minimum deferred shared-stage requests in one phase-B round
    /// before the engine switches from the serial per-SM apply loop to
    /// the sharded slice-parallel drain (`mem_hier::drain_sharded`);
    /// 0 disables sharding. Output is byte-identical either way — like
    /// `--sim-threads`, this is purely a wall-clock knob. Only takes
    /// effect on multi-threaded runs whose L1 TLBs support deferred
    /// fills.
    pub shard_threshold: usize,
    /// Extra requests a round must carry *per participating SM* before
    /// sharding pays: the effective per-round threshold is
    /// `shard_threshold + participants * shard_lane_overhead`, modelling
    /// the fixed per-lane setup cost of the sharded drain (request copy,
    /// drain-lane build). Calibrated by `engine-bench --tune`; purely a
    /// wall-clock knob like [`GpuConfig::shard_threshold`].
    pub shard_lane_overhead: usize,
    /// Cycles one epoch window may span in the engine's batched epoch
    /// mode (how far a lane may run ahead unsynchronized; clamped to at
    /// least 1). Larger epochs amortize coordination, smaller ones keep
    /// lanes hotter in cache. Calibrated by `engine-bench --tune`;
    /// output is byte-identical for every value.
    pub epoch_cycles: u64,
    /// Consecutive sharded-drain tasks dealt to one executor before the
    /// deal moves on (1 = pure round-robin). Purely a wall-clock knob;
    /// swept by `engine-bench --tune`.
    pub shard_chunk: usize,
    /// Shared L2 TLB management policy across co-running address spaces
    /// (`Shared` baseline, MASK-style fill tokens, or MIG-style
    /// sub-entry sharing). Irrelevant to solo runs: with one ASID every
    /// policy degenerates to `Shared` behavior.
    pub l2_policy: L2Policy,
}

impl GpuConfig {
    /// The paper's Table III baseline.
    pub fn dac23_baseline() -> Self {
        GpuConfig {
            num_sms: 16,
            clock_mhz: 1400,
            max_threads_per_sm: 2048,
            issue_width: 2,
            max_concurrent_tbs: 16,
            l1_cache: CacheConfig::new(16 * 1024, 4, 128),
            l2_cache: CacheConfig::new(1536 * 1024, 8, 128),
            l1_tlb: TlbConfig::dac23_l1(),
            l2_tlb: TlbConfig::dac23_l2(),
            walkers: 8,
            walk_latency: 500,
            walk_latency_per_level: 0,
            l1_hit_latency: 1,
            icnt_latency: 20,
            l2_hit_latency: 30,
            dram_latency: 200,
            demand_fault_latency: 2000,
            flush_l1_tlb_on_kernel_launch: true,
            l2_tlb_ports: 2,
            l2_tlb_slices: 1,
            l2_tlb_port_occupancy: 1,
            shard_threshold: 64,
            shard_lane_overhead: 4,
            epoch_cycles: 4096,
            shard_chunk: 1,
            l2_policy: L2Policy::Shared,
        }
    }

    /// The mem-hier view of this configuration, consumed by
    /// [`mem_hier::HierarchyBuilder`] to assemble the translation and
    /// data pipeline.
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig {
            num_sms: self.num_sms,
            l1_cache: self.l1_cache,
            l2_cache: self.l2_cache,
            l2_tlb: self.l2_tlb,
            l2_tlb_slices: self.l2_tlb_slices,
            l2_tlb_ports: self.l2_tlb_ports,
            l2_tlb_port_occupancy: self.l2_tlb_port_occupancy,
            walkers: self.walkers,
            walk_latency: self.walk_latency,
            walk_latency_per_level: self.walk_latency_per_level,
            l1_hit_latency: self.l1_hit_latency,
            icnt_latency: self.icnt_latency,
            l2_hit_latency: self.l2_hit_latency,
            dram_latency: self.dram_latency,
            demand_fault_latency: self.demand_fault_latency,
            l2_policy: self.l2_policy,
        }
    }

    /// The Figure 2 variant with a 256-entry L1 TLB.
    pub fn with_l1_tlb(mut self, l1_tlb: TlbConfig) -> Self {
        self.l1_tlb = l1_tlb;
        self
    }

    /// Swaps the shared L2 TLB multi-tenant policy.
    pub fn with_l2_policy(mut self, policy: L2Policy) -> Self {
        self.l2_policy = policy;
        self
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::dac23_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let c = GpuConfig::dac23_baseline();
        assert_eq!(c.num_sms, 16);
        assert_eq!(c.clock_mhz, 1400);
        assert_eq!(c.max_threads_per_sm, 2048);
        assert_eq!(c.l1_cache.bytes, 16 * 1024);
        assert_eq!(c.l1_cache.line_bytes, 128);
        assert_eq!(c.l2_cache.bytes, 1536 * 1024);
        assert_eq!(c.l2_cache.associativity, 8);
        assert_eq!(c.l1_tlb.entries, 64);
        assert_eq!(c.l2_tlb.entries, 512);
        assert_eq!(c.walkers, 8);
        assert_eq!(c.walk_latency, 500);
        assert_eq!(c.max_concurrent_tbs, 16);
    }

    #[test]
    fn baseline_ports_are_pipelined() {
        // Occupancy 1 is the pre-mem-hier engine behavior: a port is
        // held exactly one cycle per granted lookup.
        assert_eq!(GpuConfig::dac23_baseline().l2_tlb_port_occupancy, 1);
    }

    #[test]
    fn hierarchy_view_mirrors_every_field() {
        let c = GpuConfig {
            l2_tlb_slices: 4,
            l2_tlb_port_occupancy: 10,
            walk_latency_per_level: 25,
            l2_policy: L2Policy::MaskTokens { quota: 7 },
            ..GpuConfig::dac23_baseline()
        };
        let h = c.hierarchy();
        assert_eq!(h.num_sms, c.num_sms);
        assert_eq!(h.l1_cache, c.l1_cache);
        assert_eq!(h.l2_cache, c.l2_cache);
        assert_eq!(h.l2_tlb, c.l2_tlb);
        assert_eq!(h.l2_tlb_slices, 4);
        assert_eq!(h.l2_tlb_ports, c.l2_tlb_ports);
        assert_eq!(h.l2_tlb_port_occupancy, 10);
        assert_eq!(h.walkers, c.walkers);
        assert_eq!(h.walk_latency, c.walk_latency);
        assert_eq!(h.walk_latency_per_level, 25);
        assert_eq!(h.l1_hit_latency, c.l1_hit_latency);
        assert_eq!(h.icnt_latency, c.icnt_latency);
        assert_eq!(h.l2_hit_latency, c.l2_hit_latency);
        assert_eq!(h.dram_latency, c.dram_latency);
        assert_eq!(h.demand_fault_latency, c.demand_fault_latency);
        assert_eq!(h.l2_policy, L2Policy::MaskTokens { quota: 7 });
    }

    #[test]
    fn engine_tuning_knobs_have_sane_defaults() {
        // These are pure wall-clock knobs (byte-identical output for any
        // value); the defaults are the `engine-bench --tune` sweet spot
        // on the reference host and must stay in the legal range the
        // engine clamps to.
        let c = GpuConfig::dac23_baseline();
        assert!(c.epoch_cycles >= 1);
        assert!(c.shard_chunk >= 1);
        assert!(c.shard_threshold > 0, "sharding enabled by default");
    }

    #[test]
    fn with_l1_tlb_swaps_config() {
        let c = GpuConfig::dac23_baseline().with_l1_tlb(TlbConfig::dac23_l1_256());
        assert_eq!(c.l1_tlb.entries, 256);
        assert_eq!(c.l2_tlb.entries, 512);
    }
}
