//! Simulator configuration (the paper's Table III).

use tlb::TlbConfig;

/// Geometry of a data cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` divides evenly into whole sets of
    /// `associativity` lines. (Set counts need not be powers of two: the
    /// cache indexes by modulo, matching a sliced L2 whose 12 partitions
    /// each hold a power-of-two number of sets.)
    pub fn new(bytes: usize, associativity: usize, line_bytes: usize) -> Self {
        assert!(bytes > 0 && associativity > 0 && line_bytes > 0);
        let lines = bytes / line_bytes;
        assert!(lines.is_multiple_of(associativity), "lines must fill whole sets");
        CacheConfig {
            bytes,
            associativity,
            line_bytes,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.associativity
    }
}

/// Full GPU configuration.
///
/// [`GpuConfig::dac23_baseline`] reproduces Table III. Latencies that
/// Table III leaves unspecified (interconnect, L2 data, DRAM, UVM
/// first-touch fault) follow the gem5-gpu defaults used by the paper's
/// cited prior work and are documented in DESIGN.md.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in MHz (for reporting only; the simulator counts
    /// cycles).
    pub clock_mhz: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Warp instructions issued per SM per cycle (dual GTO scheduler).
    pub issue_width: u32,
    /// Hardware cap on concurrent TBs per SM (Kepler: 16).
    pub max_concurrent_tbs: u8,
    /// Per-SM private L1 data cache.
    pub l1_cache: CacheConfig,
    /// Shared L2 data cache (aggregate across memory partitions).
    pub l2_cache: CacheConfig,
    /// Per-SM private L1 TLB.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Number of shared page-table walkers.
    pub walkers: usize,
    /// Base page-table walk latency in cycles (Table III: 500).
    pub walk_latency: u64,
    /// Additional walk cycles per radix level touched (0 = the paper's
    /// flat 500-cycle walks; > 0 makes 2 MiB pages' 3-level walks cheaper
    /// than 4 KiB pages' 4-level walks).
    pub walk_latency_per_level: u64,
    /// L1 data-cache hit latency.
    pub l1_hit_latency: u64,
    /// One-way SM-to-partition interconnect latency.
    pub icnt_latency: u64,
    /// L2 data-cache access latency.
    pub l2_hit_latency: u64,
    /// DRAM access latency beyond L2.
    pub dram_latency: u64,
    /// One-time UVM first-touch (demand-paging) penalty per page.
    pub demand_fault_latency: u64,
    /// Flush per-SM L1 TLBs at each kernel launch (gem5-gpu invalidates
    /// GPU TLBs on launch; also the source of the paper's `nw` cold
    /// misses). The shared L2 TLB is not flushed.
    pub flush_l1_tlb_on_kernel_launch: bool,
    /// Lookups the shared L2 TLB can start per cycle (per slice). L1 TLB
    /// miss floods from all 16 SMs queue on these ports, which is what
    /// turns poor L1 hit rates into execution-time loss.
    pub l2_tlb_ports: usize,
    /// Slices the shared L2 TLB is distributed over (Figure 1 shows it
    /// spread across the memory partitions; 1 = monolithic). Entries are
    /// divided evenly; pages map to slices by VPN.
    pub l2_tlb_slices: usize,
}

impl GpuConfig {
    /// The paper's Table III baseline.
    pub fn dac23_baseline() -> Self {
        GpuConfig {
            num_sms: 16,
            clock_mhz: 1400,
            max_threads_per_sm: 2048,
            issue_width: 2,
            max_concurrent_tbs: 16,
            l1_cache: CacheConfig::new(16 * 1024, 4, 128),
            l2_cache: CacheConfig::new(1536 * 1024, 8, 128),
            l1_tlb: TlbConfig::dac23_l1(),
            l2_tlb: TlbConfig::dac23_l2(),
            walkers: 8,
            walk_latency: 500,
            walk_latency_per_level: 0,
            l1_hit_latency: 1,
            icnt_latency: 20,
            l2_hit_latency: 30,
            dram_latency: 200,
            demand_fault_latency: 2000,
            flush_l1_tlb_on_kernel_launch: true,
            l2_tlb_ports: 2,
            l2_tlb_slices: 1,
        }
    }

    /// The Figure 2 variant with a 256-entry L1 TLB.
    pub fn with_l1_tlb(mut self, l1_tlb: TlbConfig) -> Self {
        self.l1_tlb = l1_tlb;
        self
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::dac23_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let c = GpuConfig::dac23_baseline();
        assert_eq!(c.num_sms, 16);
        assert_eq!(c.clock_mhz, 1400);
        assert_eq!(c.max_threads_per_sm, 2048);
        assert_eq!(c.l1_cache.bytes, 16 * 1024);
        assert_eq!(c.l1_cache.line_bytes, 128);
        assert_eq!(c.l2_cache.bytes, 1536 * 1024);
        assert_eq!(c.l2_cache.associativity, 8);
        assert_eq!(c.l1_tlb.entries, 64);
        assert_eq!(c.l2_tlb.entries, 512);
        assert_eq!(c.walkers, 8);
        assert_eq!(c.walk_latency, 500);
        assert_eq!(c.max_concurrent_tbs, 16);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::new(16 * 1024, 4, 128);
        assert_eq!(c.lines(), 128);
        assert_eq!(c.sets(), 32);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn bad_cache_geometry_rejected() {
        let _ = CacheConfig::new(129 * 3, 2, 129 /* 3 lines, assoc 2 */);
    }

    #[test]
    fn l2_slice_geometry_is_non_pow2_sets() {
        let c = CacheConfig::new(1536 * 1024, 8, 128);
        assert_eq!(c.sets(), 1536);
    }

    #[test]
    fn with_l1_tlb_swaps_config() {
        let c = GpuConfig::dac23_baseline().with_l1_tlb(TlbConfig::dac23_l1_256());
        assert_eq!(c.l1_tlb.entries, 256);
        assert_eq!(c.l2_tlb.entries, 512);
    }
}
