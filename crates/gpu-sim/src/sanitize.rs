//! Runtime invariant sanitizer for the simulation engine.
//!
//! When enabled, the engine validates after TLB fills and after every
//! event cycle that the memory-system bookkeeping is self-consistent:
//! each TLB's structural invariants hold (entry placement licensed by the
//! §IV-B sharing flags, LRU recency a total order per set, occupancy ≤
//! capacity — see [`TranslationBuffer::check_invariants`]), per-SM stats
//! are monotone across cycles with `hits + misses == lookups`, and the TB
//! scheduler's §IV-A status table stays within its hardware budget. The
//! first violation panics with a full state dump.
//!
//! Enablement: on by default in debug builds (`cargo test` exercises it
//! everywhere), off in release; `repro`/`sweep` accept `--sanitize` which
//! calls [`set_sanitize`], and [`Simulator::with_sanitizer`] overrides the
//! global for one simulator instance.
//!
//! [`Simulator::with_sanitizer`]: crate::Simulator::with_sanitizer

use crate::tb_sched::TbScheduler;
use std::sync::atomic::{AtomicBool, Ordering};
use tlb::{InvariantViolation, TlbStats, TranslationBuffer};

/// Process-wide default, so `--sanitize` reaches every simulator built by
/// the experiment grid without threading a flag through each call site.
static ENABLED: AtomicBool = AtomicBool::new(cfg!(debug_assertions));

/// Turns the runtime invariant sanitizer on or off process-wide
/// (overridable per simulator via `Simulator::with_sanitizer`).
pub fn set_sanitize(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the sanitizer is currently enabled process-wide. Defaults to
/// `true` under `#[cfg(debug_assertions)]` and `false` in release builds.
pub fn sanitize_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-run sanitizer state: the previous cycle's per-SM stats, for the
/// monotonicity check.
pub(crate) struct Sanitizer {
    last_l1: Vec<TlbStats>,
}

impl Sanitizer {
    pub(crate) fn new(num_sms: usize) -> Self {
        Sanitizer {
            last_l1: vec![TlbStats::default(); num_sms],
        }
    }

    /// Full structural check of one SM's L1 TLB, called after a fill (the
    /// path that evicts, spills and flips sharing flags). Fills only
    /// happen in phase B on the coordinating thread, so this hook never
    /// races a phase-A worker.
    pub(crate) fn after_fill(sm: usize, cycle: u64, tlb: &dyn TranslationBuffer) {
        if let Err(v) = tlb.check_invariants() {
            report(v.in_context(&format!("sm {sm} L1 TLB, post-fill at cycle {cycle}")));
        }
    }

    /// Cheap per-event-cycle checks: per-SM stats monotone and internally
    /// consistent, scheduler status table within budget. Runs after phase
    /// B (every lane back home on the coordinator), so the borrowed TLB
    /// views are collected from the per-SM fronts at a phase boundary.
    pub(crate) fn after_cycle(
        &mut self,
        cycle: u64,
        l1_tlbs: &[&dyn TranslationBuffer],
        scheduler: &dyn TbScheduler,
        num_sms: usize,
    ) {
        for (sm, tlb) in l1_tlbs.iter().enumerate() {
            let now = tlb.stats();
            let prev = self.last_l1[sm];
            let monotone = now.hits >= prev.hits
                && now.misses >= prev.misses
                && now.evictions >= prev.evictions
                && now.insertions >= prev.insertions
                && now.lookups >= prev.lookups;
            if !monotone {
                report(InvariantViolation::new(
                    format!("sm {sm} L1 TLB, cycle {cycle}"),
                    format!("stats went backwards: {prev:?} -> {now:?}"),
                    tlb.dump_state(),
                ));
            }
            if let Err(e) = now.check() {
                report(InvariantViolation::new(
                    format!("sm {sm} L1 TLB, cycle {cycle}"),
                    e,
                    tlb.dump_state(),
                ));
            }
            self.last_l1[sm] = now;
        }
        if let Err(e) = scheduler.check_invariants(num_sms) {
            report(InvariantViolation::new(
                format!("TB scheduler '{}', cycle {cycle}", scheduler.name()),
                e,
                String::from("<scheduler state embedded in the detail above>"),
            ));
        }
    }

    /// Exhaustive end-of-kernel sweep: every L1 TLB and L2 TLB slice gets
    /// a full structural check (too costly per cycle, cheap per kernel).
    pub(crate) fn end_of_kernel(
        &mut self,
        cycle: u64,
        l1_tlbs: &[&dyn TranslationBuffer],
        l2_slices: &[impl TranslationBuffer],
    ) {
        for (sm, tlb) in l1_tlbs.iter().enumerate() {
            if let Err(v) = tlb.check_invariants() {
                report(v.in_context(&format!("sm {sm} L1 TLB, end of kernel at cycle {cycle}")));
            }
        }
        for (i, slice) in l2_slices.iter().enumerate() {
            if let Err(v) = slice.check_invariants() {
                report(v.in_context(&format!("L2 TLB slice {i}, end of kernel at cycle {cycle}")));
            }
        }
    }
}

/// A violation is a simulator bug, never a simulation outcome: abort the
/// run with the dump rather than producing silently-wrong results.
fn report(v: InvariantViolation) -> ! {
    panic!("sanitizer: {v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_follows_debug_assertions() {
        // Tests build with debug_assertions on, so the sanitizer defaults
        // to enabled — the whole test suite runs sanitized.
        assert_eq!(sanitize_enabled(), cfg!(debug_assertions));
    }

    #[test]
    #[should_panic(expected = "stats went backwards")]
    fn regressing_stats_are_fatal() {
        struct Fake(TlbStats);
        impl TranslationBuffer for Fake {
            fn lookup(&mut self, _: &tlb::TlbRequest) -> tlb::TlbOutcome {
                tlb::TlbOutcome::miss(1)
            }
            fn insert(&mut self, _: &tlb::TlbRequest, _: vmem::Ppn) {}
            fn stats(&self) -> TlbStats {
                self.0
            }
            fn reset_stats(&mut self) {}
            fn flush(&mut self) {}
            fn capacity(&self) -> usize {
                0
            }
        }
        let mut s = Sanitizer::new(1);
        let mut stats = TlbStats::default();
        stats.record(true);
        let warm = Fake(stats);
        let sched = crate::tb_sched::RoundRobinScheduler::new();
        s.after_cycle(1, &[&warm as &dyn TranslationBuffer], &sched, 1);
        // Counters jump backwards on the next cycle: must panic.
        let reset = Fake(TlbStats::default());
        s.after_cycle(2, &[&reset as &dyn TranslationBuffer], &sched, 1);
    }
}
