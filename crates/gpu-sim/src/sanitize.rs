//! Runtime invariant sanitizer for the simulation engine.
//!
//! When enabled, the engine validates after TLB fills and after every
//! event cycle that the memory-system bookkeeping is self-consistent:
//! each TLB's structural invariants hold (entry placement licensed by the
//! §IV-B sharing flags, LRU recency a total order per set, occupancy ≤
//! capacity — see [`TranslationBuffer::check_invariants`]), per-SM stats
//! are monotone across cycles with `hits + misses == lookups`, and the TB
//! scheduler's §IV-A status table stays within its hardware budget. The
//! first violation panics with a full state dump.
//!
//! Enablement: on by default in debug builds (`cargo test` exercises it
//! everywhere), off in release; `repro`/`sweep` accept `--sanitize` which
//! calls [`set_sanitize`], and [`Simulator::with_sanitizer`] overrides the
//! global for one simulator instance.
//!
//! [`Simulator::with_sanitizer`]: crate::Simulator::with_sanitizer

use crate::tb_sched::TbScheduler;
use std::sync::atomic::{AtomicBool, Ordering};
use tlb::{InvariantViolation, TlbStats, TranslationBuffer};
use vmem::Asid;

/// Process-wide default, so `--sanitize` reaches every simulator built by
/// the experiment grid without threading a flag through each call site.
static ENABLED: AtomicBool = AtomicBool::new(cfg!(debug_assertions));

/// Turns the runtime invariant sanitizer on or off process-wide
/// (overridable per simulator via `Simulator::with_sanitizer`).
pub fn set_sanitize(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the sanitizer is currently enabled process-wide. Defaults to
/// `true` under `#[cfg(debug_assertions)]` and `false` in release builds.
pub fn sanitize_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What the end-of-kernel sweep needs from an L2 TLB slice: the real
/// [`mem_hier::L2Slice`] (which wraps its buffer behind a token gate, so
/// it is not itself a [`TranslationBuffer`]) and test stand-ins both
/// qualify.
pub(crate) trait L2SliceView {
    /// Full structural check (placement, LRU order, per-ASID token
    /// bounds).
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
    /// Aggregate counters.
    fn stats(&self) -> TlbStats;
    /// Per-address-space counters; must sum to [`L2SliceView::stats`].
    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)>;
    /// State dump for violation reports.
    fn dump_state(&self) -> String;
}

impl L2SliceView for mem_hier::L2Slice {
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        mem_hier::L2Slice::check_invariants(self)
    }
    fn stats(&self) -> TlbStats {
        mem_hier::L2Slice::stats(self)
    }
    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        mem_hier::L2Slice::stats_by_asid(self)
    }
    fn dump_state(&self) -> String {
        self.buffer().dump_state()
    }
}

/// Per-run sanitizer state: the previous cycle's per-SM stats, for the
/// monotonicity check.
pub(crate) struct Sanitizer {
    last_l1: Vec<TlbStats>,
}

/// ASID-consistency check shared by the L1 and L2 end-of-kernel sweeps:
/// per-ASID counters must sum to the aggregate (no lookup attributed to
/// nobody, none double-counted), and every ASID with activity must name
/// one of the run's `num_asids` configured address spaces — an entry
/// attributed outside that range could not have come from any owning
/// page table.
fn check_per_asid(
    context: &str,
    aggregate: TlbStats,
    by_asid: &[(Asid, TlbStats)],
    num_asids: usize,
    dump: String,
) {
    let sum = by_asid
        .iter()
        .fold(TlbStats::default(), |a, (_, s)| a + *s);
    if sum != aggregate {
        report(InvariantViolation::new(
            context,
            format!("per-ASID stats do not sum to the aggregate: {sum:?} != {aggregate:?}"),
            dump,
        ));
    }
    for (asid, stats) in by_asid {
        let active = *stats != TlbStats::default();
        if active && asid.index() >= num_asids {
            report(InvariantViolation::new(
                context,
                format!(
                    "ASID {asid} has activity but the run configured only \
                     {num_asids} address spaces"
                ),
                dump,
            ));
        }
    }
}

impl Sanitizer {
    pub(crate) fn new(num_sms: usize) -> Self {
        Sanitizer {
            last_l1: vec![TlbStats::default(); num_sms],
        }
    }

    /// Full structural check of one SM's L1 TLB, called after a fill (the
    /// path that evicts, spills and flips sharing flags). Fills only
    /// happen in phase B on the coordinating thread, so this hook never
    /// races a phase-A worker.
    pub(crate) fn after_fill(sm: usize, cycle: u64, tlb: &dyn TranslationBuffer) {
        if let Err(v) = tlb.check_invariants() {
            report(v.in_context(&format!("sm {sm} L1 TLB, post-fill at cycle {cycle}")));
        }
    }

    /// Cheap per-event-cycle checks: per-SM stats monotone and internally
    /// consistent, scheduler status table within budget. Runs after phase
    /// B (every lane back home on the coordinator), so the borrowed TLB
    /// views are collected from the per-SM fronts at a phase boundary.
    pub(crate) fn after_cycle(
        &mut self,
        cycle: u64,
        l1_tlbs: &[&dyn TranslationBuffer],
        scheduler: &dyn TbScheduler,
        num_sms: usize,
    ) {
        for (sm, tlb) in l1_tlbs.iter().enumerate() {
            let now = tlb.stats();
            let prev = self.last_l1[sm];
            let monotone = now.hits >= prev.hits
                && now.misses >= prev.misses
                && now.evictions >= prev.evictions
                && now.insertions >= prev.insertions
                && now.lookups >= prev.lookups;
            if !monotone {
                report(InvariantViolation::new(
                    format!("sm {sm} L1 TLB, cycle {cycle}"),
                    format!("stats went backwards: {prev:?} -> {now:?}"),
                    tlb.dump_state(),
                ));
            }
            if let Err(e) = now.check() {
                report(InvariantViolation::new(
                    format!("sm {sm} L1 TLB, cycle {cycle}"),
                    e,
                    tlb.dump_state(),
                ));
            }
            self.last_l1[sm] = now;
        }
        if let Err(e) = scheduler.check_invariants(num_sms) {
            report(InvariantViolation::new(
                format!("TB scheduler '{}', cycle {cycle}", scheduler.name()),
                e,
                String::from("<scheduler state embedded in the detail above>"),
            ));
        }
    }

    /// Exhaustive end-of-kernel sweep: every L1 TLB and L2 TLB slice gets
    /// a full structural check plus the ASID-consistency checks of
    /// [`check_per_asid`] (too costly per cycle, cheap per kernel).
    /// `num_asids` is the number of address spaces the run configured.
    pub(crate) fn end_of_kernel(
        &mut self,
        cycle: u64,
        l1_tlbs: &[&dyn TranslationBuffer],
        l2_slices: &[impl L2SliceView],
        num_asids: usize,
    ) {
        for (sm, tlb) in l1_tlbs.iter().enumerate() {
            let context = format!("sm {sm} L1 TLB, end of kernel at cycle {cycle}");
            if let Err(v) = tlb.check_invariants() {
                report(v.in_context(&context));
            }
            check_per_asid(
                &context,
                tlb.stats(),
                &tlb.stats_by_asid(),
                num_asids,
                tlb.dump_state(),
            );
        }
        for (i, slice) in l2_slices.iter().enumerate() {
            let context = format!("L2 TLB slice {i}, end of kernel at cycle {cycle}");
            if let Err(v) = slice.check_invariants() {
                report(v.in_context(&context));
            }
            check_per_asid(
                &context,
                slice.stats(),
                &slice.stats_by_asid(),
                num_asids,
                slice.dump_state(),
            );
        }
    }

    /// Reports a broken cross-accumulator accounting identity found at
    /// end of kernel (`PerSmFront::check_accounting` /
    /// `SharedBack::check_accounting`): lost or double-counted
    /// translations, unattributed latency cycles.
    pub(crate) fn accounting_failure(context: &str, cycle: u64, detail: String) -> ! {
        report(InvariantViolation::new(
            format!("{context}, end of kernel at cycle {cycle}"),
            detail,
            String::from("<accounting counters embedded in the detail above>"),
        ))
    }
}

/// A violation is a simulator bug, never a simulation outcome: abort the
/// run with the dump rather than producing silently-wrong results.
fn report(v: InvariantViolation) -> ! {
    panic!("sanitizer: {v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_follows_debug_assertions() {
        // Tests build with debug_assertions on, so the sanitizer defaults
        // to enabled — the whole test suite runs sanitized.
        assert_eq!(sanitize_enabled(), cfg!(debug_assertions));
    }

    #[test]
    #[should_panic(expected = "stats went backwards")]
    fn regressing_stats_are_fatal() {
        struct Fake(TlbStats);
        impl TranslationBuffer for Fake {
            fn lookup(&mut self, _: &tlb::TlbRequest) -> tlb::TlbOutcome {
                tlb::TlbOutcome::miss(1)
            }
            fn insert(&mut self, _: &tlb::TlbRequest, _: vmem::Ppn) {}
            fn stats(&self) -> TlbStats {
                self.0
            }
            fn reset_stats(&mut self) {}
            fn flush(&mut self) {}
            fn capacity(&self) -> usize {
                0
            }
        }
        let mut s = Sanitizer::new(1);
        let mut stats = TlbStats::default();
        stats.record(true);
        let warm = Fake(stats);
        let sched = crate::tb_sched::RoundRobinScheduler::new();
        s.after_cycle(1, &[&warm as &dyn TranslationBuffer], &sched, 1);
        // Counters jump backwards on the next cycle: must panic.
        let reset = Fake(TlbStats::default());
        s.after_cycle(2, &[&reset as &dyn TranslationBuffer], &sched, 1);
    }

    /// A TLB whose stats and structural verdict are directly corruptible,
    /// standing in for an implementation whose state went bad.
    struct Broken {
        stats: TlbStats,
        structural: Option<InvariantViolation>,
        /// Overrides the per-ASID breakdown (`None` = the trait default:
        /// everything on ASID 0, which always sums correctly).
        per_asid: Option<Vec<(Asid, TlbStats)>>,
    }

    impl Broken {
        fn sound() -> Self {
            Broken {
                stats: TlbStats::default(),
                structural: None,
                per_asid: None,
            }
        }

        fn structurally(detail: &str, dump: &str) -> Self {
            Broken {
                stats: TlbStats::default(),
                structural: Some(InvariantViolation::new("FakeTlb", detail, dump)),
                per_asid: None,
            }
        }
    }

    impl L2SliceView for Broken {
        fn check_invariants(&self) -> Result<(), InvariantViolation> {
            TranslationBuffer::check_invariants(self)
        }
        fn stats(&self) -> TlbStats {
            self.stats
        }
        fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
            TranslationBuffer::stats_by_asid(self)
        }
        fn dump_state(&self) -> String {
            TranslationBuffer::dump_state(self)
        }
    }

    impl TranslationBuffer for Broken {
        fn lookup(&mut self, _: &tlb::TlbRequest) -> tlb::TlbOutcome {
            tlb::TlbOutcome::miss(1)
        }
        fn insert(&mut self, _: &tlb::TlbRequest, _: vmem::Ppn) {}
        fn stats(&self) -> TlbStats {
            self.stats
        }
        fn reset_stats(&mut self) {}
        fn flush(&mut self) {}
        fn capacity(&self) -> usize {
            0
        }
        fn check_invariants(&self) -> Result<(), InvariantViolation> {
            match &self.structural {
                Some(v) => Err(v.clone()),
                None => Ok(()),
            }
        }
        fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
            match &self.per_asid {
                Some(v) => v.clone(),
                None => vec![(Asid::default(), self.stats)],
            }
        }
        fn dump_state(&self) -> String {
            String::from("set   0: [corrupted]")
        }
    }

    #[test]
    #[should_panic(expected = "sm 0 L1 TLB, cycle 7")]
    fn inconsistent_stats_identity_is_fatal_and_names_the_sm() {
        // hits + misses != lookups: a lookup was recorded without its
        // verdict (or vice versa). TlbStats::check must trip.
        let mut broken = Broken::sound();
        broken.stats.lookups = 3;
        broken.stats.hits = 1;
        let sched = crate::tb_sched::RoundRobinScheduler::new();
        let mut s = Sanitizer::new(1);
        s.after_cycle(7, &[&broken as &dyn TranslationBuffer], &sched, 1);
    }

    #[test]
    #[should_panic(expected = "sm 3 L1 TLB, post-fill at cycle 11")]
    fn post_fill_structural_violation_names_the_sm() {
        let broken = Broken::structurally("duplicate vpn 42 in set 5", "set   5: [vpn=42 vpn=42]");
        Sanitizer::after_fill(3, 11, &broken);
    }

    #[test]
    #[should_panic(expected = "TB scheduler 'broken-table', cycle 9")]
    fn scheduler_table_violation_is_fatal_and_names_the_policy() {
        struct BadTable;
        impl TbScheduler for BadTable {
            fn pick_sm(&mut self, _: &[crate::tb_sched::SmSnapshot]) -> Option<usize> {
                None
            }
            fn name(&self) -> &str {
                "broken-table"
            }
            fn check_invariants(&self, num_sms: usize) -> Result<(), String> {
                Err(format!("status table has 17 rows for {num_sms} SMs"))
            }
        }
        let ok = Broken::sound();
        let mut s = Sanitizer::new(1);
        s.after_cycle(9, &[&ok as &dyn TranslationBuffer], &BadTable, 1);
    }

    #[test]
    #[should_panic(expected = "sm 1 L1 TLB, end of kernel at cycle 100")]
    fn end_of_kernel_l1_violation_names_the_sm() {
        let ok = Broken::sound();
        let bad = Broken::structurally("stamp 9 exceeds clock 3", "set   0: [@9]");
        let mut s = Sanitizer::new(2);
        let l2: Vec<Broken> = Vec::new();
        s.end_of_kernel(
            100,
            &[&ok as &dyn TranslationBuffer, &bad as &dyn TranslationBuffer],
            &l2,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "L2 TLB slice 1, end of kernel at cycle 100")]
    fn end_of_kernel_l2_violation_names_the_slice() {
        let mut s = Sanitizer::new(0);
        let l2 = vec![
            Broken::sound(),
            Broken::structurally("resident 513 exceeds capacity 512", "set 0: []"),
        ];
        s.end_of_kernel(100, &[], &l2, 1);
    }

    #[test]
    #[should_panic(expected = "per-ASID stats do not sum to the aggregate")]
    fn l1_per_asid_sum_mismatch_is_fatal() {
        // An L1 TLB that attributes fewer lookups to its ASIDs than it
        // counted in aggregate: a lookup went unattributed.
        let mut bad = Broken::sound();
        bad.stats.record(true);
        bad.stats.record(true);
        let mut app0 = TlbStats::default();
        app0.record(true);
        bad.per_asid = Some(vec![(Asid::default(), app0)]);
        let mut s = Sanitizer::new(1);
        let l2: Vec<Broken> = Vec::new();
        s.end_of_kernel(100, &[&bad as &dyn TranslationBuffer], &l2, 1);
    }

    #[test]
    #[should_panic(expected = "address spaces")]
    fn l2_activity_outside_configured_asids_is_fatal() {
        // An L2 slice reporting activity for ASID 3 in a 2-app co-run:
        // no configured page table can own those entries.
        let mut bad = Broken::sound();
        bad.stats.record(false);
        let mut stray = TlbStats::default();
        stray.record(false);
        bad.per_asid = Some(vec![(Asid::new(3), stray)]);
        let mut s = Sanitizer::new(0);
        s.end_of_kernel(100, &[], &[bad], 2);
    }

    #[test]
    #[should_panic(expected = "sm 2 mem-hier front, end of kernel at cycle 64")]
    fn accounting_failure_names_the_front() {
        Sanitizer::accounting_failure(
            "sm 2 mem-hier front",
            64,
            String::from("front attributed 0 translations but the L1 stage resolved 4"),
        );
    }
}
