//! Simulation results.

use mem_hier::{CacheStats, LatencyBreakdown};
use std::fmt;
use tlb::TlbStats;
use vmem::WalkerStats;

/// One recorded L1 TLB access (used by the characterization figures).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TranslationEvent {
    /// SM whose private L1 TLB was probed.
    pub sm: u8,
    /// Global TB id (within the kernel) that issued the access.
    pub tb_global: u32,
    /// Warp index within the TB that issued the access.
    pub warp: u16,
    /// Kernel index within the workload.
    pub kernel: u16,
    /// Virtual page number probed.
    pub vpn: u64,
}

/// Per-application results of a run (one entry per ASID, in ASID
/// order). Solo runs carry a single entry; co-runs
/// ([`crate::Simulator::run_corun`]) one per co-running app.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppReport {
    /// The app's address-space id (its index in the co-run).
    pub asid: u16,
    /// The app's workload name.
    pub workload: String,
    /// Completion cycle of the app's last warp.
    pub cycles: u64,
    /// The app's L1 TLB counters, summed over SMs (eviction counts
    /// attribute to the victim's ASID, everything else to the
    /// requester's).
    pub l1_tlb: TlbStats,
    /// The app's shared L2 TLB counters, summed over slices.
    pub l2_tlb: TlbStats,
}

/// Everything a simulation run produces.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// TB scheduling policy name.
    pub scheduler: String,
    /// Total execution cycles across all kernel launches.
    pub total_cycles: u64,
    /// Per-kernel `(name, cycles)`.
    pub kernel_cycles: Vec<(String, u64)>,
    /// Per-SM private L1 TLB statistics.
    pub l1_tlb: Vec<TlbStats>,
    /// Shared L2 TLB statistics.
    pub l2_tlb: TlbStats,
    /// Per-SM L1 data-cache statistics.
    pub l1_cache: Vec<CacheStats>,
    /// Shared L2 data-cache statistics.
    pub l2_cache: CacheStats,
    /// Page-table walker activity.
    pub walker: WalkerStats,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Warp instructions issued per SM (execution balance).
    pub sm_instructions: Vec<u64>,
    /// Memory transactions after coalescing.
    pub transactions: u64,
    /// UVM demand-paging faults taken.
    pub demand_faults: u64,
    /// TBs placed on each SM (scheduling balance).
    pub tb_placements: Vec<u32>,
    /// Per-level translation-latency attribution (L1 TLB / interconnect /
    /// L2 TLB queueing / L2 TLB lookup / walk / fault), accumulated by the
    /// mem-hier pipeline. `latency.check()` holds: the stage cycles sum to
    /// the independently measured end-to-end translation cycles.
    pub latency: LatencyBreakdown,
    /// Recorded L1 TLB access stream (only when tracing was enabled).
    pub translation_trace: Vec<TranslationEvent>,
    /// Phase-B rounds whose deferred batch met the engine's shard
    /// policy. The policy predicate never reads the thread count, so a
    /// serial run reports the same number as any `--sim-threads N` run
    /// (where those rounds actually take the sharded drain).
    pub sharded_rounds: u64,
    /// TLB lookups (all levels) served by the exact MRU memo fast path
    /// instead of a tag walk. Pure wall-clock accounting: the fast path
    /// is byte-identical to the walk it skips, and the lookup streams
    /// are thread-count invariant, so this counter is too.
    pub fastpath_hits: u64,
    /// Per-application results in ASID order (a single entry for solo
    /// runs). Populated by the engine from order-independent
    /// per-ASID counter merges, so it is `--sim-threads` invariant.
    pub per_app: Vec<AppReport>,
}

impl SimReport {
    /// Per-SM L1 TLB stats with the counter identity cross-checked: every
    /// rate this report derives flows through here, so a TLB model that
    /// misclassifies a lookup (breaking `hits + misses == lookups`) trips
    /// a debug assertion instead of silently skewing Figure 10/11 numbers.
    fn l1_tlb_checked(&self) -> impl Iterator<Item = &TlbStats> {
        self.l1_tlb.iter().inspect(|s| {
            debug_assert!(
                s.check().is_ok(),
                "per-SM L1 TLB stats violate the lookup identity: {:?} ({})",
                s,
                s.check().unwrap_err()
            );
        })
    }

    /// The paper's L1 TLB hit-rate metric: the average of the per-SM hit
    /// rates over SMs that saw traffic ("the average hit rate across all
    /// SMs as the L1 TLBs are SM private"). Each per-SM rate is derived
    /// from the raw counters by [`TlbStats::hit_rate`] — the single
    /// derivation point — after the identity cross-check.
    pub fn l1_tlb_hit_rate(&self) -> f64 {
        let active: Vec<f64> = self
            .l1_tlb_checked()
            .filter(|s| s.accesses() > 0)
            .map(TlbStats::hit_rate)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// Aggregate L1 TLB counters summed over SMs (identity-checked per SM
    /// and on the sum).
    pub fn l1_tlb_aggregate(&self) -> TlbStats {
        let agg = self
            .l1_tlb_checked()
            .copied()
            .fold(TlbStats::default(), |a, b| a + b);
        debug_assert!(
            agg.check().is_ok(),
            "aggregated L1 TLB stats violate the lookup identity: {agg:?}"
        );
        agg
    }

    /// Execution time of `self` normalized to `baseline` (< 1 is faster).
    pub fn normalized_time(&self, baseline: &SimReport) -> f64 {
        self.total_cycles as f64 / baseline.total_cycles as f64
    }

    /// Speedup of `self` over `baseline` (> 1 is faster).
    pub fn speedup(&self, baseline: &SimReport) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Per-app slowdowns vs. the matching solo runs: entry `k` is the
    /// app's co-run completion divided by `solo_cycles[k]` (> 1 means
    /// sharing hurt it).
    ///
    /// # Panics
    ///
    /// Panics if `solo_cycles` does not match `per_app` in length.
    pub fn per_app_slowdowns(&self, solo_cycles: &[u64]) -> Vec<f64> {
        assert_eq!(
            solo_cycles.len(),
            self.per_app.len(),
            "one solo baseline per co-running app"
        );
        self.per_app
            .iter()
            .zip(solo_cycles)
            .map(|(app, &solo)| app.cycles as f64 / solo.max(1) as f64)
            .collect()
    }

    /// Per-app normalized progress vs. solo (`1/slowdown` each): the
    /// input for [`crate::jain_fairness`] and
    /// [`crate::system_throughput`].
    pub fn per_app_progress(&self, solo_cycles: &[u64]) -> Vec<f64> {
        self.per_app_slowdowns(solo_cycles)
            .into_iter()
            .map(|s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect()
    }

    /// Header row for [`SimReport::to_csv_row`].
    ///
    /// The first 12 columns are the pre-mem-hier schema and must stay in
    /// place (downstream notebooks index them by position); new counters
    /// are appended after `demand_faults` only.
    pub fn csv_header() -> &'static str {
        concat!(
            "workload,scheduler,cycles,instructions,transactions,",
            "l1_tlb_hit_rate,l2_tlb_hit_rate,l1_cache_hit_rate,",
            "l2_cache_hit_rate,walks,walker_wait_cycles,demand_faults,",
            "walker_coalesced,walker_max_queue_wait,translations,",
            "l1_tlb_cycles,icnt_cycles,l2_tlb_queue_cycles,",
            "l2_tlb_lookup_cycles,walk_cycles,fault_cycles,translate_cycles,",
            "sharded_rounds,fastpath_hits"
        )
    }

    /// [`SimReport::csv_header`] extended with the per-app columns a
    /// co-run of `n_apps` appends after `fastpath_hits` (append-only:
    /// the solo schema is the `n_apps <= 1` prefix, byte-identical to
    /// [`SimReport::csv_header`]).
    pub fn csv_header_for_apps(n_apps: usize) -> String {
        let mut header = String::from(Self::csv_header());
        if n_apps > 1 {
            for k in 0..n_apps {
                header.push_str(&format!(
                    ",app{k}_name,app{k}_cycles,app{k}_l1_tlb_hit_rate,app{k}_l2_tlb_hit_rate"
                ));
            }
        }
        header
    }

    /// One CSV row of the headline counters (matches
    /// [`SimReport::csv_header`]).
    pub fn to_csv_row(&self) -> String {
        let l1d = self
            .l1_cache
            .iter()
            .fold(CacheStats::default(), |a, b| CacheStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                evictions: a.evictions + b.evictions,
                writebacks: a.writebacks + b.writebacks,
            });
        let lat = &self.latency;
        let mut row = format!(
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.workload,
            self.scheduler,
            self.total_cycles,
            self.instructions,
            self.transactions,
            self.l1_tlb_hit_rate(),
            self.l2_tlb.hit_rate(),
            l1d.hit_rate(),
            self.l2_cache.hit_rate(),
            self.walker.walks,
            self.walker.queue_wait_cycles,
            self.demand_faults,
            self.walker.coalesced,
            self.walker.max_queue_wait,
            lat.translations,
            lat.l1_tlb_cycles,
            lat.icnt_cycles,
            lat.l2_tlb_queue_cycles,
            lat.l2_tlb_lookup_cycles,
            lat.walk_cycles,
            lat.fault_cycles,
            lat.end_to_end_cycles,
            self.sharded_rounds,
            self.fastpath_hits
        );
        // Per-app columns appended only for co-runs, so solo rows stay
        // byte-identical to the pre-multi-tenant schema (golden CSVs
        // pin this).
        if self.per_app.len() > 1 {
            for app in &self.per_app {
                row.push_str(&format!(
                    ",{},{},{:.6},{:.6}",
                    app.workload,
                    app.cycles,
                    app.l1_tlb.hit_rate(),
                    app.l2_tlb.hit_rate()
                ));
            }
        }
        row
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles, {} instructions, {} transactions",
            self.workload, self.scheduler, self.total_cycles, self.instructions, self.transactions
        )?;
        writeln!(
            f,
            "  L1 TLB hit rate (avg/SM): {:.1}%  L2 TLB: {:.1}%  walks: {}  faults: {}",
            self.l1_tlb_hit_rate() * 100.0,
            self.l2_tlb.hit_rate() * 100.0,
            self.walker.walks,
            self.demand_faults
        )?;
        writeln!(
            f,
            "  L1 D$ hit: {:.1}%  L2 D$ hit: {:.1}%",
            self.l1_cache
                .iter()
                .fold(CacheStats::default(), |a, b| CacheStats {
                    hits: a.hits + b.hits,
                    misses: a.misses + b.misses,
                    evictions: a.evictions + b.evictions,
                    writebacks: a.writebacks + b.writebacks,
                })
                .hit_rate()
                * 100.0,
            self.l2_cache.hit_rate() * 100.0
        )?;
        write!(f, "  {}", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hits: u64, misses: u64) -> TlbStats {
        TlbStats {
            hits,
            misses,
            lookups: hits + misses,
            ..Default::default()
        }
    }

    #[test]
    fn hit_rate_averages_only_active_sms() {
        let r = SimReport {
            l1_tlb: vec![stats(9, 1), stats(0, 0), stats(1, 9)],
            ..Default::default()
        };
        // (0.9 + 0.1) / 2, ignoring the idle SM.
        assert!((r.l1_tlb_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_zero_when_idle() {
        let r = SimReport::default();
        assert_eq!(r.l1_tlb_hit_rate(), 0.0);
    }

    #[test]
    fn aggregate_sums() {
        let r = SimReport {
            l1_tlb: vec![stats(1, 2), stats(3, 4)],
            ..Default::default()
        };
        let agg = r.l1_tlb_aggregate();
        assert_eq!(agg.hits, 4);
        assert_eq!(agg.misses, 6);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lookup identity")]
    fn broken_lookup_identity_trips_aggregation_check() {
        let r = SimReport {
            // hits + misses = 3, but lookups says 7: a TLB model lied.
            l1_tlb: vec![TlbStats {
                hits: 1,
                misses: 2,
                lookups: 7,
                ..Default::default()
            }],
            ..Default::default()
        };
        let _ = r.l1_tlb_aggregate();
    }

    #[test]
    fn normalized_time_and_speedup() {
        let fast = SimReport {
            total_cycles: 500,
            ..Default::default()
        };
        let slow = SimReport {
            total_cycles: 1000,
            ..Default::default()
        };
        assert!((fast.normalized_time(&slow) - 0.5).abs() < 1e-12);
        assert!((fast.speedup(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = SimReport {
            workload: "gemm".into(),
            scheduler: "baseline".into(),
            total_cycles: 10,
            l1_tlb: vec![stats(1, 1)],
            l1_cache: vec![CacheStats::default()],
            ..Default::default()
        };
        let header_cols = SimReport::csv_header().split(',').count();
        let row = r.to_csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("gemm,baseline,10,"));
        // No stray whitespace or quoting (names are plain tokens).
        assert!(!row.contains(' '));
        assert!(!SimReport::csv_header().contains(' '));
    }

    #[test]
    fn walker_and_breakdown_counters_round_trip_through_csv() {
        let r = SimReport {
            workload: "bfs".into(),
            scheduler: "baseline".into(),
            walker: WalkerStats {
                walks: 10,
                coalesced: 7,
                queue_wait_cycles: 40,
                max_queue_wait: 13,
            },
            latency: LatencyBreakdown {
                translations: 3,
                l1_tlb_cycles: 3,
                icnt_cycles: 40,
                l2_tlb_queue_cycles: 5,
                l2_tlb_lookup_cycles: 10,
                walk_cycles: 500,
                fault_cycles: 2000,
                end_to_end_cycles: 2558,
            },
            sharded_rounds: 21,
            fastpath_hits: 4242,
            ..Default::default()
        };
        let header: Vec<&str> = SimReport::csv_header().split(',').collect();
        let row = r.to_csv_row();
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), header.len());
        let field = |name: &str| {
            let i = header
                .iter()
                .position(|h| *h == name)
                .unwrap_or_else(|| panic!("missing column {name}"));
            cols[i].parse::<u64>().unwrap()
        };
        // Walker export (satellite 1): coalesced and max queue wait.
        assert_eq!(field("walker_coalesced"), 7);
        assert_eq!(field("walker_max_queue_wait"), 13);
        // Per-level breakdown columns round-trip exactly.
        assert_eq!(field("translations"), 3);
        assert_eq!(field("l1_tlb_cycles"), 3);
        assert_eq!(field("icnt_cycles"), 40);
        assert_eq!(field("l2_tlb_queue_cycles"), 5);
        assert_eq!(field("l2_tlb_lookup_cycles"), 10);
        assert_eq!(field("walk_cycles"), 500);
        assert_eq!(field("fault_cycles"), 2000);
        assert_eq!(field("translate_cycles"), 2558);
        // Serial hot-path counters (appended columns): shard-policy
        // rounds and memo fast-path hits round-trip exactly.
        assert_eq!(field("sharded_rounds"), 21);
        assert_eq!(field("fastpath_hits"), 4242);
        // And the recovered row still satisfies the stage-sum identity.
        assert!(r.latency.check().is_ok());
    }

    #[test]
    fn per_app_columns_append_only_and_round_trip() {
        // A 2-app co-run appends exactly the per-app columns after the
        // frozen solo schema; the solo prefix stays byte-identical.
        let solo = SimReport {
            workload: "gemm".into(),
            scheduler: "baseline".into(),
            total_cycles: 10,
            l1_tlb: vec![stats(1, 1)],
            l1_cache: vec![CacheStats::default()],
            ..Default::default()
        };
        let mut corun = solo.clone();
        corun.workload = "gemm+bfs".into();
        corun.per_app = vec![
            AppReport {
                asid: 0,
                workload: "gemm".into(),
                cycles: 8,
                l1_tlb: stats(3, 1),
                l2_tlb: stats(1, 1),
            },
            AppReport {
                asid: 1,
                workload: "bfs".into(),
                cycles: 10,
                l1_tlb: stats(1, 3),
                l2_tlb: stats(0, 2),
            },
        ];
        let header: Vec<String> = SimReport::csv_header_for_apps(2)
            .split(',')
            .map(str::to_owned)
            .collect();
        let row = corun.to_csv_row();
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), header.len());
        // The solo schema is the exact prefix.
        let base_cols = SimReport::csv_header().split(',').count();
        assert_eq!(&header[..base_cols].join(","), SimReport::csv_header());
        assert_eq!(SimReport::csv_header_for_apps(1), SimReport::csv_header());
        let field = |name: &str| {
            let i = header
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("missing column {name}"));
            cols[i]
        };
        // Round trip: every appended per-app value parses back exactly.
        assert_eq!(field("app0_name"), "gemm");
        assert_eq!(field("app0_cycles").parse::<u64>().unwrap(), 8);
        assert!((field("app0_l1_tlb_hit_rate").parse::<f64>().unwrap() - 0.75).abs() < 1e-9);
        assert_eq!(field("app1_name"), "bfs");
        assert_eq!(field("app1_cycles").parse::<u64>().unwrap(), 10);
        assert!((field("app1_l2_tlb_hit_rate").parse::<f64>().unwrap() - 0.0).abs() < 1e-9);
        // Solo rows carry no per-app columns at all.
        assert_eq!(
            solo.to_csv_row().split(',').count(),
            base_cols,
            "solo schema must stay frozen"
        );
    }

    #[test]
    fn slowdowns_and_progress_vs_solo() {
        let corun = SimReport {
            per_app: vec![
                AppReport {
                    asid: 0,
                    workload: "a".into(),
                    cycles: 200,
                    ..Default::default()
                },
                AppReport {
                    asid: 1,
                    workload: "b".into(),
                    cycles: 150,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let slow = corun.per_app_slowdowns(&[100, 100]);
        assert!((slow[0] - 2.0).abs() < 1e-12);
        assert!((slow[1] - 1.5).abs() < 1e-12);
        let prog = corun.per_app_progress(&[100, 100]);
        assert!((prog[0] - 0.5).abs() < 1e-12);
        assert!((prog[1] - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let r = SimReport {
            workload: "gemm".into(),
            scheduler: "round-robin".into(),
            total_cycles: 100,
            l1_tlb: vec![stats(1, 1)],
            l1_cache: vec![CacheStats::default()],
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains("50.0%"));
    }
}
