//! The engine's trace-feed abstraction: where TB traces come from
//! during a run.
//!
//! The dispatch loop in `engine.rs` consumes TBs strictly in grid order
//! (each global TB index exactly once), which is what makes streaming
//! replay possible: a [`KernelFeed`] either borrows an in-RAM
//! [`KernelTrace`] or pulls TBs through a forward-only `trace/v1`
//! [`TbStream`] cursor. In the streaming case only the current decoded
//! block and the TB being placed are resident — [`SmRt::place_tb`]
//! (`engine.rs`) Arc-clones each warp's op storage into the resident
//! warps, so in-flight TBs keep their ops alive while the feed recycles
//! the decoded block behind them. That is what keeps peak RSS flat as
//! footprints grow.
//!
//! [`SmRt::place_tb`]: crate::engine

use vmem::Asid;
use workloads::format::{KernelMeta, TbStream, TraceError, TraceReader};
use workloads::{KernelTrace, TbTrace};

/// One kernel launch's TB source, consumed in grid order by the
/// dispatch loop.
pub(crate) enum KernelFeed<'a> {
    /// A fully materialized in-RAM kernel.
    Mem(&'a KernelTrace),
    /// An app-interleaved co-run: a merged in-RAM TB stream where TB
    /// `i` belongs to the address space `asids[i]` (built by
    /// [`crate::corun`]).
    CoMem {
        /// The merged kernel (all apps' TBs, round-robin interleaved).
        kernel: &'a KernelTrace,
        /// Owning address space of each TB, parallel to `kernel.tbs`.
        asids: &'a [Asid],
    },
    /// A kernel streamed from a `trace/v1` file.
    Stream {
        /// Footer metadata (name, occupancy hints, TB count).
        meta: &'a KernelMeta,
        /// Forward-only block-streaming cursor.
        stream: TbStream,
        /// Next TB index the cursor will yield.
        next: usize,
        /// The most recently decoded TB (kept alive while the engine
        /// places it).
        current: Option<TbTrace>,
    },
}

impl KernelFeed<'_> {
    /// Kernel name (for `SimReport::kernel_cycles`).
    pub(crate) fn name(&self) -> &str {
        match self {
            KernelFeed::Mem(k) | KernelFeed::CoMem { kernel: k, .. } => &k.name,
            KernelFeed::Stream { meta, .. } => &meta.name,
        }
    }

    /// Threads per TB (occupancy accounting).
    pub(crate) fn threads_per_tb(&self) -> u32 {
        match self {
            KernelFeed::Mem(k) | KernelFeed::CoMem { kernel: k, .. } => k.threads_per_tb,
            KernelFeed::Stream { meta, .. } => meta.threads_per_tb,
        }
    }

    /// Compile-time per-SM TB concurrency limit.
    pub(crate) fn max_concurrent_tbs_per_sm(&self) -> u8 {
        match self {
            KernelFeed::Mem(k) | KernelFeed::CoMem { kernel: k, .. } => k.max_concurrent_tbs_per_sm,
            KernelFeed::Stream { meta, .. } => meta.max_concurrent_tbs_per_sm,
        }
    }

    /// Number of TBs in the kernel's grid.
    pub(crate) fn tb_count(&self) -> usize {
        match self {
            KernelFeed::Mem(k) | KernelFeed::CoMem { kernel: k, .. } => k.tbs.len(),
            KernelFeed::Stream { meta, .. } => meta.tb_count as usize,
        }
    }

    /// Owning address space of the TB at global index `idx` (ASID 0 for
    /// every solo feed).
    pub(crate) fn asid_of(&self, idx: usize) -> Asid {
        match self {
            KernelFeed::CoMem { asids, .. } => asids[idx],
            _ => Asid::default(),
        }
    }

    /// The TB at global index `idx`.
    ///
    /// The dispatch loop asks for indexes in strictly increasing order,
    /// each exactly once; the streaming arm enforces that (it cannot
    /// seek backwards) and decodes forward block by block.
    pub(crate) fn tb(&mut self, idx: usize) -> Result<&TbTrace, TraceError> {
        match self {
            KernelFeed::Mem(k) | KernelFeed::CoMem { kernel: k, .. } => {
                k.tbs.get(idx).ok_or_else(|| TraceError::NotATrace {
                    what: format!("TB index {idx} out of range ({} TBs)", k.tbs.len()),
                })
            }
            KernelFeed::Stream {
                stream,
                next,
                current,
                ..
            } => {
                if idx != *next {
                    return Err(TraceError::NotATrace {
                        what: format!(
                            "non-monotonic TB access: asked for {idx}, cursor at {next}"
                        ),
                    });
                }
                let Some(tb) = stream.next_tb()? else {
                    return Err(TraceError::NotATrace {
                        what: format!("trace stream ended before TB {idx}"),
                    });
                };
                *next += 1;
                Ok(current.insert(tb))
            }
        }
    }
}

/// A run's kernel sequence: the owned counterpart of [`KernelFeed`]
/// (`run_prepared` holds one and borrows a feed per kernel).
pub(crate) enum KernelSeq {
    /// In-RAM kernels (shared storage from the workload).
    Mem(std::sync::Arc<Vec<KernelTrace>>),
    /// An app-interleaved co-run: one merged launch whose TBs carry
    /// per-app ASIDs (built by [`crate::corun::merge_apps`]).
    CoRun {
        /// The merged TB stream, dispatched as a single launch.
        kernel: Box<KernelTrace>,
        /// Owning ASID of each TB, parallel to `kernel.tbs`.
        asids: Vec<Asid>,
    },
    /// A trace file; each kernel opens its own streaming cursor. Boxed
    /// so the rare streaming variant doesn't inflate the in-RAM one.
    Stream(Box<TraceReader>),
}

impl KernelSeq {
    /// Number of kernel launches.
    pub(crate) fn len(&self) -> usize {
        match self {
            KernelSeq::Mem(kernels) => kernels.len(),
            KernelSeq::CoRun { .. } => 1,
            KernelSeq::Stream(reader) => reader.kernels().len(),
        }
    }

    /// Opens the feed for kernel `k`.
    pub(crate) fn feed(&self, k: usize) -> Result<KernelFeed<'_>, TraceError> {
        match self {
            KernelSeq::CoRun { kernel, asids } => {
                if k != 0 {
                    return Err(TraceError::NotATrace {
                        what: format!("co-run has a single merged launch, asked for kernel {k}"),
                    });
                }
                Ok(KernelFeed::CoMem { kernel, asids })
            }
            KernelSeq::Mem(kernels) => {
                kernels
                    .get(k)
                    .map(KernelFeed::Mem)
                    .ok_or_else(|| TraceError::NotATrace {
                        what: format!("kernel index {k} out of range ({} kernels)", kernels.len()),
                    })
            }
            KernelSeq::Stream(reader) => {
                let Some(meta) = reader.kernels().get(k) else {
                    return Err(TraceError::NotATrace {
                        what: format!(
                            "kernel index {k} out of range ({} kernels)",
                            reader.kernels().len()
                        ),
                    });
                };
                Ok(KernelFeed::Stream {
                    meta,
                    stream: reader.stream_kernel(k)?,
                    next: 0,
                    current: None,
                })
            }
        }
    }
}
