//! Multi-application co-runs: merging several workloads into one
//! app-interleaved launch over concurrent address spaces.
//!
//! The paper's motivation is multi-tenancy: co-running applications
//! thrash the shared L2 TLB and each other's walkers. This module makes
//! that a first-class scenario: [`merge_apps`] flattens each app's
//! kernel sequence into a per-app TB stream, tags every TB with its
//! app's [`Asid`], and interleaves the streams round-robin into one
//! merged launch. The engine dispatches the merged stream in order, so
//! the interleaving *is* the app-level TB schedule; per-SM TB placement
//! stays with the configured [`crate::TbScheduler`].
//!
//! Modeling choices (documented in DESIGN.md §"Multi-tenant co-runs"):
//!
//! * Each app's kernels are flattened into one stream — TB dispatch
//!   order within an app preserves kernel order, but there is no
//!   inter-kernel barrier and no per-kernel L1 TLB flush inside a
//!   co-run. Solo baselines for slowdown figures therefore come from
//!   1-app co-runs through this same path, so numerator and
//!   denominator share semantics.
//! * An app's completion cycle is the completion of its last warp
//!   (order-independent max, so `--sim-threads N` is byte-identical).
//!
//! Fairness metrics follow the multi-program scheduling literature:
//! per-app slowdown vs. solo, Jain's fairness index over per-app
//! normalized progress, and system throughput (the sum of normalized
//! progress, a.k.a. weighted speedup).

use vmem::{AddressSpace, Asid};
use workloads::{KernelTrace, Workload};

/// One merged co-run: the interleaved TB stream, the per-TB ASIDs, and
/// each app's address space (indexed by ASID).
pub(crate) struct MergedApps {
    /// Combined name, `a+b+c` in app order.
    pub(crate) name: String,
    /// Per-app names in ASID order.
    pub(crate) app_names: Vec<String>,
    /// The merged launch (all apps' TBs, round-robin interleaved).
    pub(crate) kernel: KernelTrace,
    /// Owning ASID of each merged TB.
    pub(crate) asids: Vec<Asid>,
    /// Per-app address spaces, indexed by `Asid::index`.
    pub(crate) spaces: Vec<AddressSpace>,
}

/// Merges 1–[`Asid::MAX_ASIDS`] workloads into an app-interleaved
/// co-run.
///
/// # Panics
///
/// Panics if `apps` is empty, exceeds the ASID budget, or the apps
/// disagree on page size (one shared walker pool serves every space).
pub(crate) fn merge_apps(apps: Vec<Workload>) -> MergedApps {
    assert!(!apps.is_empty(), "a co-run needs at least one app");
    assert!(
        apps.len() <= Asid::MAX_ASIDS as usize,
        "co-run of {} apps exceeds the ASID budget",
        apps.len()
    );
    let mut app_names = Vec::with_capacity(apps.len());
    let mut spaces = Vec::with_capacity(apps.len());
    // Per-app flattened TB streams (kernel order preserved within an
    // app).
    let mut streams: Vec<std::vec::IntoIter<workloads::TbTrace>> = Vec::with_capacity(apps.len());
    let mut threads_per_tb = 1u32;
    let mut max_concurrent = u8::MAX;
    for workload in apps {
        let (name, kernels, space) = workload.into_parts();
        assert_eq!(
            space.page_size(),
            spaces.first().map_or(space.page_size(), AddressSpace::page_size),
            "co-running apps must share a page size"
        );
        let mut tbs = Vec::new();
        for k in kernels.iter() {
            threads_per_tb = threads_per_tb.max(k.threads_per_tb);
            max_concurrent = max_concurrent.min(k.max_concurrent_tbs_per_sm.max(1));
            // TB clones share warp-op storage (`Arc`), so this is a
            // pointer copy per warp, not a trace copy.
            tbs.extend(k.tbs.iter().cloned());
        }
        app_names.push(name);
        spaces.push(space);
        streams.push(tbs.into_iter());
    }

    // Round-robin interleave: one TB per app per turn, skipping
    // exhausted apps, so short apps finish dispatching early while long
    // apps keep the machine fed.
    let total: usize = streams.iter().map(ExactSizeIterator::len).sum();
    let mut tbs = Vec::with_capacity(total);
    let mut asids = Vec::with_capacity(total);
    while tbs.len() < total {
        for (app, stream) in streams.iter_mut().enumerate() {
            if let Some(tb) = stream.next() {
                tbs.push(tb);
                asids.push(Asid::new(app as u16));
            }
        }
    }

    let name = app_names.join("+");
    let kernel = KernelTrace {
        name: name.clone(),
        tbs,
        max_concurrent_tbs_per_sm: max_concurrent,
        threads_per_tb,
    };
    MergedApps {
        name,
        app_names,
        kernel,
        asids,
        spaces,
    }
}

/// Jain's fairness index over per-app normalized progress values
/// (`1/slowdown` each): `(Σx)² / (n·Σx²)`. 1.0 means perfectly equal
/// progress; `1/n` means one app monopolized the machine. Empty input
/// yields 1.0 (a solo run is trivially fair).
pub fn jain_fairness(progress: &[f64]) -> f64 {
    if progress.is_empty() {
        return 1.0;
    }
    let sum: f64 = progress.iter().sum();
    let sq: f64 = progress.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (progress.len() as f64 * sq)
}

/// System throughput (weighted speedup): the sum of per-app normalized
/// progress values. `n` for a contention-free co-run of `n` apps, lower
/// as sharing hurts.
pub fn system_throughput(progress: &[f64]) -> f64 {
    progress.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{registry, Scale};

    fn app(name: &str) -> Workload {
        registry()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap()
            .generate(Scale::Test, 42)
    }

    #[test]
    fn merge_interleaves_round_robin() {
        let m = merge_apps(vec![app("gemm"), app("bfs")]);
        assert_eq!(m.app_names, vec!["gemm", "bfs"]);
        assert_eq!(m.name, "gemm+bfs");
        assert_eq!(m.spaces.len(), 2);
        assert_eq!(m.kernel.tbs.len(), m.asids.len());
        // Both apps present, and the head of the stream alternates while
        // both still have TBs.
        assert_eq!(m.asids[0], Asid::new(0));
        assert_eq!(m.asids[1], Asid::new(1));
        assert!(m.asids.iter().any(|a| *a == Asid::new(0)));
        assert!(m.asids.iter().any(|a| *a == Asid::new(1)));
    }

    #[test]
    fn merge_preserves_every_tb() {
        let (gemm_tbs, bfs_tbs) = {
            let count = |w: Workload| -> usize {
                let (_, kernels, _) = w.into_parts();
                kernels.iter().map(|k| k.tbs.len()).sum()
            };
            (count(app("gemm")), count(app("bfs")))
        };
        let m = merge_apps(vec![app("gemm"), app("bfs")]);
        assert_eq!(m.kernel.tbs.len(), gemm_tbs + bfs_tbs);
        let app0 = m.asids.iter().filter(|a| **a == Asid::new(0)).count();
        assert_eq!(app0, gemm_tbs);
    }

    #[test]
    fn short_app_exhausts_without_stalling_long_app() {
        let m = merge_apps(vec![app("gemm"), app("bicg")]);
        // After the shorter stream runs dry the tail must be entirely
        // the longer app — no gaps, no repeats.
        let total = m.asids.len();
        let tail_owner = m.asids[total - 1];
        let first_tail = m.asids.iter().rposition(|a| *a != tail_owner).unwrap();
        assert!(m.asids[first_tail + 1..].iter().all(|a| *a == tail_owner));
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain_fairness(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One app starved: index collapses toward 1/n.
        let skew = jain_fairness(&[1.0, 0.0]);
        assert!((skew - 0.5).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
    }

    #[test]
    fn system_throughput_sums_progress() {
        assert!((system_throughput(&[0.5, 0.75]) - 1.25).abs() < 1e-12);
    }
}
