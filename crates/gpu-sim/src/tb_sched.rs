//! Thread-block scheduling policies.
//!
//! The baseline GPU dispatches TBs to SMs round-robin, skipping SMs
//! without free resources (paper §II). The paper's TLB-thrashing-aware
//! scheduler (in the `orchestrated-tlb` crate) implements the same trait
//! using per-SM TLB hit-rate probes.

/// What a TB scheduler may observe about each SM when placing a TB.
///
/// The `tlb_hits`/`tlb_accesses` pair mirrors the paper's hardware table
/// in the TB scheduler: one `<TLB_hits, TLB_total>` entry per SM, updated
/// by the SMs themselves.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SmSnapshot {
    /// TB slots currently free on this SM.
    pub free_slots: u8,
    /// L1 TLB hits accumulated by this SM.
    pub tlb_hits: u64,
    /// L1 TLB accesses accumulated by this SM.
    pub tlb_accesses: u64,
}

impl SmSnapshot {
    /// Instantaneous L1 TLB miss rate (0 when the SM has not yet issued
    /// translations, so idle SMs look attractive).
    pub fn miss_rate(&self) -> f64 {
        if self.tlb_accesses == 0 {
            0.0
        } else {
            1.0 - self.tlb_hits as f64 / self.tlb_accesses as f64
        }
    }

    /// Whether the SM can accept another TB.
    pub fn has_room(&self) -> bool {
        self.free_slots > 0
    }
}

/// A thread-block scheduling policy.
///
/// `pick_sm` is called once per TB dispatch with a snapshot of every SM;
/// it returns the index of the SM to place the TB on, or `None` if no SM
/// has room (the engine retries after the next TB completion).
pub trait TbScheduler {
    /// Chooses an SM for the next TB.
    fn pick_sm(&mut self, sms: &[SmSnapshot]) -> Option<usize>;

    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Resets internal state between kernels.
    fn reset(&mut self) {}

    /// Whether `pick_sm` depends only on slot occupancy — never on the
    /// snapshots' TLB hit-rate fields, nor on being *called* at a
    /// particular cadence — and always places a TB when some SM has
    /// room. The engine uses this to skip dispatch attempts that are
    /// provably no-ops (every SM full) and to let SMs run multi-cycle
    /// epochs while TBs are still being dispatched. Policies that adapt
    /// to TLB stats, keep per-call estimator state, or throttle
    /// placements must return `false` (the default), which keeps
    /// dispatch on the exact per-event-cycle schedule.
    fn occupancy_only(&self) -> bool {
        false
    }

    /// Validates the policy's internal bookkeeping against the hardware
    /// budget it models (e.g. the §IV-A status table holds one entry per
    /// SM — 16 for the paper's GPU — and its rate estimates must stay
    /// finite). `num_sms` is the SM count of the simulated GPU. Called by
    /// the engine's sanitizer; the default policy has no state to check.
    fn check_invariants(&self, num_sms: usize) -> Result<(), String> {
        let _ = num_sms;
        Ok(())
    }
}

/// The baseline round-robin TB scheduler.
///
/// # Example
///
/// ```
/// use gpu_sim::{RoundRobinScheduler, SmSnapshot, TbScheduler};
///
/// let mut rr = RoundRobinScheduler::new();
/// let free = SmSnapshot { free_slots: 1, ..Default::default() };
/// let sms = vec![free; 4];
/// assert_eq!(rr.pick_sm(&sms), Some(0));
/// assert_eq!(rr.pick_sm(&sms), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl RoundRobinScheduler {
    /// Creates a scheduler starting at SM 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TbScheduler for RoundRobinScheduler {
    fn pick_sm(&mut self, sms: &[SmSnapshot]) -> Option<usize> {
        if sms.is_empty() {
            return None;
        }
        for i in 0..sms.len() {
            let sm = (self.next + i) % sms.len();
            if sms[sm].has_room() {
                self.next = (sm + 1) % sms.len();
                return Some(sm);
            }
        }
        None
    }

    fn name(&self) -> &str {
        "round-robin"
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn occupancy_only(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(free: u8) -> SmSnapshot {
        SmSnapshot {
            free_slots: free,
            ..Default::default()
        }
    }

    #[test]
    fn cycles_through_sms() {
        let mut rr = RoundRobinScheduler::new();
        let sms = vec![snap(2); 3];
        assert_eq!(rr.pick_sm(&sms), Some(0));
        assert_eq!(rr.pick_sm(&sms), Some(1));
        assert_eq!(rr.pick_sm(&sms), Some(2));
        assert_eq!(rr.pick_sm(&sms), Some(0));
    }

    #[test]
    fn skips_full_sms() {
        let mut rr = RoundRobinScheduler::new();
        let sms = vec![snap(0), snap(1), snap(0)];
        assert_eq!(rr.pick_sm(&sms), Some(1));
        assert_eq!(rr.pick_sm(&sms), Some(1));
    }

    #[test]
    fn none_when_all_full() {
        let mut rr = RoundRobinScheduler::new();
        assert_eq!(rr.pick_sm(&[snap(0), snap(0)]), None);
        assert_eq!(rr.pick_sm(&[]), None);
    }

    #[test]
    fn reset_restarts_at_zero() {
        let mut rr = RoundRobinScheduler::new();
        let sms = vec![snap(1); 4];
        rr.pick_sm(&sms);
        rr.pick_sm(&sms);
        rr.reset();
        assert_eq!(rr.pick_sm(&sms), Some(0));
    }

    #[test]
    fn snapshot_miss_rate() {
        let s = SmSnapshot {
            free_slots: 1,
            tlb_hits: 25,
            tlb_accesses: 100,
        };
        assert!((s.miss_rate() - 0.75).abs() < 1e-12);
        assert_eq!(snap(1).miss_rate(), 0.0);
    }
}
