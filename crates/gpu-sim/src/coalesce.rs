//! The memory coalescing unit (step ① of the paper's Figure 1).
//!
//! The 32 per-lane addresses of a warp memory instruction are merged into
//! the minimal set of 128-byte line transactions, preserving
//! first-occurrence order. Contiguous warp accesses coalesce into one or
//! two transactions; a stride-`N` column slice or an irregular gather
//! expands into up to 32.

use workloads::LaneAccesses;
use vmem::VirtAddr;

/// Coalesces one warp access into distinct line-aligned transactions.
///
/// Returns the base virtual address of each 128-byte line touched, in
/// first-touch lane order.
///
/// # Example
///
/// ```
/// use gpu_sim::coalesce;
/// use workloads::LaneAccesses;
/// use vmem::VirtAddr;
///
/// // 32 contiguous f32 lanes span exactly one 128-byte line.
/// let acc = LaneAccesses::contiguous(VirtAddr::new(0x1000), 4, 32);
/// assert_eq!(coalesce(&acc, 128).len(), 1);
/// ```
pub fn coalesce(accesses: &LaneAccesses, line_bytes: u64) -> Vec<VirtAddr> {
    let mut lines = Vec::with_capacity(4);
    coalesce_into(accesses, line_bytes, &mut lines);
    lines
}

/// [`coalesce`] into a caller-provided buffer (cleared first).
///
/// The engine issues one coalesce per warp memory instruction — hundreds
/// of millions per run — so it reuses one scratch buffer instead of
/// allocating a fresh `Vec` each time.
pub fn coalesce_into(accesses: &LaneAccesses, line_bytes: u64, lines: &mut Vec<VirtAddr>) {
    debug_assert!(line_bytes.is_power_of_two());
    let mask = !(line_bytes - 1);
    lines.clear();
    for addr in accesses.addresses() {
        let line = VirtAddr::new(addr.raw() & mask);
        // The lane count is <= 32, so a linear scan beats a hash set.
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_floats_fully_coalesce() {
        let acc = LaneAccesses::contiguous(VirtAddr::new(0x2000), 4, 32);
        assert_eq!(coalesce(&acc, 128).len(), 1);
    }

    #[test]
    fn misaligned_contiguous_spans_two_lines() {
        let acc = LaneAccesses::contiguous(VirtAddr::new(0x2040), 4, 32);
        let lines = coalesce(&acc, 128);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], VirtAddr::new(0x2000));
        assert_eq!(lines[1], VirtAddr::new(0x2080));
    }

    #[test]
    fn broadcast_is_one_transaction() {
        let acc = LaneAccesses::broadcast(VirtAddr::new(0x1234));
        assert_eq!(coalesce(&acc, 128).len(), 1);
    }

    #[test]
    fn column_stride_explodes() {
        // Stride of 1 KiB: every lane in its own line.
        let acc = LaneAccesses::Strided {
            base: VirtAddr::new(0),
            stride: 1024,
            active_lanes: 32,
        };
        assert_eq!(coalesce(&acc, 128).len(), 32);
    }

    #[test]
    fn gather_dedups_lines() {
        let addrs = vec![
            VirtAddr::new(0x100),
            VirtAddr::new(0x104),
            VirtAddr::new(0x900),
            VirtAddr::new(0x108),
        ];
        let lines = coalesce(&LaneAccesses::Gather(addrs), 128);
        assert_eq!(
            lines,
            vec![VirtAddr::new(0x100), VirtAddr::new(0x900)]
        );
    }

    #[test]
    fn order_is_first_touch() {
        let acc = LaneAccesses::Strided {
            base: VirtAddr::new(0x1000),
            stride: -256,
            active_lanes: 3,
        };
        let lines = coalesce(&acc, 128);
        assert_eq!(
            lines,
            vec![
                VirtAddr::new(0x1000),
                VirtAddr::new(0xf00),
                VirtAddr::new(0xe00)
            ]
        );
    }
}
