//! # gpu-sim — a cycle-level GPU timing simulator with UVM address
//! translation
//!
//! This crate is the reproduction's stand-in for the gem5-gpu substrate of
//! the DAC'23 paper *Orchestrated Scheduling and Partitioning for Improved
//! Address Translation in GPUs*. It models the full execution path of the
//! paper's Figure 1:
//!
//! 1. per-SM **GTO warp scheduling** with configurable issue width,
//! 2. the **memory coalescer** merging warp lanes into 128-byte line
//!    transactions,
//! 3. a **VIPT L1 data cache probed in parallel with the per-SM private
//!    L1 TLB**,
//! 4. a shared **L2 TLB** and **L2 data cache** behind an interconnect,
//! 5. a pool of **8 shared page-table walkers** (500-cycle walks) with
//!    UVM demand paging on first touch,
//! 6. a pluggable **TB scheduler** ([`TbScheduler`]; baseline
//!    [`RoundRobinScheduler`]) and a pluggable **L1 TLB organization**
//!    ([`tlb::TranslationBuffer`]), which is how the `orchestrated-tlb`
//!    crate injects the paper's proposed mechanisms.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{GpuConfig, Simulator};
//! use workloads::{registry, Scale};
//!
//! let spec = registry().into_iter().find(|s| s.name == "bfs").unwrap();
//! let report = Simulator::new(GpuConfig::dac23_baseline())
//!     .run(spec.generate(Scale::Test, 42));
//! println!("{report}");
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesce;
mod config;
mod corun;
mod engine;
mod feed;
mod pool;
mod report;
pub mod sanitize;
mod tb_sched;
mod warp_sched;

// The data caches and cache/hierarchy configuration moved to the
// `mem-hier` crate; re-export them so downstream callers keep compiling
// against `gpu_sim::{Cache, CacheConfig, ...}` unchanged.
pub use mem_hier::{Cache, CacheConfig, CacheStats, L2Policy, LatencyBreakdown, TranslationBreakdown};

pub use coalesce::{coalesce, coalesce_into};
pub use config::GpuConfig;
pub use corun::{jain_fairness, system_throughput};
pub use engine::{set_sim_threads, sim_threads, L1TlbFactory, Simulator, WarpSchedulerFactory};
pub use report::{AppReport, SimReport, TranslationEvent};
pub use sanitize::{sanitize_enabled, set_sanitize};
pub use tb_sched::{RoundRobinScheduler, SmSnapshot, TbScheduler};
pub use warp_sched::{GtoWarpScheduler, LrrWarpScheduler, WarpScheduler, WarpView};
