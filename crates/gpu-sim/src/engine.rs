//! The cycle-level GPU timing engine.
//!
//! The engine models the execution path of the paper's Figure 1 at warp
//! granularity: per-SM GTO warp issue, the memory coalescer, per-SM VIPT
//! L1 cache + private L1 TLB, the shared L2 TLB and L2 cache behind an
//! interconnect, and the shared page-table-walker pool with UVM demand
//! paging. Time advances event-to-event (the cycle counter jumps to the
//! next cycle at which any SM can make progress), which is exact for this
//! model because all latencies are computed analytically at issue.
//!
//! # Two-phase execution and determinism
//!
//! Each event cycle runs in two phases. **Phase A** steps every
//! event-ready SM against only its own private state (its [`SmRt`], its
//! [`mem_hier::PerSmFront`] — L1 TLB + VIPT L1 data cache — and a
//! per-SM outbox), so the steps are independent and may run in parallel
//! on a persistent `std`-only worker pool (`--sim-threads N`,
//! [`set_sim_threads`]). **Phase B** drains the outboxes in SM-index
//! order on the coordinating thread, applying every shared-stage
//! request ([`mem_hier::SharedRequest`]: L2 TLB, walkers, L2/DRAM data
//! path) and patching warp completion times.
//!
//! Output is byte-identical for every `--sim-threads N` because (1) an
//! SM step becomes *deferring* at its first private L1 TLB miss — from
//! that point every translation and data access of the step is replayed
//! in phase B in original program order, so each private structure sees
//! exactly the serial operation sequence; (2) phase B applies outboxes
//! in SM-index order, so each shared structure sees exactly the serial
//! operation sequence; and (3) all per-SM accumulators are plain
//! counter sums, merged order-independently. SMs are processed in index
//! order at each event cycle and every policy is seeded/stateless, so
//! runs are bit-reproducible.

use crate::coalesce::coalesce_into;
use crate::config::GpuConfig;
use crate::feed::{KernelFeed, KernelSeq};
use crate::pool::{Job, StopReport, WorkerPool};
use crate::report::{SimReport, TranslationEvent};
use crate::sanitize::{sanitize_enabled, Sanitizer};
use crate::tb_sched::{RoundRobinScheduler, SmSnapshot, TbScheduler};
use crate::warp_sched::{GtoWarpScheduler, WarpScheduler, WarpView};
use crate::pool::ScopedExec;
use mem_hier::{
    drain_sharded, Access, DrainLane, HierarchyBuilder, PerSmFront, SharedBack, SharedRequest,
    SharedResponse, TranslationRef,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tlb::{SetAssocTlb, TranslationBuffer};
use vmem::{AddressSpace, Asid, PageSize, PhysAddr, Ppn, VirtAddr};
use workloads::format::{TraceError, TraceSource};
use workloads::{TbTrace, WarpOp, Workload};

/// Builds L1 TLBs for each SM (lets the `orchestrated-tlb` crate plug in
/// the partitioned design).
pub type L1TlbFactory = Box<dyn Fn(&GpuConfig) -> Box<dyn TranslationBuffer>>;

/// Builds one warp scheduler per SM.
pub type WarpSchedulerFactory = Box<dyn Fn() -> Box<dyn WarpScheduler>>;

/// Process-wide default for the engine's phase-A worker count, so
/// `--sim-threads` reaches every simulator built by the experiment grid
/// without threading a flag through each call site (mirrors
/// [`crate::sanitize::set_sanitize`]).
static SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default number of simulation threads used for
/// phase A of the engine's event loop (clamped to at least 1; also
/// capped at the SM count per run). Output is byte-identical for every
/// value — this is purely a wall-clock knob.
pub fn set_sim_threads(n: usize) {
    SIM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default number of simulation threads (1 = serial).
pub fn sim_threads() -> usize {
    SIM_THREADS.load(Ordering::Relaxed)
}

/// A configured simulator, ready to run workloads.
///
/// # Example
///
/// ```
/// use gpu_sim::{GpuConfig, Simulator};
/// use workloads::{registry, Scale};
///
/// let wl = registry()[8].generate(Scale::Test, 42); // gemm
/// let report = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
/// assert!(report.total_cycles > 0);
/// assert!(report.l1_tlb_hit_rate() > 0.0);
/// ```
pub struct Simulator {
    config: GpuConfig,
    tb_scheduler: Box<dyn TbScheduler>,
    l1_tlb_factory: L1TlbFactory,
    warp_scheduler_factory: WarpSchedulerFactory,
    trace_translations: bool,
    force_max_tbs: Option<u8>,
    /// Per-instance sanitizer override; `None` follows the process-wide
    /// default ([`sanitize_enabled`]).
    sanitize: Option<bool>,
    /// Per-instance phase-A worker-count override; `None` follows the
    /// process-wide default ([`sim_threads`]).
    sim_threads: Option<usize>,
    /// Persistent phase-A worker pool, created lazily on the first
    /// multi-threaded `run` and reused across kernels and runs.
    pool: Option<WorkerPool>,
}

impl Simulator {
    /// Creates a baseline simulator: round-robin TB scheduling and
    /// VPN-indexed set-associative L1 TLBs.
    pub fn new(config: GpuConfig) -> Self {
        Simulator {
            config,
            tb_scheduler: Box::new(RoundRobinScheduler::new()),
            l1_tlb_factory: Box::new(|c: &GpuConfig| {
                Box::new(SetAssocTlb::new(c.l1_tlb)) as Box<dyn TranslationBuffer>
            }),
            warp_scheduler_factory: Box::new(|| {
                Box::new(GtoWarpScheduler::new()) as Box<dyn WarpScheduler>
            }),
            trace_translations: false,
            force_max_tbs: None,
            sanitize: None,
            sim_threads: None,
            pool: None,
        }
    }

    /// Replaces the TB scheduling policy.
    pub fn with_tb_scheduler(mut self, scheduler: Box<dyn TbScheduler>) -> Self {
        self.tb_scheduler = scheduler;
        self
    }

    /// Replaces the L1 TLB organization.
    pub fn with_l1_tlb_factory(mut self, factory: L1TlbFactory) -> Self {
        self.l1_tlb_factory = factory;
        self
    }

    /// Replaces the per-SM warp scheduling policy (default: GTO per
    /// Table III).
    pub fn with_warp_scheduler_factory(mut self, factory: WarpSchedulerFactory) -> Self {
        self.warp_scheduler_factory = factory;
        self
    }

    /// Records every L1 TLB access into the report (needed by the
    /// reuse-distance characterization; costs memory).
    pub fn with_translation_trace(mut self, enable: bool) -> Self {
        self.trace_translations = enable;
        self
    }

    /// Caps concurrent TBs per SM (e.g. `Some(1)` reproduces the paper's
    /// Figure 6 "one TB at a time" study).
    pub fn with_max_concurrent_tbs(mut self, cap: Option<u8>) -> Self {
        self.force_max_tbs = cap;
        self
    }

    /// Forces the runtime invariant sanitizer on (or off) for this
    /// simulator, overriding the process-wide default (on in debug builds,
    /// `--sanitize` in release). See the [`crate::sanitize`] module docs
    /// for what is checked; the first violation panics with a state dump.
    pub fn with_sanitizer(mut self, enable: bool) -> Self {
        self.sanitize = Some(enable);
        self
    }

    /// Sets the phase-A worker count for this simulator, overriding the
    /// process-wide default ([`set_sim_threads`]). Output is
    /// byte-identical for every value.
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = Some(threads.max(1));
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs the workload to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the workload references addresses outside its own
    /// buffers or exhausts the (64 GiB default) physical pool — both are
    /// generator bugs, not simulation outcomes.
    pub fn run(&mut self, workload: Workload) -> SimReport {
        let (name, kernels, space) = workload.into_parts();
        match self.run_prepared(name, space, KernelSeq::Mem(kernels)) {
            Ok(report) => report,
            // The in-memory feed has no I/O to fail on.
            Err(e) => panic!("in-memory replay cannot fail: {e}"),
        }
    }

    /// Co-runs several workloads as concurrent address spaces sharing
    /// the GPU: app `k` runs under ASID `k` with its own page table,
    /// the merged TB stream is app-interleaved round-robin (the
    /// `corun` module's merge), and every TLB tags entries with the owning
    /// ASID. The report's [`SimReport::per_app`] carries each app's
    /// completion cycle and TLB counters; `workload` is the `a+b` merged
    /// name. Like [`Simulator::run`], output is byte-identical for any
    /// `--sim-threads N`.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or the apps disagree on page size.
    pub fn run_corun(&mut self, apps: Vec<Workload>) -> SimReport {
        let merged = crate::corun::merge_apps(apps);
        let seq = KernelSeq::CoRun {
            kernel: Box::new(merged.kernel),
            asids: merged.asids,
        };
        match self.run_prepared_multi(merged.name, merged.app_names, merged.spaces, seq) {
            Ok(report) => report,
            // The in-memory feed has no I/O to fail on.
            Err(e) => panic!("in-memory co-run replay cannot fail: {e}"),
        }
    }

    /// Runs a [`TraceSource`] to completion. A `Generated` source
    /// replays from RAM exactly like [`Simulator::run`]; a `File` source
    /// streams TB traces block by block from disk, keeping only the
    /// in-flight TBs and one decoded block resident. Reports are
    /// byte-identical between the two for the same trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if a file-backed source turns out to be
    /// corrupt or unreadable mid-replay.
    pub fn run_source(&mut self, source: TraceSource) -> Result<SimReport, TraceError> {
        match source {
            TraceSource::Generated(workload) => {
                let (name, kernels, space) = workload.into_parts();
                self.run_prepared(name, space, KernelSeq::Mem(kernels))
            }
            TraceSource::File(reader) => {
                let name = reader.workload_name().to_owned();
                let space = reader.address_space()?;
                self.run_prepared(name, space, KernelSeq::Stream(Box::new(reader)))
            }
        }
    }

    /// Solo entry into the shared run loop: one app, one address space,
    /// ASID 0.
    fn run_prepared(
        &mut self,
        name: String,
        space: AddressSpace,
        seq: KernelSeq,
    ) -> Result<SimReport, TraceError> {
        let app_names = vec![name.clone()];
        self.run_prepared_multi(name, app_names, vec![space], seq)
    }

    /// The shared run loop behind [`Simulator::run`],
    /// [`Simulator::run_source`] and [`Simulator::run_corun`]:
    /// `spaces[k]` is ASID `k`'s page table, `app_names[k]` its label in
    /// [`SimReport::per_app`].
    fn run_prepared_multi(
        &mut self,
        name: String,
        app_names: Vec<String>,
        spaces: Vec<AddressSpace>,
        seq: KernelSeq,
    ) -> Result<SimReport, TraceError> {
        let n_sms = self.config.num_sms;
        let num_apps = spaces.len();
        let sanitize = self.sanitize.unwrap_or_else(sanitize_enabled);
        let mut sanitizer = sanitize.then(|| Sanitizer::new(n_sms));
        let threads = self
            .sim_threads
            .unwrap_or_else(sim_threads)
            .clamp(1, n_sms.max(1));
        // The worker pool persists across kernels and runs; (re)build it
        // only when the requested worker count changes.
        let workers = threads.saturating_sub(1);
        if workers == 0 {
            self.pool = None;
        } else if self.pool.as_ref().map(WorkerPool::workers) != Some(workers) {
            self.pool = Some(WorkerPool::new(workers));
        }
        let l1_tlbs: Vec<Box<dyn TranslationBuffer>> = (0..n_sms)
            .map(|_| (self.l1_tlb_factory)(&self.config))
            .collect();
        // A run with no address spaces has no traffic either; the page
        // size is then irrelevant, so default rather than panic here.
        let page_size = spaces
            .first()
            .map_or(PageSize::default(), AddressSpace::page_size);
        let (mut fronts, back) =
            HierarchyBuilder::new(self.config.hierarchy()).build_split_multi(spaces, l1_tlbs);
        let mut shared = SharedState {
            back,
            page_size,
            trace: self.trace_translations.then(Vec::new),
            sanitize,
        };
        let mut report = SimReport {
            workload: name,
            scheduler: self.tb_scheduler.name().to_owned(),
            tb_placements: vec![0; n_sms],
            sm_instructions: vec![0; n_sms],
            per_app: app_names
                .into_iter()
                .enumerate()
                .map(|(k, workload)| crate::report::AppReport {
                    asid: k as u16,
                    workload,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        };
        debug_assert_eq!(report.per_app.len(), num_apps, "one app label per space");

        let mut cycle: u64 = 0;
        for kernel_idx in 0..seq.len() {
            let mut feed = seq.feed(kernel_idx)?;
            let start = cycle;
            cycle = run_kernel(
                &self.config,
                &mut self.tb_scheduler,
                &self.warp_scheduler_factory,
                self.pool.as_mut(),
                self.force_max_tbs,
                &mut feed,
                kernel_idx as u16,
                cycle,
                &mut fronts,
                &mut shared,
                &mut report,
                &mut sanitizer,
            )?;
            report
                .kernel_cycles
                .push((feed.name().to_owned(), cycle - start));
        }

        report.total_cycles = cycle;
        report.l1_tlb = fronts.iter().map(|f| f.tlb().stats()).collect();
        report.l2_tlb = shared.back.l2_tlb_stats();
        report.l1_cache = fronts.iter().map(PerSmFront::l1_cache_stats).collect();
        report.l2_cache = shared.back.l2_cache_stats();
        report.walker = shared.back.walker_stats();
        report.demand_faults = shared.back.demand_faults();
        report.transactions = fronts.iter().map(PerSmFront::transactions).sum();
        // Memo fast-path hits across every TLB in the hierarchy. The
        // lookup streams (and therefore the memo hit/miss pattern) are
        // thread-count invariant, so this counter is too.
        report.fastpath_hits = fronts
            .iter()
            .map(|f| f.tlb().fastpath_hits())
            .chain(shared.back.l2_slices().iter().map(|s| s.fastpath_hits()))
            .sum();
        report.latency = fronts
            .iter()
            .fold(*shared.back.breakdown(), |a, f| a + *f.breakdown());
        report.translation_trace = shared.trace.take().unwrap_or_default();
        // Per-app TLB counters: order-independent sums over fronts and
        // slices, keyed by ASID (so they are `--sim-threads` invariant
        // like every other accumulator).
        for front in &fronts {
            for (asid, stats) in front.tlb().stats_by_asid() {
                if let Some(app) = report.per_app.get_mut(asid.index()) {
                    app.l1_tlb += stats;
                }
            }
        }
        for (asid, stats) in shared.back.l2_tlb_stats_by_asid() {
            if let Some(app) = report.per_app.get_mut(asid.index()) {
                app.l2_tlb = stats;
            }
        }
        Ok(report)
    }
}

/// The shared half of the run: the order-sensitive back of the memory
/// hierarchy plus the engine-side concerns that live on the coordinator
/// (translation tracing, sanitizer enablement).
struct SharedState {
    back: SharedBack,
    page_size: PageSize,
    trace: Option<Vec<TranslationEvent>>,
    /// Run full L1 TLB invariant checks after every fill.
    sanitize: bool,
}

/// Everything one SM touches during phase A: its runtime state, its
/// private slice of the memory hierarchy, and the per-cycle buffers the
/// coordinator drains in phase B. Boxed so the worker-pool channels move
/// a pointer, not the struct.
pub(crate) struct Lane {
    pub(crate) sm_idx: usize,
    pub(crate) sm: SmRt,
    front: PerSmFront,
    outbox: Outbox,
    scratch: IssueScratch,
    /// Translation-trace events of this kernel, tagged with their event
    /// cycle. Kept lane-local for the whole kernel (a lane may run many
    /// cycles ahead on a worker) and merged into the global trace at
    /// kernel end by a stable sort on cycle — concatenation in SM-index
    /// order makes ties resolve exactly like the serial push order.
    trace: Vec<(u64, TranslationEvent)>,
    /// Instructions issued this kernel (merged into the report at kernel
    /// end; pure sums, so the merge is order-independent).
    instructions: u64,
    /// Per-app completion bound: the latest `ready_at` of any retired
    /// warp of each ASID on this SM. Merged into the report by
    /// order-independent max at kernel end, so co-run per-app cycles
    /// are `--sim-threads` invariant.
    app_done: Vec<u64>,
}

/// The phase-A -> phase-B boundary for one SM and one event cycle.
#[derive(Default)]
struct Outbox {
    entries: Vec<OutboxEntry>,
    /// Translate requests pushed so far (their phase-B results land at
    /// the matching index of the per-lane `resolved` scratch).
    n_translates: u32,
    /// `Some(issue_limited)` when phase A left `next_event` stale because
    /// deferred completions may move it; phase B recomputes after
    /// patching warps.
    recompute: Option<bool>,
}

impl Outbox {
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queues a translate request; returns its index in the resolved-
    /// translations sequence.
    fn push_translate(&mut self, req: SharedRequest) -> u32 {
        let idx = self.n_translates;
        self.n_translates += 1;
        self.entries.push(OutboxEntry { req, warp: None });
        idx
    }

    /// Queues a data request whose completion cycle must fold into
    /// `warp`'s ready time.
    fn push_data(&mut self, req: SharedRequest, warp: usize) {
        self.entries.push(OutboxEntry {
            req,
            warp: Some(warp),
        });
    }
}

struct OutboxEntry {
    req: SharedRequest,
    /// Index into `SmRt::warps` whose `ready_at` absorbs the completion
    /// cycle (data requests); `None` for pure translations.
    warp: Option<usize>,
}

/// Per-kernel context shipped to the pool once (inside an `Arc`), so
/// worker threads need no borrows into the simulator.
pub(crate) struct RoundCtx {
    pub(crate) config: GpuConfig,
    pub(crate) kernel_idx: u16,
    pub(crate) page_size: PageSize,
    pub(crate) trace_on: bool,
}

/// How far one phase-A chain may run before syncing with the
/// coordinator.
#[derive(Copy, Clone)]
pub(crate) struct ChainSpec {
    /// Exclusive horizon: the chain stops (without stepping) once the
    /// lane's `next_event` reaches this cycle. Per-cycle rounds use
    /// `frontier + 1` (exactly one step); epochs use a wide window.
    pub(crate) epoch_end: u64,
    /// Stop after any step that frees a TB slot, so the coordinator can
    /// dispatch at the retire cycle exactly as the serial engine does.
    /// Only set while undispatched TBs remain.
    pub(crate) stop_on_retire: bool,
    /// Lanes that run to the horizon (or go idle) may stay parked on
    /// their worker; only a [`StopReport`] comes home.
    pub(crate) park: bool,
}

/// Why [`run_chain`] returned.
pub(crate) struct ChainOutcome {
    /// Cycle of the last `phase_a` step executed (0 if none ran).
    pub(crate) last_step: u64,
    /// Stopped with a non-empty outbox awaiting phase B at `last_step`.
    pub(crate) needs_phase_b: bool,
    /// The last step freed a TB slot (reported only under
    /// `stop_on_retire`).
    pub(crate) retired_tb: bool,
}

/// Runs one lane's private event chain: repeated `phase_a` steps at the
/// lane's own `next_event` cycles.
///
/// This is exact because each SM's stepping schedule is entirely
/// self-determined: the serial engine steps SM *i* at cycle *c* iff SM
/// *i*'s own `next_event` equals *c* (after every step or phase-B patch
/// the recomputed `next_event` is strictly in the future, so the global
/// event cycle is always the minimum over per-SM private chains). A
/// chain therefore only has to stop where cross-SM coupling can reach
/// it: its first shared request (phase-B feedback patches this lane's
/// warps), a TB retire while dispatch is still live (placement happens
/// at the retire cycle), or the epoch horizon.
pub(crate) fn run_chain(ctx: &RoundCtx, spec: &ChainSpec, lane: &mut Lane) -> ChainOutcome {
    let mut last_step = 0u64;
    loop {
        let e = lane.sm.next_event();
        if e >= spec.epoch_end {
            return ChainOutcome {
                last_step,
                needs_phase_b: false,
                retired_tb: false,
            };
        }
        let free_before = lane.sm.free_slots.len();
        phase_a(
            &ctx.config,
            e,
            ctx.kernel_idx,
            ctx.page_size,
            ctx.trace_on,
            lane,
        );
        last_step = e;
        let retired_tb = spec.stop_on_retire && lane.sm.free_slots.len() > free_before;
        let needs_phase_b = !lane.outbox.is_empty();
        if needs_phase_b || retired_tb {
            return ChainOutcome {
                last_step,
                needs_phase_b,
                retired_tb,
            };
        }
    }
}

/// The engine's per-round sharding policy, derived from
/// [`GpuConfig::shard_threshold`] and [`GpuConfig::shard_lane_overhead`].
///
/// A phase-B round *meets* the policy when its deferred batch is large
/// enough to amortize both the fixed drain setup (`threshold`) and the
/// per-participating-lane cost (`lane_overhead` requests per lane).
/// Whether the engine then actually shards additionally requires more
/// than one executor — but the policy predicate itself never looks at
/// the thread count, so the [`SimReport::sharded_rounds`] counter it
/// feeds is identical for every `--sim-threads N`.
#[derive(Copy, Clone)]
struct ShardPolicy {
    threshold: usize,
    lane_overhead: usize,
}

impl ShardPolicy {
    fn of(config: &GpuConfig) -> Self {
        ShardPolicy {
            threshold: config.shard_threshold,
            lane_overhead: config.shard_lane_overhead,
        }
    }

    /// Thread-count-independent half of the shard decision.
    fn met(&self, total: usize, participants: usize) -> bool {
        self.threshold > 0 && total >= self.threshold + participants * self.lane_overhead
    }
}

/// Coordinator-side view of one lane's whereabouts and settled state.
#[derive(Copy, Clone, Default)]
struct LaneTrack {
    /// Settled `next_event` (authoritative only while the lane is away;
    /// home lanes are read live).
    next_event: u64,
    /// Reported chain stop awaiting frontier processing.
    pending: Option<PendingStop>,
    /// The lane object is on a worker (in flight or parked).
    away: bool,
}

#[derive(Copy, Clone)]
struct PendingStop {
    cycle: u64,
    needs_phase_b: bool,
    retired_tb: bool,
}

/// One dispatch pass: places TBs while an eligible SM has a free slot.
///
/// A lane is dispatch-visible when it is home with no unprocessed stop
/// — i.e. its state is settled at the dispatch cycle. Lanes that ran
/// ahead (parked, or stopped at a later frontier) are presented as full:
/// while TBs remain undispatched every SM stays saturated except at its
/// own retire stops, so a ran-ahead lane really is full for the whole
/// window and the synthesized snapshot equals its serial-state snapshot.
#[allow(clippy::too_many_arguments)]
fn dispatch_tbs(
    lanes: &mut [Option<Box<Lane>>],
    track: &[LaneTrack],
    tb_scheduler: &mut Box<dyn TbScheduler>,
    feed: &mut KernelFeed<'_>,
    next_tb: &mut usize,
    cycle: u64,
    placements: &mut [u32],
    snaps: &mut Vec<SmSnapshot>,
) -> Result<(), TraceError> {
    while *next_tb < feed.tb_count() {
        // Cheap pre-check before building snapshots: dispatch can only
        // proceed when some dispatch-visible lane has a free slot —
        // exactly the `has_room` test below, read straight off the
        // lanes. Most calls land here with every SM saturated, so this
        // skips the per-SM stats snapshot on the hot path.
        let any_room = lanes.iter().enumerate().any(|(i, slot)| {
            !track[i].away
                && track[i].pending.is_none()
                && slot.as_ref().is_some_and(|l| !l.sm.free_slots.is_empty())
        });
        if !any_room {
            break;
        }
        snaps.clear();
        for (i, slot) in lanes.iter().enumerate() {
            let visible = !track[i].away && track[i].pending.is_none();
            snaps.push(match slot {
                Some(lane) if visible => {
                    let stats = lane.front.tlb().stats();
                    SmSnapshot {
                        free_slots: lane.sm.free_slots.len() as u8,
                        tlb_hits: stats.hits,
                        tlb_accesses: stats.accesses(),
                    }
                }
                _ => SmSnapshot::default(),
            });
        }
        if !snaps.iter().any(SmSnapshot::has_room) {
            break;
        }
        let Some(target) = tb_scheduler.pick_sm(snaps) else {
            break;
        };
        assert!(
            snaps[target].has_room(),
            "scheduler picked a full SM ({target})"
        );
        let Some(lane) = lanes[target].as_mut() else {
            unreachable!("dispatch-visible lanes are home")
        };
        let asid = feed.asid_of(*next_tb);
        let tb = feed.tb(*next_tb)?;
        lane.sm.place_tb(tb, *next_tb as u32, cycle, asid);
        placements[target] += 1;
        *next_tb += 1;
    }
    Ok(())
}

/// Simulates one kernel launch; returns the cycle at which it completes.
///
/// Runs per-event-cycle rounds (the exact serial schedule) until epoch
/// batching is provably transparent — the sanitizer is off (its
/// per-cycle hook needs every lane home each event cycle) and either
/// every TB is dispatched or the TB scheduler is occupancy-only — then
/// switches to multi-cycle epochs where lanes run private chains on the
/// persistent pool and only coordination frontiers (shared requests, TB
/// retires) sync with the coordinator.
#[allow(clippy::too_many_arguments)]
fn run_kernel(
    config: &GpuConfig,
    tb_scheduler: &mut Box<dyn TbScheduler>,
    warp_scheduler_factory: &WarpSchedulerFactory,
    mut pool: Option<&mut WorkerPool>,
    force_max_tbs: Option<u8>,
    feed: &mut KernelFeed<'_>,
    kernel_idx: u16,
    start_cycle: u64,
    fronts: &mut Vec<PerSmFront>,
    shared: &mut SharedState,
    report: &mut SimReport,
    sanitizer: &mut Option<Sanitizer>,
) -> Result<u64, TraceError> {
    let n_sms = config.num_sms;
    let tb_count = feed.tb_count();
    // Occupancy: the compile-time TB limit, the hardware cap, and the
    // thread capacity all bound concurrency.
    let by_threads = (config.max_threads_per_sm / feed.threads_per_tb().max(1)).max(1) as u8;
    let mut max_tbs = feed
        .max_concurrent_tbs_per_sm()
        .min(config.max_concurrent_tbs)
        .min(by_threads);
    if let Some(cap) = force_max_tbs {
        max_tbs = max_tbs.min(cap);
    }

    let mut lanes: Vec<Option<Box<Lane>>> = fronts
        .drain(..)
        .enumerate()
        .map(|(sm_idx, mut front)| {
            front.tlb_mut().set_concurrent_tbs(max_tbs);
            if config.flush_l1_tlb_on_kernel_launch {
                front.tlb_mut().flush();
            }
            Some(Box::new(Lane {
                sm_idx,
                sm: SmRt::new(max_tbs, warp_scheduler_factory()),
                front,
                outbox: Outbox::default(),
                scratch: IssueScratch::default(),
                trace: Vec::new(),
                instructions: 0,
                app_done: vec![0; report.per_app.len().max(1)],
            }))
        })
        .collect();
    tb_scheduler.reset();

    let trace_on = shared.trace.is_some();
    let ctx = Arc::new(RoundCtx {
        config: config.clone(),
        kernel_idx,
        page_size: shared.page_size,
        trace_on,
    });
    let workers = pool.as_ref().map_or(0, |p| p.workers());
    let occupancy_only = tb_scheduler.occupancy_only();

    let mut next_tb = 0usize;
    let mut cycle = start_cycle;
    let mut last_step_max = 0u64;
    let mut ready: Vec<usize> = Vec::new();
    let mut resolved: Vec<(Ppn, u64)> = Vec::new();
    let mut snaps: Vec<SmSnapshot> = Vec::with_capacity(n_sms);
    let mut track: Vec<LaneTrack> = vec![LaneTrack::default(); n_sms];
    // Owner assignment for epoch parking: lane i lives on executor
    // `i % (workers + 1)`; executor index `workers` is the coordinator.
    let executors = workers + 1;
    // Sharded phase-B drain: scoped executor sized like phase A, plus
    // per-lane request/response buffers recycled across rounds.
    let exec = ScopedExec {
        threads: executors,
        chunk: config.shard_chunk,
    };
    let policy = ShardPolicy::of(config);
    let epoch_cycles = config.epoch_cycles.max(1);
    let mut shard_scratch: ShardScratch = Vec::new();

    // --- Per-event-cycle rounds (the serial schedule, exactly) -------
    let mut kernel_over = false;
    loop {
        // Epochs become transparent once the per-cycle-only couplings
        // are gone: the sanitizer's per-cycle hook, and per-event-cycle
        // dispatch attempts that a stats-driven scheduler could observe.
        if workers > 0 && sanitizer.is_none() && (occupancy_only || next_tb >= tb_count) {
            break;
        }
        dispatch_tbs(
            &mut lanes,
            &track,
            tb_scheduler,
            feed,
            &mut next_tb,
            cycle,
            &mut report.tb_placements,
            &mut snaps,
        )?;

        // Next cycle at which any SM can make progress.
        let Some(event) = lanes
            .iter()
            .flatten()
            .map(|l| l.sm.next_event())
            .min()
            .filter(|&e| e < u64::MAX)
        else {
            debug_assert!(next_tb >= tb_count, "idle GPU with pending TBs");
            kernel_over = true;
            break;
        };
        cycle = cycle.max(event);

        ready.clear();
        ready.extend(lanes.iter().enumerate().filter_map(|(i, slot)| {
            slot.as_ref()
                .filter(|l| l.sm.next_event() <= cycle)
                .map(|_| i)
        }));

        // Phase A: step every ready SM against private state only.
        let spec = ChainSpec {
            epoch_end: cycle + 1,
            stop_on_retire: false,
            park: false,
        };
        if workers == 0 || ready.len() <= 1 {
            for &i in &ready {
                if let Some(lane) = lanes[i].as_mut() {
                    run_chain(&ctx, &spec, lane);
                }
            }
        } else {
            let pool = pool.as_mut().expect("workers > 0 implies a pool"); // simlint: allow(hot-unwrap, reason = "workers is derived from the pool's own size")
            let per = ready.len().div_ceil(executors);
            let mut sent = 0usize;
            for w in 0..workers {
                let lo = w * per;
                let hi = ((w + 1) * per).min(ready.len());
                if lo >= hi {
                    break;
                }
                let mut moved = pool.buffer();
                moved.extend(ready[lo..hi].iter().map(|&i| {
                    let Some(lane) = lanes[i].take() else {
                        unreachable!("ready lane present before phase A")
                    };
                    (i, lane)
                }));
                pool.send(
                    w,
                    Job::Run {
                        ctx: Arc::clone(&ctx),
                        spec,
                        lanes: moved,
                        resume: false,
                    },
                );
                sent += 1;
            }
            // Coordinator takes the tail chunk, overlapping with the
            // workers before blocking on their results.
            for &i in &ready[(sent * per).min(ready.len())..] {
                if let Some(lane) = lanes[i].as_mut() {
                    run_chain(&ctx, &spec, lane);
                }
            }
            let mut panicked: Option<String> = None;
            for _ in 0..sent {
                let done = pool.recv();
                for (i, lane) in done.lanes {
                    lanes[i] = Some(lane);
                }
                if panicked.is_none() {
                    panicked = done.panicked;
                }
            }
            if let Some(msg) = panicked {
                panic!("{msg}");
            }
        }

        // Phase B: drain outboxes in SM-index order — every shared
        // structure sees the serial operation order exactly (large
        // rounds reproduce it slice-parallel via the sharded drain).
        drain_phase_b(
            &mut lanes,
            &mut |_| true,
            shared,
            cycle,
            &mut resolved,
            &mut shard_scratch,
            &exec,
            policy,
            &mut report.sharded_rounds,
        );

        if let Some(san) = sanitizer.as_mut() {
            let tlbs: Vec<&dyn TranslationBuffer> =
                lanes.iter().flatten().map(|l| l.front.tlb()).collect();
            san.after_cycle(cycle, &tlbs, &**tb_scheduler, n_sms);
        }
    }

    // --- Epoch rounds ------------------------------------------------
    if !kernel_over {
        let pool = pool.expect("epoch mode requires workers"); // simlint: allow(hot-unwrap, reason = "loop above only breaks into epoch mode when workers > 0")
        loop {
            // Epoch boundary: nothing in flight, every lane settled.
            // One dispatch attempt — between frontiers the serial
            // engine's attempts are provably no-ops (occupancy-only
            // scheduler, all SMs saturated), so this single attempt
            // covers the kernel-start fill and the post-frontier state.
            dispatch_tbs(
                &mut lanes,
                &track,
                tb_scheduler,
                feed,
                &mut next_tb,
                cycle,
                &mut report.tb_placements,
                &mut snaps,
            )?;
            let Some(start) = (0..n_sms)
                .map(|i| match &lanes[i] {
                    Some(lane) => lane.sm.next_event(),
                    None => track[i].next_event,
                })
                .min()
                .filter(|&e| e < u64::MAX)
            else {
                debug_assert!(next_tb >= tb_count, "idle GPU with pending TBs");
                break;
            };
            cycle = cycle.max(start);
            let spec = ChainSpec {
                epoch_end: cycle.saturating_add(epoch_cycles),
                stop_on_retire: next_tb < tb_count,
                park: true,
            };

            // Launch: wake runnable parked lanes, ship runnable home
            // lanes to their owners, run the coordinator's share inline.
            let mut outstanding = 0usize;
            for w in 0..workers {
                let mut moved = pool.buffer();
                let mut parked_runnable = false;
                for i in (0..n_sms).filter(|i| i % executors == w) {
                    if track[i].away {
                        parked_runnable |= track[i].next_event < spec.epoch_end;
                    } else if let Some(lane) = &lanes[i] {
                        if lane.sm.next_event() < spec.epoch_end {
                            let Some(lane) = lanes[i].take() else {
                                unreachable!("checked above")
                            };
                            track[i].away = true;
                            moved.push((i, lane));
                        }
                    }
                }
                if moved.is_empty() && !parked_runnable {
                    pool.recycle(moved);
                    continue;
                }
                pool.send(
                    w,
                    Job::Run {
                        ctx: Arc::clone(&ctx),
                        spec,
                        lanes: moved,
                        resume: true,
                    },
                );
                outstanding += 1;
            }
            for i in (0..n_sms).filter(|i| i % executors == workers) {
                let Some(lane) = lanes[i].as_mut() else { continue };
                if lane.sm.next_event() >= spec.epoch_end {
                    continue;
                }
                let outcome = run_chain(&ctx, &spec, lane);
                last_step_max = last_step_max.max(outcome.last_step);
                track[i].pending = (outcome.needs_phase_b || outcome.retired_tb).then_some(
                    PendingStop {
                        cycle: outcome.last_step,
                        needs_phase_b: outcome.needs_phase_b,
                        retired_tb: outcome.retired_tb,
                    },
                );
            }

            // Frontier rounds: drain stops in global cycle order.
            loop {
                let mut panicked: Option<String> = None;
                while outstanding > 0 {
                    let done = pool.recv();
                    outstanding -= 1;
                    for (i, lane) in done.lanes {
                        lanes[i] = Some(lane);
                        track[i].away = false;
                    }
                    for r in &done.reports {
                        absorb_report(r, &mut track, &mut last_step_max);
                    }
                    if panicked.is_none() {
                        panicked = done.panicked;
                    }
                }
                if let Some(msg) = panicked {
                    panic!("{msg}");
                }

                let Some(frontier) = track
                    .iter()
                    .filter_map(|t| t.pending.map(|p| p.cycle))
                    .min()
                else {
                    break; // epoch exhausted: everyone parked or settled
                };
                cycle = cycle.max(frontier);
                drain_phase_b(
                    &mut lanes,
                    &mut |i| {
                        track[i]
                            .pending
                            .is_some_and(|p| p.cycle == frontier && p.needs_phase_b)
                    },
                    shared,
                    frontier,
                    &mut resolved,
                    &mut shard_scratch,
                    &exec,
                    policy,
                    &mut report.sharded_rounds,
                );
                let mut any_retired = false;
                for t in track.iter_mut() {
                    let Some(p) = t.pending else { continue };
                    if p.cycle != frontier {
                        continue;
                    }
                    any_retired |= p.retired_tb;
                    t.pending = None;
                }
                if any_retired && next_tb < tb_count {
                    dispatch_tbs(
                        &mut lanes,
                        &track,
                        tb_scheduler,
                        feed,
                        &mut next_tb,
                        frontier,
                        &mut report.tb_placements,
                        &mut snaps,
                    )?;
                }

                // Relaunch every settled home lane with events left in
                // this epoch (just-drained lanes, plus any lane the
                // dispatch above woke).
                for w in 0..workers {
                    let mut moved = pool.buffer();
                    for i in (0..n_sms).filter(|i| i % executors == w) {
                        if track[i].away || track[i].pending.is_some() {
                            continue;
                        }
                        let Some(lane) = &lanes[i] else { continue };
                        if lane.sm.next_event() < spec.epoch_end {
                            let Some(lane) = lanes[i].take() else {
                                unreachable!("checked above")
                            };
                            track[i].away = true;
                            moved.push((i, lane));
                        }
                    }
                    if moved.is_empty() {
                        pool.recycle(moved);
                        continue;
                    }
                    pool.send(
                        w,
                        Job::Run {
                            ctx: Arc::clone(&ctx),
                            spec,
                            lanes: moved,
                            resume: false,
                        },
                    );
                    outstanding += 1;
                }
                for i in (0..n_sms).filter(|i| i % executors == workers) {
                    if track[i].pending.is_some() {
                        continue;
                    }
                    let Some(lane) = lanes[i].as_mut() else { continue };
                    if lane.sm.next_event() >= spec.epoch_end {
                        continue;
                    }
                    let outcome = run_chain(&ctx, &spec, lane);
                    last_step_max = last_step_max.max(outcome.last_step);
                    track[i].pending = (outcome.needs_phase_b || outcome.retired_tb)
                        .then_some(PendingStop {
                            cycle: outcome.last_step,
                            needs_phase_b: outcome.needs_phase_b,
                            retired_tb: outcome.retired_tb,
                        });
                }
            }
        }

        // Recall parked lanes so kernel-end checks and stat merges see
        // every lane.
        let mut recalls = 0usize;
        for w in 0..workers {
            if (0..n_sms).any(|i| i % executors == w && track[i].away) {
                pool.send(w, Job::Recall);
                recalls += 1;
            }
        }
        for _ in 0..recalls {
            let done = pool.recv();
            for (i, lane) in done.lanes {
                lanes[i] = Some(lane);
                track[i].away = false;
            }
        }
    }
    cycle = cycle.max(last_step_max);

    if let Some(san) = sanitizer.as_mut() {
        let tlbs: Vec<&dyn TranslationBuffer> =
            lanes.iter().flatten().map(|l| l.front.tlb()).collect();
        san.end_of_kernel(
            cycle,
            &tlbs,
            shared.back.l2_slices(),
            report.per_app.len().max(1),
        );
        for lane in lanes.iter().flatten() {
            if let Err(e) = lane.front.check_accounting() {
                Sanitizer::accounting_failure(
                    &format!("sm {} mem-hier front", lane.sm_idx),
                    cycle,
                    e,
                );
            }
        }
        if let Err(e) = shared.back.check_accounting() {
            Sanitizer::accounting_failure("mem-hier shared back", cycle, e);
        }
    }

    // Merge lane-local traces: concatenate in SM-index order, then a
    // stable sort on cycle reproduces the serial (cycle, SM, push-seq)
    // global order.
    if let Some(trace) = shared.trace.as_mut() {
        let mut tagged: Vec<(u64, TranslationEvent)> = Vec::new();
        for slot in &mut lanes {
            if let Some(lane) = slot.as_mut() {
                tagged.append(&mut lane.trace);
            }
        }
        tagged.sort_by_key(|(c, _)| *c);
        trace.extend(tagged.into_iter().map(|(_, e)| e));
    }

    for slot in &mut lanes {
        let Some(lane) = slot.take() else {
            unreachable!("lanes are home after the kernel loop")
        };
        debug_assert!(lane.outbox.is_empty() && lane.trace.is_empty());
        report.instructions += lane.instructions;
        report.sm_instructions[lane.sm_idx] += lane.instructions;
        for (k, &done) in lane.app_done.iter().enumerate() {
            if let Some(app) = report.per_app.get_mut(k) {
                app.cycles = app.cycles.max(done);
            }
        }
        fronts.push(lane.front);
    }
    Ok(cycle)
}

/// Folds one chain stop report into the coordinator's tracking.
fn absorb_report(r: &StopReport, track: &mut [LaneTrack], last_step_max: &mut u64) {
    *last_step_max = (*last_step_max).max(r.last_step);
    let t = &mut track[r.lane];
    t.next_event = r.next_event;
    if r.parked {
        t.away = true;
        t.pending = None;
    } else if r.needs_phase_b || r.retired_tb {
        t.pending = Some(PendingStop {
            cycle: r.last_step,
            needs_phase_b: r.needs_phase_b,
            retired_tb: r.retired_tb,
        });
    } else {
        t.pending = None;
    }
}


/// Phase A for one SM: retire finished warps/TBs, then issue up to
/// `issue_width` warp instructions at `cycle`, touching only the lane's
/// private state.
///
/// Until the first private L1 TLB miss, translations and data probes run
/// eagerly (hits complete here). From that miss on the step *defers*:
/// every remaining translation and data access of the step is pushed to
/// the outbox in program order and replayed by phase B — including
/// private L1 probes — so each private structure's operation sequence is
/// exactly the serial engine's (eager prefix + in-order deferred
/// suffix).
fn phase_a(
    config: &GpuConfig,
    cycle: u64,
    kernel_idx: u16,
    page_size: PageSize,
    trace_on: bool,
    lane: &mut Lane,
) {
    debug_assert!(lane.sm.next_event() <= cycle, "phase A on an idle lane");
    debug_assert!(lane.outbox.is_empty(), "phase B must drain the outbox");
    let sm_idx = lane.sm_idx;
    let sm = &mut lane.sm;
    let front = &mut lane.front;
    let outbox = &mut lane.outbox;

    // Retire warps whose final op has completed; free TB slots. The
    // whole scan is skipped while `earliest_done` proves no finished
    // warp can be due yet — a skipped scan would have retired nothing,
    // so the serial decision sequence is unchanged.
    if sm.earliest_done <= cycle {
        sm.earliest_done = u64::MAX;
        for w in 0..sm.warps.len() {
            let warp = &mut sm.warps[w];
            if warp.retired || warp.op_idx < warp.ops.len() {
                continue;
            }
            if warp.ready_at <= cycle {
                warp.retired = true;
                sm.retired_warps += 1;
                let slot = warp.tb_slot as usize;
                let asid = warp.asid;
                let done = warp.ready_at;
                lane.app_done[asid.index()] = lane.app_done[asid.index()].max(done);
                sm.slot_live_warps[slot] -= 1;
                if sm.slot_live_warps[slot] == 0 {
                    sm.free_slots.push(slot as u8);
                    front.tlb_mut().on_tb_finish(asid, slot as u8);
                }
            } else {
                let due = warp.ready_at;
                sm.earliest_done = sm.earliest_done.min(due);
            }
        }
    }
    if sm.retired_warps > 128 {
        sm.compact();
    }

    // GTO issue: stay greedy on the last-issued warp, then oldest. The
    // scheduler views are built once for the cycle and patched in place
    // per issue (only the issued warp changes between picks).
    let mut deferred = false;
    let mut issued = 0u32;
    sm.build_views(cycle);
    while issued < config.issue_width {
        let pick = sm.pick();
        let Some((w, view_idx)) = pick else { break };
        let warp = &mut sm.warps[w];
        let op = &warp.ops[warp.op_idx];
        warp.op_idx += 1;
        lane.instructions += 1;
        match op {
            WarpOp::Compute { cycles } => {
                warp.ready_at = cycle + (*cycles as u64).max(1);
            }
            WarpOp::Load(acc) | WarpOp::Store(acc) => {
                let write = op.is_store();
                let mut done = cycle + 1;
                // Per-instruction TLB coalescing (Power et al.,
                // HPCA'14, the paper's reference [19]): one L1 TLB
                // lookup per *distinct page* the warp instruction
                // touches; the per-line transactions below share the
                // translation.
                let IssueScratch {
                    lines,
                    translations,
                } = &mut lane.scratch;
                translations.clear();
                let mut lookups = 0u64;
                coalesce_into(acc, config.l1_cache.line_bytes as u64, lines);
                for (i, &line) in lines.iter().enumerate() {
                    let vpn = line.vpn(page_size);
                    let tref = match translations.iter().find(|(v, _)| *v == vpn) {
                        Some(&(_, t)) => t,
                        None => {
                            // Translation lookups leave one per cycle,
                            // whether served eagerly or deferred.
                            let at = cycle + lookups;
                            lookups += 1;
                            if trace_on {
                                lane.trace.push((
                                    cycle,
                                    TranslationEvent {
                                        sm: sm_idx as u8,
                                        tb_global: warp.tb_global,
                                        warp: warp.warp_in_tb,
                                        kernel: kernel_idx,
                                        vpn: vpn.raw(),
                                    },
                                ));
                            }
                            let acc = Access {
                                at,
                                sm: sm_idx,
                                asid: warp.asid,
                                tb_slot: warp.tb_slot,
                                va: line,
                                vpn,
                                page_size,
                            };
                            let t = if deferred {
                                TransRef::Pending(
                                    outbox.push_translate(SharedRequest::TranslateReplay { acc }),
                                )
                            } else {
                                let l1 = front.probe_translate(&acc);
                                match l1.ppn {
                                    Some(ppn) => TransRef::Done(ppn, l1.ready_at),
                                    None => {
                                        deferred = true;
                                        TransRef::Pending(outbox.push_translate(
                                            SharedRequest::TranslateMiss {
                                                acc,
                                                l1_ready_at: l1.ready_at,
                                                l1_service_cycles: l1.service_cycles,
                                            },
                                        ))
                                    }
                                }
                            };
                            translations.push((vpn, t));
                            t
                        }
                    };
                    // Transactions leave the LSU one per cycle.
                    let min_start = cycle + i as u64;
                    let page_offset = line.page_offset(page_size);
                    match tref {
                        TransRef::Done(ppn, ready) if !deferred => {
                            let start = ready.max(min_start);
                            let pa = PhysAddr::from_parts(ppn, page_offset, page_size);
                            match front.probe_data(start, pa, write) {
                                Some(d) => done = done.max(d),
                                None => {
                                    outbox.push_data(SharedRequest::DataBack { start, pa, write }, w)
                                }
                            }
                        }
                        // Once deferring, even resolved lines replay in
                        // phase B so the private L1 data cache sees its
                        // probes in program order.
                        TransRef::Done(ppn, ready) => outbox.push_data(
                            SharedRequest::DataReplay {
                                translation: TranslationRef::Resolved { ppn, ready_at: ready },
                                min_start,
                                page_offset,
                                write,
                            },
                            w,
                        ),
                        TransRef::Pending(idx) => outbox.push_data(
                            SharedRequest::DataReplay {
                                translation: TranslationRef::Pending(idx),
                                min_start,
                                page_offset,
                                write,
                            },
                            w,
                        ),
                    }
                }
                // Deferred completions fold in during phase B; every one
                // of them is >= cycle + 1, so the warp's not-ready status
                // for the rest of this cycle is already final.
                warp.ready_at = done;
            }
        }
        let finished = warp.op_idx >= warp.ops.len();
        if finished {
            // The warp just issued its final op: it becomes retirable at
            // its completion (phase B only ever moves that later, so the
            // bound stays conservative).
            let due = warp.ready_at;
            sm.earliest_done = sm.earliest_done.min(due);
        }
        sm.after_issue(view_idx, finished);
        issued += 1;
    }

    // `issue_limited` licenses the `recompute_next_event` short-circuit,
    // which requires at least one issue this cycle — guaranteed by
    // `issued >= issue_width` only when the width is non-zero.
    let issue_limited = config.issue_width > 0 && issued >= config.issue_width;
    if outbox.is_empty() {
        sm.recompute_next_event(cycle, issue_limited);
    } else {
        // next_event depends on deferred completion cycles; phase B
        // recomputes after patching the warps.
        outbox.recompute = Some(issue_limited);
    }
}

/// Phase B for one SM: apply its deferred shared-stage requests in push
/// order against the shared back (and its own front for replays), patch
/// warp completion times, then settle `next_event`.
fn phase_b(lane: &mut Lane, shared: &mut SharedState, cycle: u64, resolved: &mut Vec<(Ppn, u64)>) {
    if lane.outbox.is_empty() {
        debug_assert!(lane.outbox.recompute.is_none());
        return;
    }
    resolved.clear();
    let front = &mut lane.front;
    for entry in lane.outbox.entries.drain(..) {
        let resp = shared.back.apply(front, &entry.req, resolved);
        if let Some(ppn) = resp.ppn {
            resolved.push((ppn, resp.ready_at));
            // Any resolution below the L1 filled the SM's L1 TLB (the
            // path that evicts, spills and flips sharing flags):
            // structurally check it, exactly as the serial engine did
            // post-insert.
            if shared.sanitize && resp.filled_l1 {
                if let Some(acc) = entry.req.translate_acc() {
                    Sanitizer::after_fill(acc.sm, acc.at, front.tlb());
                }
            }
        }
        if let Some(w) = entry.warp {
            let warp = &mut lane.sm.warps[w];
            warp.ready_at = warp.ready_at.max(resp.ready_at);
        }
    }
    lane.outbox.n_translates = 0;
    if let Some(issue_limited) = lane.outbox.recompute.take() {
        lane.sm.recompute_next_event(cycle, issue_limited);
    }
}

/// Reusable per-lane request/response buffers for the sharded drain
/// (allocated once per kernel, recycled across rounds).
type ShardScratch = Vec<(Vec<SharedRequest>, Vec<SharedResponse>)>;

/// Phase B for every participating lane: the serial per-SM apply loop
/// in SM-index order, or — when the round meets the [`ShardPolicy`],
/// the run is multi-threaded, the sanitizer is off and every
/// participating L1 TLB supports deferred fills — the sharded
/// slice-parallel drain
/// ([`drain_sharded`]), which reproduces the serial order byte-exactly.
///
/// `take(i)` selects participants (idempotent; called more than once
/// per lane). A selected lane must be home.
#[allow(clippy::too_many_arguments)]
fn drain_phase_b(
    lanes: &mut [Option<Box<Lane>>],
    take: &mut dyn FnMut(usize) -> bool,
    shared: &mut SharedState,
    cycle: u64,
    resolved: &mut Vec<(Ppn, u64)>,
    scratch: &mut ShardScratch,
    exec: &ScopedExec,
    policy: ShardPolicy,
    sharded_rounds: &mut u64,
) {
    let mut total = 0usize;
    let mut participants = 0usize;
    let mut deferrable = true;
    for (i, slot) in lanes.iter().enumerate() {
        if !take(i) {
            continue;
        }
        let Some(lane) = slot.as_ref() else {
            unreachable!("phase-B participant lanes are home")
        };
        if !lane.outbox.is_empty() {
            total += lane.outbox.entries.len();
            participants += 1;
            deferrable &= lane.front.tlb().supports_deferred_fill();
        }
    }
    // Most per-cycle rounds defer nothing: every outbox is empty, the
    // serial apply loop below would visit 16 lanes just to return from
    // each, and the policy can never be met (`threshold > 0`). Skip
    // them outright — byte-exact, since `phase_b` on an empty outbox is
    // a no-op.
    if total == 0 {
        return;
    }
    // The policy predicate is thread-count independent (the round's
    // batch is identical for every `--sim-threads N`), so the counter it
    // feeds is too; only the actual shard additionally needs executors.
    let met = policy.met(total, participants) && deferrable && !shared.sanitize;
    if met {
        *sharded_rounds += 1;
    }
    let sharded = met && exec.threads > 1;
    if !sharded {
        for (i, slot) in lanes.iter_mut().enumerate() {
            if !take(i) {
                continue;
            }
            let Some(lane) = slot.as_mut() else {
                unreachable!("phase-B participant lanes are home")
            };
            phase_b(lane, shared, cycle, resolved);
        }
        return;
    }

    // Copy each participant's requests into the reusable shard buffers
    // so the drain lanes can borrow the fronts mutably alongside them.
    while scratch.len() < lanes.len() {
        scratch.push(Default::default());
    }
    let mut drain_lanes: Vec<DrainLane<'_>> = Vec::with_capacity(lanes.len());
    for (i, (slot, (reqs, resps))) in lanes.iter_mut().zip(scratch.iter_mut()).enumerate() {
        if !take(i) {
            continue;
        }
        let Some(lane) = slot.as_mut() else {
            unreachable!("phase-B participant lanes are home")
        };
        if lane.outbox.is_empty() {
            debug_assert!(lane.outbox.recompute.is_none());
            continue;
        }
        reqs.clear();
        reqs.extend(lane.outbox.entries.iter().map(|e| e.req));
        resps.clear();
        drain_lanes.push(DrainLane {
            sm: lane.sm_idx,
            front: &mut lane.front,
            reqs: &reqs[..],
            resps,
        });
    }
    drain_sharded(&mut shared.back, &mut drain_lanes, exec);
    drop(drain_lanes);

    // Patch warp completion times and settle `next_event`, exactly as
    // the tail of the serial [`phase_b`] does.
    for (i, (slot, (_, resps))) in lanes.iter_mut().zip(scratch.iter_mut()).enumerate() {
        if !take(i) {
            continue;
        }
        let Some(lane) = slot.as_mut() else { continue };
        if lane.outbox.is_empty() {
            continue;
        }
        debug_assert_eq!(lane.outbox.entries.len(), resps.len());
        for (entry, resp) in lane.outbox.entries.drain(..).zip(resps.iter()) {
            if let Some(w) = entry.warp {
                let warp = &mut lane.sm.warps[w];
                warp.ready_at = warp.ready_at.max(resp.ready_at);
            }
        }
        lane.outbox.n_translates = 0;
        if let Some(issue_limited) = lane.outbox.recompute.take() {
            lane.sm.recompute_next_event(cycle, issue_limited);
        }
    }
}

/// A phase-A reference to a translation: resolved eagerly (L1 TLB hit)
/// or pending at an outbox index.
#[derive(Copy, Clone)]
enum TransRef {
    Done(Ppn, u64),
    Pending(u32),
}

/// Reusable per-issue scratch buffers: one warp memory instruction's
/// coalesced lines and page translations. Hoisted out of the issue loop
/// so the hot path performs no heap allocation.
#[derive(Default)]
struct IssueScratch {
    lines: Vec<VirtAddr>,
    translations: Vec<(vmem::Vpn, TransRef)>,
}

/// Runtime state of one resident warp.
struct WarpRt {
    /// Stable per-SM warp id (launch order; lower = older).
    id: u32,
    /// Address space (co-running app) this warp's TB belongs to.
    asid: Asid,
    /// Static ops of this warp, shared with the workload trace (an `Arc`
    /// clone at TB placement, not a copy).
    ops: std::sync::Arc<Vec<WarpOp>>,
    op_idx: usize,
    ready_at: u64,
    tb_slot: u8,
    tb_global: u32,
    /// Warp index within its TB (for warp-granularity analysis).
    warp_in_tb: u16,
    retired: bool,
}

/// Runtime state of one SM.
pub(crate) struct SmRt {
    warps: Vec<WarpRt>,
    free_slots: Vec<u8>,
    slot_live_warps: Vec<u32>,
    scheduler: Box<dyn WarpScheduler>,
    next_warp_id: u32,
    /// Reusable scratch for scheduler views, in launch order.
    views: Vec<WarpView>,
    /// Index into `warps` for each entry of `views` (parallel vector, so
    /// the scheduler can be handed `&views` without a per-pick collect).
    view_warps: Vec<usize>,
    next_event: u64,
    /// Lower bound on the earliest cycle any finished warp can retire
    /// (`u64::MAX` when none is pending). Phase-B patches only push
    /// completion times later, so the bound stays valid and the per-step
    /// retire scan can be skipped outright while `cycle` is below it —
    /// a skipped scan provably would have retired nothing.
    earliest_done: u64,
    /// Retired warps still occupying `warps` (drives compaction without
    /// a per-step recount).
    retired_warps: usize,
}

impl SmRt {
    fn new(max_tbs: u8, scheduler: Box<dyn WarpScheduler>) -> Self {
        SmRt {
            warps: Vec::new(),
            free_slots: (0..max_tbs).rev().collect(),
            slot_live_warps: vec![0; max_tbs as usize],
            scheduler,
            next_warp_id: 0,
            views: Vec::new(),
            view_warps: Vec::new(),
            next_event: u64::MAX,
            earliest_done: u64::MAX,
            retired_warps: 0,
        }
    }

    /// Instantiates one TB's warps on this SM. Takes only the TB trace
    /// (not the kernel), so a streaming feed can hand over the current
    /// decoded TB; each warp's op storage is `Arc`-cloned into the
    /// resident [`WarpRt`], keeping it alive after the feed recycles the
    /// decoded block.
    fn place_tb(&mut self, tb: &TbTrace, tb_global: u32, cycle: u64, asid: Asid) {
        let slot = self.free_slots.pop().expect("caller checked has_room"); // simlint: allow(hot-unwrap, reason = "dispatch loop asserts has_room before place_tb")
        let mut live = 0;
        for (warp_in_tb, warp) in tb.warps().iter().enumerate() {
            if warp.shared_ops().is_empty() {
                // A warp with no ops is retirable at its first event.
                self.earliest_done = self.earliest_done.min(cycle + 1);
            }
            self.warps.push(WarpRt {
                id: self.next_warp_id,
                asid,
                ops: warp.shared_ops(),
                op_idx: 0,
                ready_at: cycle + 1,
                tb_slot: slot,
                tb_global,
                warp_in_tb: warp_in_tb as u16,
                retired: false,
            });
            self.next_warp_id += 1;
            live += 1;
        }
        if live == 0 {
            // Degenerate empty TB: release the slot immediately.
            self.free_slots.push(slot);
        } else {
            self.slot_live_warps[slot as usize] = live;
        }
        self.next_event = self.next_event.min(cycle + 1);
    }

    /// Rebuilds the scheduler views (live warps in launch order) for a
    /// new issue cycle. [`SmRt::pick`] then consumes the cached views;
    /// between picks of the same cycle only the issued warp changes, so
    /// [`SmRt::after_issue`] patches its entry in place instead of
    /// rescanning the warp vector per issue slot.
    fn build_views(&mut self, cycle: u64) {
        self.views.clear();
        self.view_warps.clear();
        for (i, w) in self.warps.iter().enumerate() {
            if w.retired || w.op_idx >= w.ops.len() {
                continue;
            }
            self.views.push(WarpView {
                id: w.id,
                tb_slot: w.tb_slot,
                ready: w.ready_at <= cycle,
            });
            self.view_warps.push(i);
        }
    }

    /// Asks the warp-scheduling policy for the next warp to issue, from
    /// the views cached by [`SmRt::build_views`]. Returns the warp index
    /// and its view index (for [`SmRt::after_issue`]).
    fn pick(&mut self) -> Option<(usize, usize)> {
        // The scheduler sees only the views, in launch order.
        let picked = self.scheduler.pick(&self.views)?;
        let view = self.views[picked];
        self.scheduler.issued(view);
        Some((self.view_warps[picked], picked))
    }

    /// Patches the cached views after issuing the warp behind view
    /// `view_idx`. An issued warp's `ready_at` always lands strictly in
    /// the future (compute latencies are clamped to ≥ 1, transactions
    /// complete at `cycle + 1` at the earliest), so its view simply goes
    /// not-ready; a warp that issued its final op leaves the views
    /// entirely, exactly as a rebuild would drop it.
    fn after_issue(&mut self, view_idx: usize, finished: bool) {
        if finished {
            self.views.remove(view_idx);
            self.view_warps.remove(view_idx);
        } else {
            self.views[view_idx].ready = false;
        }
    }

    fn recompute_next_event(&mut self, cycle: u64, issue_limited: bool) {
        // Callers pass `issue_limited` only when at least one op issued
        // this cycle, and an issued warp's `ready_at` is strictly future
        // — so a future event exists (`next != u64::MAX` below) and the
        // scan's verdict is `cycle + 1` whatever `any_ready_now` says.
        // Skip the warp scan outright.
        if issue_limited {
            self.next_event = cycle + 1;
            return;
        }
        let mut next = u64::MAX;
        let mut any_ready_now = false;
        for w in &self.warps {
            if w.retired {
                continue;
            }
            if w.op_idx < w.ops.len() {
                if w.ready_at <= cycle {
                    any_ready_now = true;
                } else {
                    next = next.min(w.ready_at);
                }
            } else if w.ready_at > cycle {
                // Completion (retire) event.
                next = next.min(w.ready_at);
            } else {
                // Retirable right now (became done this cycle).
                any_ready_now = true;
            }
        }
        self.next_event = if any_ready_now || (issue_limited && next != u64::MAX) {
            cycle + 1
        } else {
            next
        };
    }

    fn compact(&mut self) {
        // Stable warp ids survive compaction, so the scheduler's state
        // stays valid.
        self.warps.retain(|w| !w.retired);
        self.retired_warps = 0;
    }

    pub(crate) fn next_event(&self) -> u64 {
        self.next_event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{registry, Scale};

    fn run_bench(name: &str) -> SimReport {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let wl = spec.generate(Scale::Test, 42);
        Simulator::new(GpuConfig::dac23_baseline()).run(wl)
    }

    #[test]
    fn gemm_runs_to_completion() {
        let r = run_bench("gemm");
        assert!(r.total_cycles > 0);
        assert!(r.instructions > 0);
        assert!(r.transactions > 0);
        assert_eq!(r.l1_tlb.len(), 16);
        // Every TB got placed somewhere.
        let placed: u32 = r.tb_placements.iter().sum();
        let n = Scale::Test.matrix_dim() / 16;
        assert_eq!(placed as usize, n * n);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_bench("bfs");
        let b = run_bench("bfs");
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.l1_tlb_aggregate(), b.l1_tlb_aggregate());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // The tentpole contract: `--sim-threads N` changes wall-clock
        // only. Every reported number — cycles, stats, the latency
        // breakdown, even the translation trace — must be identical.
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let serial = Simulator::new(GpuConfig::dac23_baseline())
            .with_sim_threads(1)
            .with_translation_trace(true)
            .run(spec.generate(Scale::Test, 42));
        for threads in [2, 4, 16] {
            let par = Simulator::new(GpuConfig::dac23_baseline())
                .with_sim_threads(threads)
                .with_translation_trace(true)
                .run(spec.generate(Scale::Test, 42));
            assert_eq!(serial.total_cycles, par.total_cycles, "{threads} threads");
            assert_eq!(serial.to_csv_row(), par.to_csv_row(), "{threads} threads");
            assert_eq!(serial.kernel_cycles, par.kernel_cycles);
            assert_eq!(serial.l1_tlb, par.l1_tlb);
            assert_eq!(serial.latency, par.latency);
            assert_eq!(serial.translation_trace, par.translation_trace);
        }
    }

    #[test]
    fn memo_fastpath_serves_lookups_in_a_real_run() {
        // Warps re-touch the same page line after line, so the MRU memo
        // must serve a meaningful share of lookups; every fast-path hit
        // is a hit, so the counter is bounded by the hit totals.
        let r = run_bench("gemm");
        assert!(r.fastpath_hits > 0, "memo fast path never engaged");
        let bound = r.l1_tlb_aggregate().hits + r.l2_tlb.hits;
        assert!(r.fastpath_hits <= bound, "{} > {bound}", r.fastpath_hits);
    }

    #[test]
    fn shard_policy_rounds_are_thread_invariant() {
        // The `sharded_rounds` counter must not depend on the thread
        // count: a serial run (which never shards) reports the same
        // policy-met rounds as a parallel run (which shards them).
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let config = GpuConfig {
            shard_threshold: 1,
            shard_lane_overhead: 0,
            ..GpuConfig::dac23_baseline()
        };
        let run = |threads: usize| {
            Simulator::new(config.clone())
                .with_sim_threads(threads)
                .with_sanitizer(false)
                .run(spec.generate(Scale::Test, 42))
        };
        let serial = run(1);
        assert!(serial.sharded_rounds > 0, "forced policy never met");
        for threads in [2, 4] {
            let par = run(threads);
            assert_eq!(
                serial.sharded_rounds, par.sharded_rounds,
                "{threads} threads"
            );
            assert_eq!(serial.to_csv_row(), par.to_csv_row(), "{threads} threads");
        }
    }

    #[test]
    fn round_robin_balances_placements() {
        let r = run_bench("pagerank");
        let max = r.tb_placements.iter().max().unwrap();
        let min = r.tb_placements.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin spread: {:?}", r.tb_placements);
    }

    #[test]
    fn larger_tlb_does_not_hurt() {
        let spec = registry().into_iter().find(|s| s.name == "atax").unwrap();
        let base = Simulator::new(GpuConfig::dac23_baseline()).run(spec.generate(Scale::Test, 42));
        let big = Simulator::new(
            GpuConfig::dac23_baseline().with_l1_tlb(tlb::TlbConfig::dac23_l1_256()),
        )
        .run(spec.generate(Scale::Test, 42));
        assert!(big.l1_tlb_hit_rate() >= base.l1_tlb_hit_rate() - 1e-9);
    }

    #[test]
    fn translation_trace_collected_when_enabled() {
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let wl = spec.generate(Scale::Test, 42);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_translation_trace(true)
            .run(wl);
        // One event per L1 TLB lookup (page-coalesced, so at most one per
        // transaction).
        let lookups = r.l1_tlb_aggregate().accesses();
        assert_eq!(r.translation_trace.len() as u64, lookups);
        assert!(lookups <= r.transactions);
    }

    #[test]
    fn one_tb_at_a_time_cap_respected() {
        let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
        let wl = spec.generate(Scale::Test, 42);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_max_concurrent_tbs(Some(1))
            .run(wl);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn sanitized_run_completes_clean() {
        // Force the sanitizer on regardless of build profile: a healthy
        // baseline run must pass every per-fill, per-cycle and
        // end-of-kernel invariant check without tripping.
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let wl = spec.generate(Scale::Test, 42);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_sanitizer(true)
            .run(wl);
        assert!(r.total_cycles > 0);
        let unsanitized = Simulator::new(GpuConfig::dac23_baseline())
            .with_sanitizer(false)
            .run(spec.generate(Scale::Test, 42));
        // Checking invariants must not perturb the simulation itself.
        assert_eq!(r.total_cycles, unsanitized.total_cycles);
        assert_eq!(r.l1_tlb_aggregate(), unsanitized.l1_tlb_aggregate());
    }

    #[test]
    fn kernel_cycles_sum_to_total() {
        let r = run_bench("nw");
        let sum: u64 = r.kernel_cycles.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, r.total_cycles);
    }

    #[test]
    fn demand_faults_bounded_by_footprint_pages() {
        let r = run_bench("gemm");
        assert!(r.demand_faults > 0, "first touches must fault");
        // Faults can't exceed total touched pages.
        let n = Scale::Test.matrix_dim();
        let pages = (3 * n * n * 4) as u64 / 4096 + 3;
        assert!(r.demand_faults <= pages);
    }
}
