//! The cycle-level GPU timing engine.
//!
//! The engine models the execution path of the paper's Figure 1 at warp
//! granularity: per-SM GTO warp issue, the memory coalescer, per-SM VIPT
//! L1 cache + private L1 TLB, the shared L2 TLB and L2 cache behind an
//! interconnect, and the shared page-table-walker pool with UVM demand
//! paging. Time advances event-to-event (the cycle counter jumps to the
//! next cycle at which any SM can make progress), which is exact for this
//! model because all latencies are computed analytically at issue.
//!
//! Determinism: SMs are processed in index order at each event cycle and
//! every policy is seeded/stateless, so runs are bit-reproducible.

use crate::coalesce::coalesce_into;
use crate::config::GpuConfig;
use crate::report::{SimReport, TranslationEvent};
use crate::sanitize::{sanitize_enabled, Sanitizer};
use crate::tb_sched::{RoundRobinScheduler, SmSnapshot, TbScheduler};
use crate::warp_sched::{GtoWarpScheduler, WarpScheduler, WarpView};
use mem_hier::{Access, Hierarchy, HierarchyBuilder, HitLevel};
use tlb::{SetAssocTlb, TranslationBuffer};
use vmem::{AddressSpace, PageSize, PhysAddr, Ppn, VirtAddr};
use workloads::{KernelTrace, WarpOp, Workload};

/// Builds L1 TLBs for each SM (lets the `orchestrated-tlb` crate plug in
/// the partitioned design).
pub type L1TlbFactory = Box<dyn Fn(&GpuConfig) -> Box<dyn TranslationBuffer>>;

/// Builds one warp scheduler per SM.
pub type WarpSchedulerFactory = Box<dyn Fn() -> Box<dyn WarpScheduler>>;

/// A configured simulator, ready to run workloads.
///
/// # Example
///
/// ```
/// use gpu_sim::{GpuConfig, Simulator};
/// use workloads::{registry, Scale};
///
/// let wl = registry()[8].generate(Scale::Test, 42); // gemm
/// let report = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
/// assert!(report.total_cycles > 0);
/// assert!(report.l1_tlb_hit_rate() > 0.0);
/// ```
pub struct Simulator {
    config: GpuConfig,
    tb_scheduler: Box<dyn TbScheduler>,
    l1_tlb_factory: L1TlbFactory,
    warp_scheduler_factory: WarpSchedulerFactory,
    trace_translations: bool,
    force_max_tbs: Option<u8>,
    /// Per-instance sanitizer override; `None` follows the process-wide
    /// default ([`sanitize_enabled`]).
    sanitize: Option<bool>,
}

impl Simulator {
    /// Creates a baseline simulator: round-robin TB scheduling and
    /// VPN-indexed set-associative L1 TLBs.
    pub fn new(config: GpuConfig) -> Self {
        Simulator {
            config,
            tb_scheduler: Box::new(RoundRobinScheduler::new()),
            l1_tlb_factory: Box::new(|c: &GpuConfig| {
                Box::new(SetAssocTlb::new(c.l1_tlb)) as Box<dyn TranslationBuffer>
            }),
            warp_scheduler_factory: Box::new(|| {
                Box::new(GtoWarpScheduler::new()) as Box<dyn WarpScheduler>
            }),
            trace_translations: false,
            force_max_tbs: None,
            sanitize: None,
        }
    }

    /// Replaces the TB scheduling policy.
    pub fn with_tb_scheduler(mut self, scheduler: Box<dyn TbScheduler>) -> Self {
        self.tb_scheduler = scheduler;
        self
    }

    /// Replaces the L1 TLB organization.
    pub fn with_l1_tlb_factory(mut self, factory: L1TlbFactory) -> Self {
        self.l1_tlb_factory = factory;
        self
    }

    /// Replaces the per-SM warp scheduling policy (default: GTO per
    /// Table III).
    pub fn with_warp_scheduler_factory(mut self, factory: WarpSchedulerFactory) -> Self {
        self.warp_scheduler_factory = factory;
        self
    }

    /// Records every L1 TLB access into the report (needed by the
    /// reuse-distance characterization; costs memory).
    pub fn with_translation_trace(mut self, enable: bool) -> Self {
        self.trace_translations = enable;
        self
    }

    /// Caps concurrent TBs per SM (e.g. `Some(1)` reproduces the paper's
    /// Figure 6 "one TB at a time" study).
    pub fn with_max_concurrent_tbs(mut self, cap: Option<u8>) -> Self {
        self.force_max_tbs = cap;
        self
    }

    /// Forces the runtime invariant sanitizer on (or off) for this
    /// simulator, overriding the process-wide default (on in debug builds,
    /// `--sanitize` in release). See the [`crate::sanitize`] module docs
    /// for what is checked; the first violation panics with a state dump.
    pub fn with_sanitizer(mut self, enable: bool) -> Self {
        self.sanitize = Some(enable);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs the workload to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the workload references addresses outside its own
    /// buffers or exhausts the (64 GiB default) physical pool — both are
    /// generator bugs, not simulation outcomes.
    pub fn run(&mut self, workload: Workload) -> SimReport {
        let (name, kernels, space) = workload.into_parts();
        let n_sms = self.config.num_sms;
        let sanitize = self.sanitize.unwrap_or_else(sanitize_enabled);
        let mut sanitizer = sanitize.then(|| Sanitizer::new(n_sms));
        let l1_tlbs: Vec<Box<dyn TranslationBuffer>> = (0..n_sms)
            .map(|_| (self.l1_tlb_factory)(&self.config))
            .collect();
        let mut mem =
            MemorySystem::new(&self.config, space, l1_tlbs, self.trace_translations, sanitize);
        let mut report = SimReport {
            workload: name,
            scheduler: self.tb_scheduler.name().to_owned(),
            tb_placements: vec![0; n_sms],
            sm_instructions: vec![0; n_sms],
            ..Default::default()
        };

        let mut cycle: u64 = 0;
        for (kernel_idx, kernel) in kernels.iter().enumerate() {
            let start = cycle;
            cycle = self.run_kernel(
                kernel,
                kernel_idx as u16,
                cycle,
                &mut mem,
                &mut report,
                &mut sanitizer,
            );
            report
                .kernel_cycles
                .push((kernel.name.clone(), cycle - start));
        }

        report.total_cycles = cycle;
        report.l1_tlb = mem.l1_tlbs().iter().map(|t| t.stats()).collect();
        report.l2_tlb = mem.hier.l2_tlb_stats();
        report.l1_cache = mem.hier.l1_cache_stats();
        report.l2_cache = mem.hier.l2_cache_stats();
        report.walker = mem.hier.walker_stats();
        report.demand_faults = mem.hier.demand_faults();
        report.transactions = mem.hier.transactions();
        report.latency = *mem.hier.breakdown();
        report.translation_trace = mem.trace.take().unwrap_or_default();
        report
    }

    /// Simulates one kernel launch; returns the cycle at which it
    /// completes.
    fn run_kernel(
        &mut self,
        kernel: &KernelTrace,
        kernel_idx: u16,
        start_cycle: u64,
        mem: &mut MemorySystem,
        report: &mut SimReport,
        sanitizer: &mut Option<Sanitizer>,
    ) -> u64 {
        let n_sms = self.config.num_sms;
        // Occupancy: the compile-time TB limit, the hardware cap, and the
        // thread capacity all bound concurrency.
        let by_threads =
            (self.config.max_threads_per_sm / kernel.threads_per_tb.max(1)).max(1) as u8;
        let mut max_tbs = kernel
            .max_concurrent_tbs_per_sm
            .min(self.config.max_concurrent_tbs)
            .min(by_threads);
        if let Some(cap) = self.force_max_tbs {
            max_tbs = max_tbs.min(cap);
        }

        let mut sms: Vec<SmRt> = (0..n_sms)
            .map(|_| SmRt::new(max_tbs, (self.warp_scheduler_factory)()))
            .collect();
        for tlb in mem.l1_tlbs_mut() {
            tlb.set_concurrent_tbs(max_tbs);
            if self.config.flush_l1_tlb_on_kernel_launch {
                tlb.flush();
            }
        }
        self.tb_scheduler.reset();

        let mut next_tb = 0usize;
        let mut cycle = start_cycle;
        let mut scratch = IssueScratch::default();
        loop {
            // Dispatch pending TBs while any SM has a free slot.
            while next_tb < kernel.tbs.len() {
                let snaps: Vec<SmSnapshot> = sms
                    .iter()
                    .enumerate()
                    .map(|(i, sm)| {
                        let stats = mem.l1_tlbs()[i].stats();
                        SmSnapshot {
                            free_slots: sm.free_slots.len() as u8,
                            tlb_hits: stats.hits,
                            tlb_accesses: stats.accesses(),
                        }
                    })
                    .collect();
                if !snaps.iter().any(SmSnapshot::has_room) {
                    break;
                }
                let Some(target) = self.tb_scheduler.pick_sm(&snaps) else {
                    break;
                };
                assert!(
                    snaps[target].has_room(),
                    "scheduler picked a full SM ({target})"
                );
                sms[target].place_tb(kernel, next_tb as u32, cycle);
                report.tb_placements[target] += 1;
                next_tb += 1;
            }

            // Next cycle at which any SM can make progress.
            let Some(event) = sms.iter().map(SmRt::next_event).min().filter(|&e| e < u64::MAX)
            else {
                debug_assert!(next_tb >= kernel.tbs.len(), "idle GPU with pending TBs");
                break;
            };
            cycle = cycle.max(event);

            for sm_idx in 0..n_sms {
                Self::step_sm(
                    &self.config,
                    sm_idx,
                    cycle,
                    kernel_idx,
                    &mut sms,
                    mem,
                    report,
                    &mut scratch,
                );
            }

            if let Some(san) = sanitizer.as_mut() {
                san.after_cycle(cycle, mem.l1_tlbs(), self.tb_scheduler.as_ref(), n_sms);
            }
        }
        if let Some(san) = sanitizer.as_mut() {
            san.end_of_kernel(cycle, mem.l1_tlbs(), mem.hier.l2_slices());
        }
        cycle
    }

    /// Retires finished warps/TBs and issues up to `issue_width` warp
    /// instructions on one SM at `cycle`.
    #[allow(clippy::too_many_arguments)]
    fn step_sm(
        config: &GpuConfig,
        sm_idx: usize,
        cycle: u64,
        kernel_idx: u16,
        sms: &mut [SmRt],
        mem: &mut MemorySystem,
        report: &mut SimReport,
        scratch: &mut IssueScratch,
    ) {
        let sm = &mut sms[sm_idx];
        if sm.next_event > cycle {
            return;
        }

        // Retire warps whose final op has completed; free TB slots.
        for w in 0..sm.warps.len() {
            let warp = &mut sm.warps[w];
            if !warp.retired && warp.op_idx >= warp.ops.len() && warp.ready_at <= cycle {
                warp.retired = true;
                let slot = warp.tb_slot as usize;
                sm.slot_live_warps[slot] -= 1;
                if sm.slot_live_warps[slot] == 0 {
                    sm.free_slots.push(slot as u8);
                    mem.l1_tlbs_mut()[sm_idx].on_tb_finish(slot as u8);
                }
            }
        }
        if sm.warps.iter().filter(|w| w.retired).count() > 128 {
            sm.compact();
        }

        // GTO issue: stay greedy on the last-issued warp, then oldest.
        let mut issued = 0u32;
        while issued < config.issue_width {
            let pick = sm.pick(cycle);
            let Some(w) = pick else { break };
            let warp = &mut sm.warps[w];
            let op = &warp.ops[warp.op_idx];
            warp.op_idx += 1;
            report.instructions += 1;
            report.sm_instructions[sm_idx] += 1;
            match op {
                WarpOp::Compute { cycles } => {
                    warp.ready_at = cycle + (*cycles as u64).max(1);
                }
                WarpOp::Load(acc) | WarpOp::Store(acc) => {
                    let write = op.is_store();
                    let mut done = cycle + 1;
                    // Per-instruction TLB coalescing (Power et al.,
                    // HPCA'14, the paper's reference [19]): one L1 TLB
                    // lookup per *distinct page* the warp instruction
                    // touches; the per-line transactions below share the
                    // translation.
                    let IssueScratch { lines, translations } = scratch;
                    translations.clear();
                    let mut lookups = 0u64;
                    coalesce_into(acc, config.l1_cache.line_bytes as u64, lines);
                    for (i, &line) in lines.iter().enumerate() {
                        let vpn = line.vpn(mem.page_size);
                        let (ppn, translated_at) = match translations
                            .iter()
                            .find(|(v, _)| *v == vpn)
                        {
                            Some(&(_, hit)) => hit,
                            None => {
                                // Translation lookups leave one per cycle.
                                let t = mem.translate(
                                    cycle + lookups,
                                    sm_idx,
                                    warp.tb_slot,
                                    warp.tb_global,
                                    warp.warp_in_tb,
                                    kernel_idx,
                                    line,
                                );
                                lookups += 1;
                                translations.push((vpn, t));
                                t
                            }
                        };
                        // Transactions leave the LSU one per cycle.
                        let start = translated_at.max(cycle + i as u64);
                        let pa = PhysAddr::from_parts(
                            ppn,
                            line.page_offset(mem.page_size),
                            mem.page_size,
                        );
                        done = done.max(mem.data_access(start, sm_idx, pa, write));
                    }
                    warp.ready_at = done;
                }
            }
            issued += 1;
        }

        sm.recompute_next_event(cycle, issued >= config.issue_width);
    }
}

/// Reusable per-issue scratch buffers: one warp memory instruction's
/// coalesced lines and page translations. Hoisted out of the issue loop
/// so the hot path performs no heap allocation.
#[derive(Default)]
struct IssueScratch {
    lines: Vec<VirtAddr>,
    translations: Vec<(vmem::Vpn, (vmem::Ppn, u64))>,
}

/// Runtime state of one resident warp.
struct WarpRt {
    /// Stable per-SM warp id (launch order; lower = older).
    id: u32,
    /// Static ops of this warp, shared with the workload trace (an `Arc`
    /// clone at TB placement, not a copy).
    ops: std::sync::Arc<Vec<WarpOp>>,
    op_idx: usize,
    ready_at: u64,
    tb_slot: u8,
    tb_global: u32,
    /// Warp index within its TB (for warp-granularity analysis).
    warp_in_tb: u16,
    retired: bool,
}

/// Runtime state of one SM.
struct SmRt {
    warps: Vec<WarpRt>,
    free_slots: Vec<u8>,
    slot_live_warps: Vec<u32>,
    scheduler: Box<dyn WarpScheduler>,
    next_warp_id: u32,
    /// Reusable scratch for scheduler views, in launch order.
    views: Vec<WarpView>,
    /// Index into `warps` for each entry of `views` (parallel vector, so
    /// the scheduler can be handed `&views` without a per-pick collect).
    view_warps: Vec<usize>,
    next_event: u64,
}

impl SmRt {
    fn new(max_tbs: u8, scheduler: Box<dyn WarpScheduler>) -> Self {
        SmRt {
            warps: Vec::new(),
            free_slots: (0..max_tbs).rev().collect(),
            slot_live_warps: vec![0; max_tbs as usize],
            scheduler,
            next_warp_id: 0,
            views: Vec::new(),
            view_warps: Vec::new(),
            next_event: u64::MAX,
        }
    }

    fn place_tb(&mut self, kernel: &KernelTrace, tb_global: u32, cycle: u64) {
        let slot = self.free_slots.pop().expect("caller checked has_room"); // simlint: allow(hot-unwrap, reason = "dispatch loop asserts has_room before place_tb")
        let tb = &kernel.tbs[tb_global as usize];
        let mut live = 0;
        for (warp_in_tb, warp) in tb.warps().iter().enumerate() {
            self.warps.push(WarpRt {
                id: self.next_warp_id,
                ops: warp.shared_ops(),
                op_idx: 0,
                ready_at: cycle + 1,
                tb_slot: slot,
                tb_global,
                warp_in_tb: warp_in_tb as u16,
                retired: false,
            });
            self.next_warp_id += 1;
            live += 1;
        }
        if live == 0 {
            // Degenerate empty TB: release the slot immediately.
            self.free_slots.push(slot);
        } else {
            self.slot_live_warps[slot as usize] = live;
        }
        self.next_event = self.next_event.min(cycle + 1);
    }

    /// Asks the warp-scheduling policy for the next warp to issue.
    fn pick(&mut self, cycle: u64) -> Option<usize> {
        self.views.clear();
        self.view_warps.clear();
        for (i, w) in self.warps.iter().enumerate() {
            if w.retired || w.op_idx >= w.ops.len() {
                continue;
            }
            self.views.push(WarpView {
                id: w.id,
                tb_slot: w.tb_slot,
                ready: w.ready_at <= cycle,
            });
            self.view_warps.push(i);
        }
        // The scheduler sees only the views, in launch order.
        let picked = self.scheduler.pick(&self.views)?;
        let view = self.views[picked];
        self.scheduler.issued(view);
        Some(self.view_warps[picked])
    }

    fn recompute_next_event(&mut self, cycle: u64, issue_limited: bool) {
        let mut next = u64::MAX;
        let mut any_ready_now = false;
        for w in &self.warps {
            if w.retired {
                continue;
            }
            if w.op_idx < w.ops.len() {
                if w.ready_at <= cycle {
                    any_ready_now = true;
                } else {
                    next = next.min(w.ready_at);
                }
            } else if w.ready_at > cycle {
                // Completion (retire) event.
                next = next.min(w.ready_at);
            } else {
                // Retirable right now (became done this cycle).
                any_ready_now = true;
            }
        }
        self.next_event = if any_ready_now || (issue_limited && next != u64::MAX) {
            cycle + 1
        } else {
            next
        };
    }

    fn compact(&mut self) {
        // Stable warp ids survive compaction, so the scheduler's state
        // stays valid.
        self.warps.retain(|w| !w.retired);
    }

    fn next_event(&self) -> u64 {
        self.next_event
    }
}

/// The shared memory subsystem: a thin owner of the mem-hier pipeline
/// plus the engine-side concerns that do not belong to a hierarchy level
/// (translation tracing, sanitizer hooks).
struct MemorySystem {
    /// The composed translation + data pipeline (see the `mem-hier`
    /// crate): per-SM L1 TLBs, interconnect, sliced L2 TLB with port
    /// arbitration, walker pool with UVM demand paging, VIPT caches.
    hier: Hierarchy,
    page_size: PageSize,
    trace: Option<Vec<TranslationEvent>>,
    /// Run full L1 TLB invariant checks after every fill.
    sanitize: bool,
}

impl MemorySystem {
    fn new(
        config: &GpuConfig,
        space: AddressSpace,
        l1_tlbs: Vec<Box<dyn TranslationBuffer>>,
        trace: bool,
        sanitize: bool,
    ) -> Self {
        let page_size = space.page_size();
        MemorySystem {
            hier: HierarchyBuilder::new(config.hierarchy()).build(space, l1_tlbs),
            page_size,
            trace: trace.then(Vec::new),
            sanitize,
        }
    }

    fn l1_tlbs(&self) -> &[Box<dyn TranslationBuffer>] {
        self.hier.l1_tlbs()
    }

    fn l1_tlbs_mut(&mut self) -> &mut [Box<dyn TranslationBuffer>] {
        self.hier.l1_tlbs_mut()
    }

    /// Translates one page (steps ②-⑥ of the paper's Figure 1) through
    /// the hierarchy. Returns the frame and the cycle the PPN becomes
    /// available.
    #[allow(clippy::too_many_arguments)]
    fn translate(
        &mut self,
        cycle: u64,
        sm: usize,
        tb_slot: u8,
        tb_global: u32,
        warp_in_tb: u16,
        kernel: u16,
        line_va: VirtAddr,
    ) -> (Ppn, u64) {
        let vpn = line_va.vpn(self.page_size);
        if let Some(trace) = &mut self.trace {
            trace.push(TranslationEvent {
                sm: sm as u8,
                tb_global,
                warp: warp_in_tb,
                kernel,
                vpn: vpn.raw(),
            });
        }
        let t = self.hier.translate(&Access {
            at: cycle,
            sm,
            tb_slot,
            va: line_va,
            vpn,
            page_size: self.page_size,
        });
        // Any resolution below the L1 filled the SM's L1 TLB (the path
        // that evicts, spills and flips sharing flags): structurally
        // check it, exactly as the pre-mem-hier engine did post-insert.
        if self.sanitize && t.level != HitLevel::L1Tlb {
            Sanitizer::after_fill(sm, cycle, self.hier.l1_tlbs()[sm].as_ref());
        }
        (t.ppn, t.ready_at)
    }

    /// One coalesced line transaction through the data path: VIPT L1
    /// probed in parallel with translation (`start` already accounts for
    /// PPN availability), then L2/DRAM on miss.
    fn data_access(&mut self, start: u64, sm: usize, pa: PhysAddr, write: bool) -> u64 {
        self.hier.data_access(start, sm, pa, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{registry, Scale};

    fn run_bench(name: &str) -> SimReport {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let wl = spec.generate(Scale::Test, 42);
        Simulator::new(GpuConfig::dac23_baseline()).run(wl)
    }

    #[test]
    fn gemm_runs_to_completion() {
        let r = run_bench("gemm");
        assert!(r.total_cycles > 0);
        assert!(r.instructions > 0);
        assert!(r.transactions > 0);
        assert_eq!(r.l1_tlb.len(), 16);
        // Every TB got placed somewhere.
        let placed: u32 = r.tb_placements.iter().sum();
        let n = Scale::Test.matrix_dim() / 16;
        assert_eq!(placed as usize, n * n);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_bench("bfs");
        let b = run_bench("bfs");
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.l1_tlb_aggregate(), b.l1_tlb_aggregate());
    }

    #[test]
    fn round_robin_balances_placements() {
        let r = run_bench("pagerank");
        let max = r.tb_placements.iter().max().unwrap();
        let min = r.tb_placements.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin spread: {:?}", r.tb_placements);
    }

    #[test]
    fn larger_tlb_does_not_hurt() {
        let spec = registry().into_iter().find(|s| s.name == "atax").unwrap();
        let base = Simulator::new(GpuConfig::dac23_baseline()).run(spec.generate(Scale::Test, 42));
        let big = Simulator::new(
            GpuConfig::dac23_baseline().with_l1_tlb(tlb::TlbConfig::dac23_l1_256()),
        )
        .run(spec.generate(Scale::Test, 42));
        assert!(big.l1_tlb_hit_rate() >= base.l1_tlb_hit_rate() - 1e-9);
    }

    #[test]
    fn translation_trace_collected_when_enabled() {
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let wl = spec.generate(Scale::Test, 42);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_translation_trace(true)
            .run(wl);
        // One event per L1 TLB lookup (page-coalesced, so at most one per
        // transaction).
        let lookups = r.l1_tlb_aggregate().accesses();
        assert_eq!(r.translation_trace.len() as u64, lookups);
        assert!(lookups <= r.transactions);
    }

    #[test]
    fn one_tb_at_a_time_cap_respected() {
        let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
        let wl = spec.generate(Scale::Test, 42);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_max_concurrent_tbs(Some(1))
            .run(wl);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn sanitized_run_completes_clean() {
        // Force the sanitizer on regardless of build profile: a healthy
        // baseline run must pass every per-fill, per-cycle and
        // end-of-kernel invariant check without tripping.
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let wl = spec.generate(Scale::Test, 42);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_sanitizer(true)
            .run(wl);
        assert!(r.total_cycles > 0);
        let unsanitized = Simulator::new(GpuConfig::dac23_baseline())
            .with_sanitizer(false)
            .run(spec.generate(Scale::Test, 42));
        // Checking invariants must not perturb the simulation itself.
        assert_eq!(r.total_cycles, unsanitized.total_cycles);
        assert_eq!(r.l1_tlb_aggregate(), unsanitized.l1_tlb_aggregate());
    }

    #[test]
    fn kernel_cycles_sum_to_total() {
        let r = run_bench("nw");
        let sum: u64 = r.kernel_cycles.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, r.total_cycles);
    }

    #[test]
    fn demand_faults_bounded_by_footprint_pages() {
        let r = run_bench("gemm");
        assert!(r.demand_faults > 0, "first touches must fault");
        // Faults can't exceed total touched pages.
        let n = Scale::Test.matrix_dim();
        let pages = (3 * n * n * 4) as u64 / 4096 + 3;
        assert!(r.demand_faults <= pages);
    }
}
