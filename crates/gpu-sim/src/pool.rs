//! The persistent phase-A worker pool.
//!
//! One pool lives on each [`crate::Simulator`] and is reused across
//! kernels, grid cells and repeated `run` calls — worker threads are
//! spawned once, not per kernel (PR 4 spawned a fresh `thread::scope`
//! per kernel, which dominated wall-clock at test scale). Lanes move to
//! workers by `Box` over long-lived mpsc channels; in epoch mode a lane
//! that ran to the epoch horizon *parks* on its worker — only a small
//! [`StopReport`] crosses back — so steady-state coordination ships no
//! lane at all. All `Vec` buffers travel inside the job/done messages
//! and are recycled on both sides, so the per-round path performs no
//! heap allocation after warm-up.
//!
//! This module is the only place in the engine allowed to spawn threads
//! (enforced by simlint's `engine-spawn` rule): everything else talks to
//! the pool through [`WorkerPool::send`]/[`WorkerPool::recv`].

use crate::engine::{run_chain, ChainSpec, Lane, RoundCtx};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a lane's phase-A chain stopped (see [`run_chain`]).
#[derive(Copy, Clone, Debug)]
pub(crate) struct StopReport {
    /// Lane (= SM) index.
    pub lane: usize,
    /// Cycle of the last `phase_a` step the chain executed (0 if none).
    pub last_step: u64,
    /// The lane's settled `next_event` when the chain returned
    /// (`u64::MAX` when idle).
    pub next_event: u64,
    /// The chain stopped mid-epoch at `last_step` with a non-empty
    /// outbox: phase B must drain it at that cycle.
    pub needs_phase_b: bool,
    /// The chain's last step freed at least one TB slot (only reported
    /// when the spec asked to stop on retires).
    pub retired_tb: bool,
    /// The lane stayed on the worker (epoch horizon or idle); only the
    /// report came home.
    pub parked: bool,
}

/// A unit of phase-A work for one worker.
pub(crate) enum Job {
    /// Run chains for the shipped lanes (and, when `resume` is set, for
    /// every parked lane whose `next_event` is inside the epoch).
    Run {
        ctx: Arc<RoundCtx>,
        spec: ChainSpec,
        lanes: Vec<(usize, Box<Lane>)>,
        resume: bool,
    },
    /// Ship every parked lane home (kernel end).
    Recall,
}

/// A worker's reply to one [`Job`].
pub(crate) struct Done {
    /// Lanes coming home (stopped for phase B / dispatch, or recalled).
    pub lanes: Vec<(usize, Box<Lane>)>,
    /// One report per chain run by this job (parked lanes included).
    pub reports: Vec<StopReport>,
    /// Panic payload caught inside the worker, re-raised by the
    /// coordinator so a sanitizer abort doesn't deadlock the run.
    pub panicked: Option<String>,
}

fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("phase-A worker panicked")
    }
}

fn worker_loop(rx: Receiver<Job>, done_tx: Sender<Done>) {
    // Lanes parked on this worker between epoch rounds, and recycled
    // message buffers (reused across rounds; both stay small).
    let mut parked: Vec<(usize, Box<Lane>)> = Vec::new();
    let mut spare: Vec<Vec<(usize, Box<Lane>)>> = Vec::new();
    while let Ok(job) = rx.recv() {
        let done = match job {
            Job::Run {
                ctx,
                spec,
                mut lanes,
                resume,
            } => {
                let mut home = spare.pop().unwrap_or_default();
                let mut reports = Vec::with_capacity(lanes.len() + parked.len());
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for (idx, lane) in lanes.drain(..) {
                        route(&ctx, &spec, idx, lane, &mut reports, &mut home, &mut parked);
                    }
                    if resume {
                        // Wake parked lanes that have events inside the
                        // new epoch window; leave the rest parked.
                        let mut i = 0;
                        while i < parked.len() {
                            if parked[i].1.sm.next_event() < spec.epoch_end {
                                let (idx, lane) = parked.swap_remove(i);
                                route(&ctx, &spec, idx, lane, &mut reports, &mut home, &mut parked);
                            } else {
                                i += 1;
                            }
                        }
                    }
                }));
                let panicked = caught.err().map(panic_text);
                if panicked.is_some() {
                    // States are broken anyway; ship everything so no
                    // lane is lost while the coordinator re-raises.
                    home.append(&mut parked);
                }
                spare.push(lanes);
                Done {
                    lanes: home,
                    reports,
                    panicked,
                }
            }
            Job::Recall => Done {
                lanes: std::mem::take(&mut parked),
                reports: Vec::new(),
                panicked: None,
            },
        };
        if done_tx.send(done).is_err() {
            return;
        }
    }
}

/// Runs one lane's chain and files it home or parked per the outcome.
fn route(
    ctx: &RoundCtx,
    spec: &ChainSpec,
    idx: usize,
    mut lane: Box<Lane>,
    reports: &mut Vec<StopReport>,
    home: &mut Vec<(usize, Box<Lane>)>,
    parked: &mut Vec<(usize, Box<Lane>)>,
) {
    let outcome = run_chain(ctx, spec, &mut lane);
    let can_park = spec.park && !outcome.needs_phase_b && !outcome.retired_tb;
    reports.push(StopReport {
        lane: idx,
        last_step: outcome.last_step,
        next_event: lane.sm.next_event(),
        needs_phase_b: outcome.needs_phase_b,
        retired_tb: outcome.retired_tb,
        parked: can_park,
    });
    if can_park {
        parked.push((idx, lane));
    } else {
        home.push((idx, lane));
    }
}

/// A persistent set of phase-A workers (created once per simulator).
pub(crate) struct WorkerPool {
    job_txs: Vec<Sender<Job>>,
    done_rx: Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
    /// Recycled outgoing lane buffers.
    spare: Vec<Vec<(usize, Box<Lane>)>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (callers pass `threads - 1`: the
    /// coordinator itself executes the remaining share inline).
    pub fn new(workers: usize) -> Self {
        let (done_tx, done_rx) = channel::<Done>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(rx, done_tx)));
            job_txs.push(tx);
        }
        WorkerPool {
            job_txs,
            done_rx,
            handles,
            spare: Vec::new(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.job_txs.len()
    }

    /// A recycled lane buffer for building the next job.
    pub fn buffer(&mut self) -> Vec<(usize, Box<Lane>)> {
        self.spare.pop().unwrap_or_default()
    }

    /// Sends a job to worker `w`.
    pub fn send(&self, w: usize, job: Job) {
        self.job_txs[w]
            .send(job)
            .expect("pool worker outlives the simulator"); // simlint: allow(hot-unwrap, reason = "workers only exit when the pool drops their channel")
    }

    /// Receives one completed job.
    pub fn recv(&mut self) -> Done {
        self.done_rx
            .recv()
            .expect("every dispatched job is answered") // simlint: allow(hot-unwrap, reason = "workers reply even on panic via catch_unwind")
    }

    /// Returns a drained lane buffer to the recycle pile.
    pub fn recycle(&mut self, mut buf: Vec<(usize, Box<Lane>)>) {
        buf.clear();
        self.spare.push(buf);
    }
}

/// Runs sharded phase-B drain tasks on scoped threads — the only other
/// parallelism in the engine besides the persistent lane workers (and,
/// like them, confined to this module by simlint's `engine-spawn`
/// rule). Drain tasks borrow the kernel's live state, so they cannot
/// ride the pool's long-lived channels; a scope per drain is cheap
/// because the engine only shards large batches.
pub(crate) struct ScopedExec {
    /// Total executors (coordinator included) to spread tasks over.
    pub threads: usize,
    /// Consecutive tasks dealt to one executor before the deal moves on
    /// (1 = pure round-robin). Tasks are mutually independent, so the
    /// deal only shifts wall-clock balance, never output.
    pub chunk: usize,
}

impl mem_hier::DrainExec for ScopedExec {
    fn run<'a>(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        let n = self.threads.min(tasks.len());
        if n <= 1 {
            for t in tasks.drain(..) {
                t();
            }
            return;
        }
        let chunk = self.chunk.max(1);
        let mut chunks: Vec<Vec<Box<dyn FnOnce() + Send + 'a>>> =
            (0..n).map(|_| Vec::new()).collect();
        for (i, t) in tasks.drain(..).enumerate() {
            chunks[(i / chunk) % n].push(t);
        }
        std::thread::scope(|s| {
            let mut it = chunks.into_iter();
            let own = it.next();
            for c in it {
                s.spawn(move || {
                    for t in c {
                        t();
                    }
                });
            }
            // The coordinator executes its own share instead of idling.
            if let Some(c) = own {
                for t in c {
                    t();
                }
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops; join so no
        // detached thread outlives the simulator.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
