//! Warp scheduling policies.
//!
//! Table III specifies a Greedy-then-Oldest (GTO) dual warp scheduler;
//! [`GtoWarpScheduler`] is the default. [`LrrWarpScheduler`] (loose round
//! robin) is the classic contrast. The paper's §VII future work —
//! *translation reuse-aware warp scheduling* — is implemented in the
//! `orchestrated-tlb` crate on top of this trait.

/// What a warp scheduler can see about one resident warp at issue time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WarpView {
    /// Stable per-SM warp id (monotonically assigned in launch order, so
    /// lower id = older warp).
    pub id: u32,
    /// Hardware TB slot the warp belongs to.
    pub tb_slot: u8,
    /// Whether the warp can issue this cycle.
    pub ready: bool,
}

/// A per-SM warp scheduling policy.
///
/// `pick` receives the SM's live warps (unfinished, unretired) in launch
/// order and returns the index of the warp to issue, or `None` when no
/// warp is ready. The engine reports each actual issue back through
/// [`WarpScheduler::issued`] so stateful policies (greedy, round-robin
/// pointers) can track it.
///
/// `Send` is a supertrait: each scheduler lives inside its SM's runtime
/// state, which the engine's phase-A workers step on worker threads
/// (schedulers are plain owned data, so this costs implementors nothing).
pub trait WarpScheduler: Send {
    /// Chooses the next warp to issue from `warps` (an index into the
    /// slice), or `None` if none is ready.
    fn pick(&mut self, warps: &[WarpView]) -> Option<usize>;

    /// Notification that `warp` issued.
    fn issued(&mut self, warp: WarpView) {
        let _ = warp;
    }

    /// Policy name for reports.
    fn name(&self) -> &str;
}

/// Greedy-then-Oldest: keep issuing from the last-issued warp while it is
/// ready; otherwise fall back to the oldest ready warp (Table III's
/// baseline policy).
///
/// # Example
///
/// ```
/// use gpu_sim::{GtoWarpScheduler, WarpScheduler, WarpView};
///
/// let mut gto = GtoWarpScheduler::new();
/// let w = |id, ready| WarpView { id, tb_slot: 0, ready };
/// // Oldest ready warp first.
/// assert_eq!(gto.pick(&[w(0, false), w(1, true), w(2, true)]), Some(1));
/// gto.issued(w(1, true));
/// // Greedy: stays on warp 1 while it remains ready.
/// assert_eq!(gto.pick(&[w(0, true), w(1, true), w(2, true)]), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GtoWarpScheduler {
    last: Option<u32>,
}

impl GtoWarpScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for GtoWarpScheduler {
    fn pick(&mut self, warps: &[WarpView]) -> Option<usize> {
        if let Some(last) = self.last {
            // Launch order means ascending (unique) ids, so the greedy
            // warp — the common case — is found by binary search rather
            // than a scan.
            debug_assert!(warps.windows(2).all(|w| w[0].id < w[1].id));
            if let Ok(i) = warps.binary_search_by_key(&last, |w| w.id) {
                if warps[i].ready {
                    return Some(i);
                }
            }
        }
        // Oldest = lowest stable id; launch order preserves it.
        warps.iter().position(|w| w.ready)
    }

    fn issued(&mut self, warp: WarpView) {
        self.last = Some(warp.id);
    }

    fn name(&self) -> &str {
        "gto"
    }
}

/// Loose round robin: rotate through ready warps starting after the last
/// issued one — maximal fairness, minimal locality.
#[derive(Debug, Clone, Default)]
pub struct LrrWarpScheduler {
    last: Option<u32>,
}

impl LrrWarpScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for LrrWarpScheduler {
    fn pick(&mut self, warps: &[WarpView]) -> Option<usize> {
        if warps.is_empty() {
            return None;
        }
        let start = self
            .last
            .and_then(|last| warps.iter().position(|w| w.id > last))
            .unwrap_or(0);
        (0..warps.len())
            .map(|k| (start + k) % warps.len())
            .find(|&i| warps[i].ready)
    }

    fn issued(&mut self, warp: WarpView) {
        self.last = Some(warp.id);
    }

    fn name(&self) -> &str {
        "lrr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(id: u32, tb: u8, ready: bool) -> WarpView {
        WarpView {
            id,
            tb_slot: tb,
            ready,
        }
    }

    #[test]
    fn gto_prefers_last_issued() {
        let mut s = GtoWarpScheduler::new();
        let warps = [w(0, 0, true), w(1, 0, true), w(2, 1, true)];
        assert_eq!(s.pick(&warps), Some(0));
        s.issued(w(2, 1, true));
        assert_eq!(s.pick(&warps), Some(2), "greedy on warp 2");
        // Warp 2 stalls: oldest ready wins.
        let warps = [w(0, 0, true), w(1, 0, true), w(2, 1, false)];
        assert_eq!(s.pick(&warps), Some(0));
    }

    #[test]
    fn gto_survives_compaction() {
        let mut s = GtoWarpScheduler::new();
        s.issued(w(5, 0, true));
        // Warp 5 retired and was compacted away: fall back to oldest.
        let warps = [w(6, 0, true), w(7, 0, true)];
        assert_eq!(s.pick(&warps), Some(0));
    }

    #[test]
    fn lrr_rotates() {
        let mut s = LrrWarpScheduler::new();
        let warps = [w(0, 0, true), w(1, 0, true), w(2, 0, true)];
        assert_eq!(s.pick(&warps), Some(0));
        s.issued(w(0, 0, true));
        assert_eq!(s.pick(&warps), Some(1));
        s.issued(w(1, 0, true));
        assert_eq!(s.pick(&warps), Some(2));
        s.issued(w(2, 1, true));
        assert_eq!(s.pick(&warps), Some(0), "wraps around");
    }

    #[test]
    fn lrr_skips_stalled() {
        let mut s = LrrWarpScheduler::new();
        s.issued(w(0, 0, true));
        let warps = [w(0, 0, true), w(1, 0, false), w(2, 0, true)];
        assert_eq!(s.pick(&warps), Some(2));
    }

    #[test]
    fn none_when_nothing_ready() {
        let mut gto = GtoWarpScheduler::new();
        let mut lrr = LrrWarpScheduler::new();
        let warps = [w(0, 0, false)];
        assert_eq!(gto.pick(&warps), None);
        assert_eq!(lrr.pick(&warps), None);
        assert_eq!(gto.pick(&[]), None);
        assert_eq!(lrr.pick(&[]), None);
    }
}
