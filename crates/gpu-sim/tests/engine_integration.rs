//! Integration tests for the timing engine: hand-built workloads with
//! known answers, plus conservation and policy-behaviour checks.

use gpu_sim::{
    GpuConfig, GtoWarpScheduler, LrrWarpScheduler, RoundRobinScheduler, Simulator, TbScheduler,
    WarpScheduler,
};
use vmem::{AddressSpace, PageSize};
use workloads::{KernelTrace, LaneAccesses, TbTrace, WarpOp, Workload, LANES_PER_WARP};

/// Builds a workload with `tbs` thread blocks, each one warp issuing
/// `ops` contiguous loads over a private region.
fn simple_workload(tbs: usize, ops: usize) -> Workload {
    let mut space = AddressSpace::new(PageSize::Small);
    let buf = space
        .allocate("data", (tbs * ops * 128) as u64)
        .expect("fresh space");
    let mut traces = Vec::with_capacity(tbs);
    for t in 0..tbs {
        let mut tb = TbTrace::with_warps(1);
        let warp = tb.warp_mut(0);
        for o in 0..ops {
            warp.push(WarpOp::Load(LaneAccesses::contiguous(
                buf.addr_of(((t * ops + o) * 128) as u64),
                4,
                LANES_PER_WARP as u8,
            )));
        }
        traces.push(tb);
    }
    let kernel = KernelTrace {
        name: "simple".into(),
        tbs: traces,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: 32,
    };
    Workload::new("simple", vec![kernel], space)
}

/// A compute-only workload: total time must be close to the serial sum of
/// compute latencies divided by available parallelism.
#[test]
fn compute_only_workload_time_is_predictable() {
    let mut space = AddressSpace::new(PageSize::Small);
    space.allocate("unused", 4096).unwrap();
    let mut tb = TbTrace::with_warps(1);
    for _ in 0..100 {
        tb.warp_mut(0).push(WarpOp::Compute { cycles: 10 });
    }
    let kernel = KernelTrace {
        name: "compute".into(),
        tbs: vec![tb],
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: 32,
    };
    let wl = Workload::new("compute", vec![kernel], space);
    let r = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
    // One warp, 100 dependent 10-cycle ops: ~1000 cycles plus small
    // dispatch overhead.
    assert!(r.total_cycles >= 1000, "cycles {}", r.total_cycles);
    assert!(r.total_cycles < 1100, "cycles {}", r.total_cycles);
    assert_eq!(r.instructions, 100);
    assert_eq!(r.transactions, 0);
}

/// Each distinct 128-byte line is one transaction; each distinct page one
/// TLB lookup.
#[test]
fn transaction_and_lookup_accounting() {
    let wl = simple_workload(4, 32); // 4 TBs x 32 line-distinct loads
    let r = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
    assert_eq!(r.instructions, 4 * 32);
    assert_eq!(r.transactions, 4 * 32);
    // 32 lines per TB = 4096 bytes = exactly one page per TB.
    assert_eq!(r.l1_tlb_aggregate().accesses(), 4 * 32);
    assert_eq!(r.demand_faults, 4);
}

/// More TBs than total slots: dispatch must proceed in waves and still
/// complete every TB exactly once.
#[test]
fn dispatch_waves_complete() {
    let config = GpuConfig {
        num_sms: 2,
        max_concurrent_tbs: 2,
        ..GpuConfig::dac23_baseline()
    };
    let wl = simple_workload(64, 8);
    let r = Simulator::new(config).run(wl);
    assert_eq!(r.tb_placements.iter().sum::<u32>(), 64);
    assert_eq!(r.tb_placements.len(), 2);
}

/// A scheduler that refuses to place while SMs are busy must not deadlock
/// the engine (progress is guaranteed once everything drains).
#[test]
fn reluctant_scheduler_cannot_deadlock() {
    #[derive(Debug)]
    struct Reluctant {
        rr: RoundRobinScheduler,
    }
    impl TbScheduler for Reluctant {
        fn pick_sm(&mut self, sms: &[gpu_sim::SmSnapshot]) -> Option<usize> {
            // Only place when every SM is completely idle.
            if sms.iter().any(|s| s.free_slots == 0) {
                return None;
            }
            self.rr.pick_sm(sms)
        }
        fn name(&self) -> &str {
            "reluctant"
        }
    }
    let config = GpuConfig {
        num_sms: 2,
        max_concurrent_tbs: 1,
        ..GpuConfig::dac23_baseline()
    };
    let wl = simple_workload(8, 4);
    let r = Simulator::new(config)
        .with_tb_scheduler(Box::new(Reluctant {
            rr: RoundRobinScheduler::new(),
        }))
        .run(wl);
    assert_eq!(r.tb_placements.iter().sum::<u32>(), 8);
}

/// GTO and LRR are both deterministic and produce valid (if different)
/// executions.
#[test]
fn warp_scheduler_policies_are_deterministic() {
    let run = |factory: fn() -> Box<dyn WarpScheduler>| -> (u64, u64) {
        let wl = simple_workload(32, 16);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_warp_scheduler_factory(Box::new(factory))
            .run(wl);
        (r.total_cycles, r.l1_tlb_aggregate().hits)
    };
    let gto = || Box::new(GtoWarpScheduler::new()) as Box<dyn WarpScheduler>;
    let lrr = || Box::new(LrrWarpScheduler::new()) as Box<dyn WarpScheduler>;
    assert_eq!(run(gto), run(gto));
    assert_eq!(run(lrr), run(lrr));
}

/// L1 TLBs are flushed per kernel launch by default; disabling the flush
/// preserves entries across kernels and can only help hit rates for a
/// workload that re-touches the same pages.
#[test]
fn kernel_launch_flush_toggle() {
    let build = || -> Workload {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("data", 64 * 4096).expect("fresh space");
        let kernel = |name: &str| -> KernelTrace {
            let mut tb = TbTrace::with_warps(1);
            for p in 0..32 {
                tb.warp_mut(0).push(WarpOp::Load(LaneAccesses::contiguous(
                    buf.addr_of(p * 4096),
                    4,
                    32,
                )));
            }
            KernelTrace {
                name: name.into(),
                tbs: vec![tb],
                max_concurrent_tbs_per_sm: 16,
                threads_per_tb: 32,
            }
        };
        Workload::new("twice", vec![kernel("k1"), kernel("k2")], space)
    };
    let flush = Simulator::new(GpuConfig::dac23_baseline()).run(build());
    let keep = Simulator::new(GpuConfig {
        flush_l1_tlb_on_kernel_launch: false,
        ..GpuConfig::dac23_baseline()
    })
    .run(build());
    assert!(
        keep.l1_tlb_aggregate().hits > flush.l1_tlb_aggregate().hits,
        "warm TLB across kernels must hit more: {} vs {}",
        keep.l1_tlb_aggregate().hits,
        flush.l1_tlb_aggregate().hits
    );
}

/// An L2 TLB with one port serializes miss floods: cycles can only grow
/// relative to unlimited ports.
#[test]
fn l2_tlb_port_contention_costs_time() {
    let run = |ports: usize| -> u64 {
        let wl = simple_workload(64, 64);
        Simulator::new(GpuConfig {
            l2_tlb_ports: ports,
            ..GpuConfig::dac23_baseline()
        })
        .run(wl)
        .total_cycles
    };
    assert!(run(1) >= run(16));
}

/// Holding a port for the full lookup latency (unpipelined L2 TLB) can
/// only add queueing relative to the baseline's fully pipelined ports
/// (occupancy 1, one cycle per granted lookup), and the added wait is
/// attributed to the L2 TLB queue component of the latency breakdown.
#[test]
fn l2_tlb_port_occupancy_costs_queue_time() {
    let run = |occupancy: u64| {
        let wl = simple_workload(64, 64);
        Simulator::new(GpuConfig {
            l2_tlb_port_occupancy: occupancy,
            ..GpuConfig::dac23_baseline()
        })
        .run(wl)
    };
    let pipelined = run(1);
    let unpipelined = run(10); // = the baseline's 10-cycle lookup latency
    assert!(unpipelined.total_cycles >= pipelined.total_cycles);
    assert!(
        unpipelined.latency.l2_tlb_queue_cycles >= pipelined.latency.l2_tlb_queue_cycles,
        "occupancy {} vs {} queue cycles",
        unpipelined.latency.l2_tlb_queue_cycles,
        pipelined.latency.l2_tlb_queue_cycles
    );
    // Identical TLB behavior: occupancy only shifts timing, never which
    // lookups hit.
    assert_eq!(unpipelined.l2_tlb.hits, pipelined.l2_tlb.hits);
    assert_eq!(unpipelined.l2_tlb.misses, pipelined.l2_tlb.misses);
    // Both runs satisfy the stage-sum identity.
    pipelined.latency.check().unwrap();
    unpipelined.latency.check().unwrap();
}

/// Slicing the L2 TLB preserves correctness (same hits/misses cannot be
/// guaranteed, but conservation holds and more slices with the same
/// total entries never changes the access count).
#[test]
fn sliced_l2_tlb_conserves_accesses() {
    let run = |slices: usize| {
        let wl = simple_workload(32, 32);
        Simulator::new(GpuConfig {
            l2_tlb_slices: slices,
            ..GpuConfig::dac23_baseline()
        })
        .run(wl)
    };
    let mono = run(1);
    let sliced = run(8);
    assert_eq!(
        mono.l2_tlb.accesses() + mono.l1_tlb_aggregate().hits,
        sliced.l2_tlb.accesses() + sliced.l1_tlb_aggregate().hits,
    );
    assert_eq!(mono.tb_placements, sliced.tb_placements);
}

/// Per-level walk latency makes huge-page walks (3 levels) cheaper than
/// small-page walks (4 levels).
#[test]
fn per_level_walk_latency_rewards_huge_pages() {
    use vmem::PageSize as Ps;
    let run = |ps: Ps| -> u64 {
        let mut space = AddressSpace::new(ps);
        let buf = space.allocate("d", 1 << 22).expect("fresh");
        let mut tb = TbTrace::with_warps(1);
        for p in 0..64u64 {
            tb.warp_mut(0).push(WarpOp::Load(LaneAccesses::contiguous(
                buf.addr_of(p * 4096),
                4,
                32,
            )));
        }
        let kernel = KernelTrace {
            name: "walks".into(),
            tbs: vec![tb],
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: 32,
        };
        Simulator::new(GpuConfig {
            walk_latency: 100,
            walk_latency_per_level: 100,
            ..GpuConfig::dac23_baseline()
        })
        .run(Workload::new("walks", vec![kernel], space))
        .total_cycles
    };
    assert!(
        run(Ps::Large) < run(Ps::Small),
        "3-level huge-page walks must be cheaper"
    );
}

/// Zero-memory workloads still terminate and report sensible stats.
#[test]
fn empty_and_degenerate_workloads() {
    let mut space = AddressSpace::new(PageSize::Small);
    space.allocate("x", 16).unwrap();
    // A kernel whose single TB has zero warps.
    let kernel = KernelTrace {
        name: "empty".into(),
        tbs: vec![TbTrace::with_warps(0)],
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: 32,
    };
    let wl = Workload::new("empty", vec![kernel], space);
    let r = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
    assert_eq!(r.instructions, 0);
    assert_eq!(r.tb_placements.iter().sum::<u32>(), 1);
}
