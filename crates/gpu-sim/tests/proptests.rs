//! Property-based tests for the timing engine over randomly generated
//! mini-workloads.

use gpu_sim::{GpuConfig, Simulator};
use proptest::prelude::*;
use vmem::{AddressSpace, PageSize};
use workloads::{KernelTrace, LaneAccesses, TbTrace, WarpOp, Workload};

/// Raw op stream: per TB, per warp, a list of (op kind, payload) pairs.
type RawOps = Vec<Vec<Vec<(u8, u64)>>>;

/// Strategy: a small random workload (1 kernel, random TBs/warps/ops).
fn arb_workload() -> impl Strategy<Value = (RawOps, u8)> {
    // Per TB, per warp: list of (op kind, payload).
    // kind 0: compute(payload%50+1); kind 1: contiguous load at offset;
    // kind 2: strided store at offset.
    let op = (0u8..3, 0u64..1 << 16);
    let warp = proptest::collection::vec(op, 1..10);
    let tb = proptest::collection::vec(warp, 1..4);
    let tbs = proptest::collection::vec(tb, 1..8);
    (tbs, 1u8..16)
}

fn build(spec: &[Vec<Vec<(u8, u64)>>], max_tbs: u8) -> Workload {
    let mut space = AddressSpace::new(PageSize::Small);
    let buf = space.allocate("data", 1 << 20).expect("fresh space");
    let mut tbs = Vec::new();
    for tb_spec in spec {
        let mut tb = TbTrace::with_warps(tb_spec.len());
        for (w, warp_spec) in tb_spec.iter().enumerate() {
            let warp = tb.warp_mut(w);
            for &(kind, payload) in warp_spec {
                let offset = payload % ((1 << 20) - 64 * 128);
                match kind {
                    0 => warp.push(WarpOp::Compute {
                        cycles: (payload % 50 + 1) as u32,
                    }),
                    1 => warp.push(WarpOp::Load(LaneAccesses::contiguous(
                        buf.addr_of(offset),
                        4,
                        32,
                    ))),
                    _ => warp.push(WarpOp::Store(LaneAccesses::Strided {
                        base: buf.addr_of(offset),
                        stride: 128,
                        active_lanes: 32,
                    })),
                }
            }
        }
        tbs.push(tb);
    }
    let kernel = KernelTrace {
        name: "random".into(),
        tbs,
        max_concurrent_tbs_per_sm: max_tbs,
        threads_per_tb: 32 * 4,
    };
    Workload::new("random", vec![kernel], space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random workload terminates, conserves instructions and TBs,
    /// and produces self-consistent counters.
    #[test]
    fn random_workloads_satisfy_invariants((spec, max_tbs) in arb_workload()) {
        let wl = build(&spec, max_tbs);
        let total_ops = wl.total_warp_ops() as u64;
        let total_tbs = wl.kernels()[0].tbs.len() as u32;
        let r = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
        prop_assert_eq!(r.instructions, total_ops);
        prop_assert_eq!(r.tb_placements.iter().sum::<u32>(), total_tbs);
        prop_assert!(r.total_cycles > 0);
        let l1 = r.l1_tlb_aggregate();
        prop_assert!(l1.accesses() <= r.transactions);
        prop_assert_eq!(r.l2_tlb.accesses(), l1.misses);
        // Walks can never exceed L2 misses, and faults never exceed walks.
        prop_assert!(r.walker.walks <= r.l2_tlb.misses);
        prop_assert!(r.demand_faults <= r.walker.walks);
    }

    /// Determinism: identical random workloads give identical reports.
    #[test]
    fn random_workloads_are_deterministic((spec, max_tbs) in arb_workload()) {
        let a = Simulator::new(GpuConfig::dac23_baseline()).run(build(&spec, max_tbs));
        let b = Simulator::new(GpuConfig::dac23_baseline()).run(build(&spec, max_tbs));
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.l1_tlb_aggregate(), b.l1_tlb_aggregate());
        prop_assert_eq!(a.transactions, b.transactions);
    }

    /// Monotonicity: raising the walk latency never makes execution
    /// faster (all else fixed).
    #[test]
    fn walk_latency_is_monotone((spec, max_tbs) in arb_workload()) {
        let fast = Simulator::new(GpuConfig {
            walk_latency: 100,
            ..GpuConfig::dac23_baseline()
        })
        .run(build(&spec, max_tbs));
        let slow = Simulator::new(GpuConfig {
            walk_latency: 1000,
            ..GpuConfig::dac23_baseline()
        })
        .run(build(&spec, max_tbs));
        prop_assert!(slow.total_cycles >= fast.total_cycles);
    }
}
