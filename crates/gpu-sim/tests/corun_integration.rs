//! Engine-level multi-tenancy contract: co-runs of concurrent address
//! spaces are deterministic across `--sim-threads`, per-app accounting
//! sums back to the aggregate counters, and every shared-L2-TLB policy
//! (plain sharing, MASK-style fill tokens, sub-entry sharing) survives a
//! sanitized co-run.

use gpu_sim::{GpuConfig, L2Policy, Simulator};
use tlb::TlbStats;
use workloads::{extended_registry, Scale, Workload};

fn app(name: &str) -> Workload {
    extended_registry()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap()
        .generate(Scale::Test, 42)
}

fn mix() -> Vec<Workload> {
    vec![app("gemm"), app("bfs")]
}

fn sum(stats: impl IntoIterator<Item = TlbStats>) -> TlbStats {
    stats.into_iter().fold(TlbStats::default(), |a, b| a + b)
}

/// Per-app L1/L2 TLB counters partition the aggregate exactly: the
/// eviction-to-victim attribution convention conserves every counter,
/// so fairness figures never double- or under-count traffic.
#[test]
fn per_app_tlb_stats_sum_to_aggregate() {
    let report = Simulator::new(GpuConfig::dac23_baseline())
        .with_sanitizer(true)
        .run_corun(mix());
    assert_eq!(report.per_app.len(), 2);
    assert_eq!(report.per_app[0].workload, "gemm");
    assert_eq!(report.per_app[1].workload, "bfs");
    assert_eq!(
        sum(report.per_app.iter().map(|a| a.l1_tlb)),
        sum(report.l1_tlb.iter().copied()),
        "per-app L1 TLB stats must partition the per-SM aggregate"
    );
    assert_eq!(
        sum(report.per_app.iter().map(|a| a.l2_tlb)),
        report.l2_tlb,
        "per-app L2 TLB stats must partition the shared aggregate"
    );
    // Both apps saw traffic, and each finished no later than the run.
    for a in &report.per_app {
        assert!(a.l1_tlb.lookups > 0, "{} issued no lookups", a.workload);
        assert!(a.cycles > 0 && a.cycles <= report.total_cycles);
    }
}

/// Every shared-L2 policy co-runs deterministically: serial and 4-thread
/// replays produce the same CSV row (including the append-only per-app
/// columns) and the same per-app reports, with the sanitizer's
/// ASID-aware invariants enabled throughout. The MASK quota here is
/// deliberately tiny so the token gate actually starves fills.
#[test]
fn l2_policies_corun_sanitized_and_thread_invariant() {
    for policy in [
        L2Policy::Shared,
        L2Policy::MaskTokens { quota: 4 },
        L2Policy::SubEntry { subs: 2 },
    ] {
        let run = |threads: usize| {
            Simulator::new(
                GpuConfig::dac23_baseline().with_l2_policy(policy),
            )
            .with_sanitizer(true)
            .with_sim_threads(threads)
            .run_corun(mix())
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            let parallel = run(threads);
            assert_eq!(
                serial.to_csv_row(),
                parallel.to_csv_row(),
                "{policy:?} CSV row diverged at {threads} threads"
            );
            assert_eq!(
                serial.per_app, parallel.per_app,
                "{policy:?} per-app reports diverged at {threads} threads"
            );
        }
        assert_eq!(
            sum(serial.per_app.iter().map(|a| a.l2_tlb)),
            serial.l2_tlb,
            "{policy:?} per-app L2 stats must still partition the aggregate"
        );
    }
}

/// A starved MASK quota changes timing but never correctness: the run
/// completes, both apps finish, and translation accounting still checks.
#[test]
fn mask_token_starvation_completes_soundly() {
    let report = Simulator::new(
        GpuConfig::dac23_baseline().with_l2_policy(L2Policy::MaskTokens { quota: 1 }),
    )
    .with_sanitizer(true)
    .run_corun(mix());
    assert_eq!(report.per_app.len(), 2);
    report
        .latency
        .check()
        .expect("latency attribution must survive token bypass");
    for a in &report.per_app {
        assert!(a.cycles > 0, "{} never finished under starvation", a.workload);
    }
}

/// Co-runs scale to wider mixes (4 and 8 apps) and keep the per-app
/// partition identity at every width.
#[test]
fn wide_mixes_keep_per_app_identities() {
    let names = ["gemm", "bfs", "mvt", "atax", "bicg", "mlp", "pagerank", "nw"];
    for width in [4usize, 8] {
        let apps: Vec<Workload> = names[..width].iter().map(|n| app(n)).collect();
        let report = Simulator::new(GpuConfig::dac23_baseline()).run_corun(apps);
        assert_eq!(report.per_app.len(), width);
        for (k, a) in report.per_app.iter().enumerate() {
            assert_eq!(a.asid as usize, k, "per-app entries are in ASID order");
            assert_eq!(a.workload, names[k]);
        }
        assert_eq!(
            sum(report.per_app.iter().map(|a| a.l1_tlb)),
            sum(report.l1_tlb.iter().copied()),
            "{width}-app L1 partition identity"
        );
        assert_eq!(
            sum(report.per_app.iter().map(|a| a.l2_tlb)),
            report.l2_tlb,
            "{width}-app L2 partition identity"
        );
    }
}
