//! Simulator-throughput benches: how fast the cycle engine itself runs,
//! in warp instructions per second, across workload shapes and TLB
//! organizations. (The figure benches measure *what* the simulator
//! reports; these measure the simulator as a program.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::{GpuConfig, Simulator};
use orchestrated_tlb::Mechanism;
use std::time::Duration;
use workloads::{registry, Scale};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for name in ["gemm", "bfs", "atax"] {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let ops = spec.generate(Scale::Test, 42).total_warp_ops() as u64;
        group.throughput(Throughput::Elements(ops));
        group.bench_function(name, |b| {
            b.iter(|| {
                let wl = spec.generate(Scale::Test, 42);
                Simulator::new(GpuConfig::dac23_baseline())
                    .run(std::hint::black_box(wl))
                    .total_cycles
            })
        });
    }
    group.finish();
}

fn bench_tlb_organizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_organization_cost");
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
    let ops = spec.generate(Scale::Test, 42).total_warp_ops() as u64;
    for m in [Mechanism::Baseline, Mechanism::Full, Mechanism::Compression] {
        group.throughput(Throughput::Elements(ops));
        group.bench_function(m.label(), |b| {
            b.iter(|| {
                let wl = spec.generate(Scale::Test, 42);
                m.simulator(GpuConfig::dac23_baseline())
                    .run(std::hint::black_box(wl))
                    .total_cycles
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for name in ["pagerank", "nw"] {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(spec.generate(Scale::Test, 42)).total_warp_ops())
        });
    }
    group.finish();
}

criterion_group! {
    name = throughput;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_engine_throughput, bench_tlb_organizations,
              bench_workload_generation
}
criterion_main!(throughput);
