//! Simulator-throughput benches: how fast the cycle engine itself runs,
//! in warp instructions per second, across workload shapes and TLB
//! organizations. (The figure benches measure *what* the simulator
//! reports; these measure the simulator as a program.)

use bench::{fig10_11_grid, Grid};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::{GpuConfig, Simulator};
use orchestrated_tlb::Mechanism;
use std::sync::Arc;
use std::time::Duration;
use workloads::{registry, Scale, WorkloadCache};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for name in ["gemm", "bfs", "atax"] {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let ops = spec.generate(Scale::Test, 42).total_warp_ops() as u64;
        group.throughput(Throughput::Elements(ops));
        group.bench_function(name, |b| {
            b.iter(|| {
                let wl = spec.generate(Scale::Test, 42);
                Simulator::new(GpuConfig::dac23_baseline())
                    .run(std::hint::black_box(wl))
                    .total_cycles
            })
        });
    }
    group.finish();
}

fn bench_tlb_organizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_organization_cost");
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
    let ops = spec.generate(Scale::Test, 42).total_warp_ops() as u64;
    for m in [Mechanism::Baseline, Mechanism::Full, Mechanism::Compression] {
        group.throughput(Throughput::Elements(ops));
        group.bench_function(m.label(), |b| {
            b.iter(|| {
                let wl = spec.generate(Scale::Test, 42);
                m.simulator(GpuConfig::dac23_baseline())
                    .run(std::hint::black_box(wl))
                    .total_cycles
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for name in ["pagerank", "nw"] {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(spec.generate(Scale::Test, 42)).total_warp_ops())
        });
    }
    group.finish();
}

/// Grid throughput: the Figure 10/11 cell grid run serially vs over the
/// parallel worker pool, in grid cells per second. A third variant keeps
/// the workload cache warm across iterations to isolate the cache's
/// contribution from the thread-level speedup.
fn bench_grid_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_throughput");
    let specs: Vec<_> = registry().into_iter().take(4).collect();
    let cells = (specs.len() * Mechanism::figure10().len()) as u64;
    group.throughput(Throughput::Elements(cells));
    group.bench_function("serial_jobs1", |b| {
        b.iter(|| fig10_11_grid(&specs, Scale::Test, &Grid::new(1)).len())
    });
    group.bench_function("parallel_default_jobs", |b| {
        b.iter(|| fig10_11_grid(&specs, Scale::Test, &Grid::new(0)).len())
    });
    let warm = Arc::new(WorkloadCache::new());
    group.bench_function("parallel_warm_cache", |b| {
        b.iter(|| {
            fig10_11_grid(&specs, Scale::Test, &Grid::with_cache(0, Arc::clone(&warm))).len()
        })
    });
    group.finish();
}

criterion_group! {
    name = throughput;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_engine_throughput, bench_tlb_organizations,
              bench_workload_generation, bench_grid_throughput
}
criterion_main!(throughput);
