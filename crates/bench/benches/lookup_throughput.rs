//! Raw TLB lookup throughput: how fast `TranslationBuffer::lookup`
//! itself runs, per organization, under the three access mixes the
//! engine actually produces. This isolates the serial hot path the
//! memo fast path targets — no engine, no memory hierarchy, just the
//! lookup loop — so a regression here is a lookup regression, not a
//! scheduling artifact.
//!
//! Mixes:
//! - `reuse`: long same-page runs per TB slot (warp instructions
//!   re-touching their MRU page line after line) — the memo fast
//!   path's home turf.
//! - `hit`: resident working set cycled page by page — tag-walk hits;
//!   the memo rarely matches because consecutive lookups differ.
//! - `miss`: a fresh page nearly every lookup, with the miss filled
//!   (lookup + insert), exercising eviction and memo invalidation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig};
use std::time::Duration;
use tlb::{
    CompressedTlb, CompressionConfig, SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer,
};
use vmem::{Ppn, Vpn};

/// Lookups per measured iteration (also the criterion throughput unit).
const OPS: usize = 4096;
/// TB slots cycling through the mixes (the engine's Kepler cap is 16;
/// 8 keeps every partitioned group populated without aliasing away).
const SLOTS: u8 = 8;

/// One scripted lookup, with the PPN used to fill on a miss.
struct Op {
    req: TlbRequest,
    fill: Ppn,
}

fn op(vpn: u64, slot: u8) -> Op {
    Op {
        req: TlbRequest::new(Vpn::new(vpn), slot % SLOTS),
        fill: Ppn::new(vpn ^ 0x5_0000),
    }
}

/// `reuse`: runs of 16 consecutive lookups to one page before the slot
/// moves to its next page.
fn reuse_mix() -> Vec<Op> {
    (0..OPS)
        .map(|i| {
            let run = i / 16;
            op(0x100 + (run % 24) as u64, (run % SLOTS as usize) as u8)
        })
        .collect()
}

/// `hit`: each slot cycles a small resident set, never repeating the
/// page it just touched.
fn hit_mix() -> Vec<Op> {
    (0..OPS)
        .map(|i| op(0x100 + (i % 24) as u64, (i % SLOTS as usize) as u8))
        .collect()
}

/// `miss`: a widely-strided page walk that defeats every organization's
/// capacity (fills keep the structures churning).
fn miss_mix() -> Vec<Op> {
    (0..OPS)
        .map(|i| op(0x1000 + (i as u64) * 7, (i % SLOTS as usize) as u8))
        .collect()
}

/// Runs the scripted mix, filling misses, and returns a latency sum the
/// optimizer cannot elide.
fn drive(tlb: &mut dyn TranslationBuffer, ops: &[Op]) -> u64 {
    let mut acc = 0u64;
    for o in ops {
        let out = tlb.lookup(&o.req);
        acc += out.latency + out.hit as u64;
        if !out.hit {
            tlb.insert(&o.req, o.fill);
        }
    }
    acc
}

/// A named constructor for one TLB implementation under test.
type MechanismCtor = (&'static str, Box<dyn Fn() -> Box<dyn TranslationBuffer>>);

fn bench_lookup_throughput(c: &mut Criterion) {
    let mechanisms: Vec<MechanismCtor> = vec![
        (
            "set_assoc",
            Box::new(|| Box::new(SetAssocTlb::new(TlbConfig::dac23_l1()))),
        ),
        (
            "partitioned",
            Box::new(|| Box::new(PartitionedTlb::new(PartitionedTlbConfig::with_sharing()))),
        ),
        (
            "compressed",
            Box::new(|| {
                Box::new(CompressedTlb::new(
                    TlbConfig::dac23_l1(),
                    CompressionConfig::pact20(),
                ))
            }),
        ),
    ];
    let mixes: [(&str, Vec<Op>); 3] = [
        ("reuse", reuse_mix()),
        ("hit", hit_mix()),
        ("miss", miss_mix()),
    ];

    let mut group = c.benchmark_group("lookup_throughput");
    group.throughput(Throughput::Elements(OPS as u64));
    for (mech, build) in &mechanisms {
        for (mix, ops) in &mixes {
            // One persistent TLB per bench: the warm-up iterations fill
            // the resident set, so measured iterations see the steady
            // state of the mix (all-hit for `reuse`/`hit`, churn for
            // `miss`).
            let mut tlb = build();
            tlb.set_concurrent_tbs(SLOTS);
            group.bench_function(&format!("{mech}_{mix}"), |b| {
                b.iter(|| std::hint::black_box(drive(tlb.as_mut(), ops)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = lookup_throughput;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_lookup_throughput
}
criterion_main!(lookup_throughput);
