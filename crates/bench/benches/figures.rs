//! Criterion benches that regenerate every table and figure of the paper.
//!
//! Each group first prints the paper-series rows (at the calibrated
//! `Scale::Small` evaluation size, matching EXPERIMENTS.md) and then
//! times the underlying harness at `Scale::Test` so `cargo bench` also
//! reports simulator throughput.

use bench::{fig10_11, fig12, fig2, fig3_4, fig5_6, geomean, hugepage, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{registry, Scale};

fn config(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_table2(c: &mut Criterion) {
    println!("\n=== Table II: workload registry (Scale::Small) ===");
    for spec in registry() {
        let wl = spec.generate(Scale::Small, SEED);
        println!(
            "  {:<10} {:<10} kernels={:<3} TBs={:<6} footprint={:.2} MiB",
            spec.name,
            format!("{:?}", spec.suite),
            wl.kernels().len(),
            wl.kernels().iter().map(|k| k.tbs.len()).sum::<usize>(),
            wl.footprint_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
    config(c).bench_function("table2_workload_generation", |b| {
        b.iter(|| {
            let spec = &registry()[0];
            std::hint::black_box(spec.generate(Scale::Test, SEED)).total_warp_ops()
        })
    });
}

fn bench_fig02(c: &mut Criterion) {
    println!("\n=== Figure 2: L1 TLB hit rate, 64 vs 256 entries (Scale::Small) ===");
    for r in fig2(Scale::Small) {
        println!(
            "  {:<10} {:>5.1}% -> {:>5.1}%",
            r.bench,
            r.hit_64 * 100.0,
            r.hit_256 * 100.0
        );
    }
    config(c).bench_function("fig02_hit_rate_capacity", |b| {
        b.iter(|| std::hint::black_box(fig2(Scale::Test)))
    });
}

fn bench_fig03_04(c: &mut Criterion) {
    println!("\n=== Figures 3/4: reuse-intensity bins b1..b5 (Scale::Small) ===");
    for r in fig3_4(Scale::Small, Some(64)) {
        let fmt = |b: &[f64; 5]| {
            b.iter()
                .map(|x| format!("{:3.0}%", x * 100.0))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "  {:<10} inter [{}]  intra [{}]",
            r.bench,
            fmt(&r.inter),
            fmt(&r.intra)
        );
    }
    config(c).bench_function("fig03_04_reuse_intensity", |b| {
        b.iter(|| std::hint::black_box(fig3_4(Scale::Test, Some(32))))
    });
}

fn bench_fig05_06(c: &mut Criterion) {
    println!("\n=== Figures 5/6: reuse-distance CDF at the 64-entry reach (Scale::Small) ===");
    for r in fig5_6(Scale::Small) {
        let at64 = |pts: &[(u64, f64)]| {
            pts.iter()
                .find(|(x, _)| *x == 64)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        println!(
            "  {:<10} P[d<=64]: concurrent {:>4.0}%  one-TB {:>4.0}%  beyond-reach {:>4.0}%",
            r.bench,
            at64(&r.concurrent) * 100.0,
            at64(&r.isolated) * 100.0,
            r.beyond_reach * 100.0
        );
    }
    config(c).bench_function("fig05_06_reuse_distance", |b| {
        b.iter(|| std::hint::black_box(fig5_6(Scale::Test)))
    });
}

fn bench_fig10_11(c: &mut Criterion) {
    println!("\n=== Figures 10/11: hit rates and normalized time (Scale::Small) ===");
    let rows = fig10_11(Scale::Small);
    for r in &rows {
        println!(
            "  {:<10} hit {:>5.1}/{:>5.1}/{:>5.1}/{:>5.1}%  time {:.3}/{:.3}/{:.3}/{:.3}",
            r.bench,
            r.hit_rates[0] * 100.0,
            r.hit_rates[1] * 100.0,
            r.hit_rates[2] * 100.0,
            r.hit_rates[3] * 100.0,
            r.norm_time[0],
            r.norm_time[1],
            r.norm_time[2],
            r.norm_time[3],
        );
    }
    for (i, label) in ["baseline", "sched", "sched+part", "+share"].iter().enumerate() {
        let g = geomean(rows.iter().map(|r| r.norm_time[i]));
        println!("  geomean {label}: {g:.3} ({:+.1}%)", (g - 1.0) * 100.0);
    }
    config(c).bench_function("fig10_11_mechanisms", |b| {
        b.iter(|| {
            let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
            std::hint::black_box(bench::fig10_11_one(&spec, Scale::Test))
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    println!("\n=== Figure 12: ours + compression vs compression alone (Scale::Small) ===");
    let rows = fig12(Scale::Small);
    for r in &rows {
        println!("  {:<10} {:.3}x", r.bench, r.speedup);
    }
    println!(
        "  geomean {:.3}x (paper: 1.104x)",
        geomean(rows.iter().map(|r| r.speedup))
    );
    config(c).bench_function("fig12_compression", |b| {
        b.iter(|| std::hint::black_box(fig12(Scale::Test)))
    });
}

fn bench_hugepage(c: &mut Criterion) {
    println!("\n=== Section V huge-page study (Scale::Small) ===");
    let rows = hugepage(Scale::Small);
    for r in &rows {
        println!(
            "  {:<10} hit(2MiB) {:>5.1}%  ours time {:.3}",
            r.bench,
            r.hit_rate_huge * 100.0,
            r.norm_time_ours
        );
    }
    println!(
        "  geomean ours@2MiB: {:.3}",
        geomean(rows.iter().map(|r| r.norm_time_ours))
    );
    config(c).bench_function("hugepage_study", |b| {
        b.iter(|| std::hint::black_box(hugepage(Scale::Test)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_table2, bench_fig02, bench_fig03_04, bench_fig05_06,
              bench_fig10_11, bench_fig12, bench_hugepage
}
criterion_main!(figures);
