//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. sharing policy (partition-only vs empty-slot spill vs the full
//!    displacement spill),
//! 2. the multi-set lookup-overhead model (on vs off),
//! 3. the TB scheduler's miss-rate tolerance,
//! 4. page size (4 KiB vs 2 MiB),
//! 5. PACT'20 compression degree.
//!
//! Each group prints the sweep's measured series (at `Scale::Small`),
//! then times one representative configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{
    GpuConfig, GtoWarpScheduler, LrrWarpScheduler, SimReport, Simulator, WarpScheduler,
};
use orchestrated_tlb::{
    PartitionedTlb, PartitionedTlbConfig, SharingPolicy, TbClusteredWarpScheduler,
    ThrottlingTlbAwareScheduler, TlbAwareScheduler, WayPartitionedTlb,
};
use std::time::Duration;
use tlb::{CompressedTlb, CompressionConfig, TranslationBuffer};
use vmem::PageSize;
use workloads::{registry, Scale};

const SEED: u64 = 42;

fn run_with_partitioned(bench: &str, cfg: PartitionedTlbConfig, scale: Scale) -> SimReport {
    let spec = registry().into_iter().find(|s| s.name == bench).unwrap();
    let wl = spec.generate(scale, SEED);
    Simulator::new(GpuConfig::dac23_baseline())
        .with_tb_scheduler(Box::new(TlbAwareScheduler::new()))
        .with_l1_tlb_factory(Box::new(move |_| {
            Box::new(PartitionedTlb::new(cfg)) as Box<dyn TranslationBuffer>
        }))
        .run(wl)
}

/// Sharing-policy ablation on a graph benchmark (where partitioning alone
/// collapses the hit rate).
fn ablation_sharing(c: &mut Criterion) {
    println!("\n=== Ablation: sharing policy (pagerank, Scale::Small) ===");
    let configs = [
        ("partition-only", PartitionedTlbConfig::partition_only()),
        (
            "empty-slot spill",
            PartitionedTlbConfig {
                sharing: SharingPolicy::Adjacent,
                displacement_margin: u64::MAX, // only truly empty ways
                ..PartitionedTlbConfig::partition_only()
            },
        ),
        ("displacement spill", PartitionedTlbConfig::with_sharing()),
        (
            "counter threshold 4",
            PartitionedTlbConfig {
                sharing: SharingPolicy::AdjacentCounter { threshold: 4 },
                ..PartitionedTlbConfig::with_sharing()
            },
        ),
        (
            "all-to-all",
            PartitionedTlbConfig {
                sharing: SharingPolicy::AllToAll,
                ..PartitionedTlbConfig::with_sharing()
            },
        ),
    ];
    for (label, cfg) in configs {
        let r = run_with_partitioned("pagerank", cfg, Scale::Small);
        println!(
            "  {:<20} L1 hit {:>5.1}%  cycles {:>10}",
            label,
            r.l1_tlb_hit_rate() * 100.0,
            r.total_cycles
        );
    }
    println!(
        "  (all-to-all trades its capacity win for a whole-TLB probe on \
         every lookup — the overhead the paper rejects)"
    );
    c.bench_function("ablation_sharing_policy", |b| {
        b.iter(|| {
            std::hint::black_box(run_with_partitioned(
                "pagerank",
                PartitionedTlbConfig::with_sharing(),
                Scale::Test,
            ))
            .total_cycles
        })
    });
}

/// Lookup-overhead ablation: the paper includes the multi-set probe cost;
/// turning it off models ideal comparators.
fn ablation_lookup_overhead(c: &mut Criterion) {
    println!("\n=== Ablation: multi-set lookup overhead (gemm, Scale::Small) ===");
    for (label, overhead) in [("modeled (paper)", true), ("ideal comparators", false)] {
        let cfg = PartitionedTlbConfig {
            per_set_lookup_overhead: overhead,
            ..PartitionedTlbConfig::with_sharing()
        };
        // gemm runs 4 concurrent TBs -> 4 sets per TB -> 4x probe cost
        // when modeled.
        let r = run_with_partitioned("gemm", cfg, Scale::Small);
        println!(
            "  {:<20} cycles {:>10}  L1 hit {:>5.1}%",
            label,
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0
        );
    }
    c.bench_function("ablation_lookup_overhead", |b| {
        b.iter(|| {
            let cfg = PartitionedTlbConfig {
                per_set_lookup_overhead: false,
                ..PartitionedTlbConfig::with_sharing()
            };
            std::hint::black_box(run_with_partitioned("gemm", cfg, Scale::Test)).total_cycles
        })
    });
}

/// Scheduler-tolerance sweep: how picky the TLB-aware scheduler is about
/// "low" miss rates.
fn ablation_scheduler_tolerance(c: &mut Criterion) {
    println!("\n=== Ablation: scheduler miss-rate tolerance (color, Scale::Small) ===");
    let spec = registry().into_iter().find(|s| s.name == "color").unwrap();
    for tol in [0.0, 0.05, 0.2, 1.0] {
        let wl = spec.generate(Scale::Small, SEED);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_tb_scheduler(Box::new(TlbAwareScheduler::with_tolerance(tol)))
            .run(wl);
        let max = r.tb_placements.iter().max().copied().unwrap_or(0);
        let min = r.tb_placements.iter().min().copied().unwrap_or(0);
        println!(
            "  tolerance {tol:>4.2}: cycles {:>10}  L1 hit {:>5.1}%  placement spread {max}-{min}",
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0
        );
    }
    c.bench_function("ablation_scheduler_tolerance", |b| {
        b.iter(|| {
            let wl = spec.generate(Scale::Test, SEED);
            Simulator::new(GpuConfig::dac23_baseline())
                .with_tb_scheduler(Box::new(TlbAwareScheduler::with_tolerance(0.2)))
                .run(std::hint::black_box(wl))
                .total_cycles
        })
    });
}

/// Page-size ablation: 2 MiB pages multiply TLB reach by 512.
fn ablation_page_size(c: &mut Criterion) {
    println!("\n=== Ablation: page size (atax, Scale::Small) ===");
    let spec = registry().into_iter().find(|s| s.name == "atax").unwrap();
    for (label, ps) in [("4KiB", PageSize::Small), ("2MiB", PageSize::Large)] {
        let wl = spec.generate_with_page_size(Scale::Small, SEED, ps);
        let r = Simulator::new(GpuConfig::dac23_baseline()).run(wl);
        println!(
            "  {:<6} cycles {:>10}  L1 hit {:>5.1}%  walks {:>6}",
            label,
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0,
            r.walker.walks
        );
    }
    c.bench_function("ablation_page_size", |b| {
        b.iter(|| {
            let wl = spec.generate_with_page_size(Scale::Test, SEED, PageSize::Large);
            Simulator::new(GpuConfig::dac23_baseline())
                .run(std::hint::black_box(wl))
                .total_cycles
        })
    });
}

/// Compression-degree sweep for the PACT'20 comparator.
fn ablation_compression_degree(c: &mut Criterion) {
    println!("\n=== Ablation: compression degree (3dconv, Scale::Small) ===");
    let spec = registry().into_iter().find(|s| s.name == "3dconv").unwrap();
    for degree in [2usize, 8, 16] {
        let wl = spec.generate(Scale::Small, SEED);
        let geometry = GpuConfig::dac23_baseline().l1_tlb;
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_l1_tlb_factory(Box::new(move |_| {
                Box::new(CompressedTlb::new(
                    geometry,
                    CompressionConfig {
                        degree,
                        decompress_latency: 1,
                    },
                )) as Box<dyn TranslationBuffer>
            }))
            .run(wl);
        println!(
            "  degree {degree:>2}: cycles {:>10}  L1 hit {:>5.1}% (fragmented frames defeat runs)",
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0
        );
    }
    c.bench_function("ablation_compression_degree", |b| {
        b.iter(|| {
            let wl = spec.generate(Scale::Test, SEED);
            let geometry = GpuConfig::dac23_baseline().l1_tlb;
            Simulator::new(GpuConfig::dac23_baseline())
                .with_l1_tlb_factory(Box::new(move |_| {
                    Box::new(CompressedTlb::new(geometry, CompressionConfig::pact20()))
                        as Box<dyn TranslationBuffer>
                }))
                .run(std::hint::black_box(wl))
                .total_cycles
        })
    });
}

/// Partition-strategy ablation: the paper's TB-id *set* indexing vs the
/// classic way-partitioning alternative vs the unpartitioned baseline.
fn ablation_partition_strategy(c: &mut Criterion) {
    println!("\n=== Ablation: partition strategy (mvt, Scale::Small) ===");
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
    let geometry = GpuConfig::dac23_baseline().l1_tlb;
    let runs: [(&str, gpu_sim::L1TlbFactory); 3] = [
        (
            "unpartitioned",
            Box::new(move |c: &GpuConfig| {
                Box::new(tlb::SetAssocTlb::new(c.l1_tlb)) as Box<dyn TranslationBuffer>
            }),
        ),
        (
            "way-partitioned",
            Box::new(move |_: &GpuConfig| {
                Box::new(WayPartitionedTlb::new(geometry)) as Box<dyn TranslationBuffer>
            }),
        ),
        (
            "set-indexed (paper)",
            Box::new(move |_: &GpuConfig| {
                Box::new(PartitionedTlb::new(PartitionedTlbConfig::with_sharing()))
                    as Box<dyn TranslationBuffer>
            }),
        ),
    ];
    for (label, factory) in runs {
        let wl = spec.generate(Scale::Small, SEED);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_tb_scheduler(Box::new(TlbAwareScheduler::new()))
            .with_l1_tlb_factory(factory)
            .run(wl);
        println!(
            "  {:<20} cycles {:>10}  L1 hit {:>5.1}%",
            label,
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0
        );
    }
    c.bench_function("ablation_partition_strategy", |b| {
        b.iter(|| {
            let wl = spec.generate(Scale::Test, SEED);
            Simulator::new(GpuConfig::dac23_baseline())
                .with_l1_tlb_factory(Box::new(move |_| {
                    Box::new(WayPartitionedTlb::new(geometry)) as Box<dyn TranslationBuffer>
                }))
                .run(std::hint::black_box(wl))
                .total_cycles
        })
    });
}

/// Warp-scheduler ablation (§VII future work): GTO (Table III baseline)
/// vs loose round robin vs TB-clustered greedy.
fn ablation_warp_scheduler(c: &mut Criterion) {
    println!("\n=== Ablation: warp scheduler (bfs, Scale::Small) ===");
    let spec = registry().into_iter().find(|s| s.name == "bfs").unwrap();
    type SchedulerFactory = fn() -> Box<dyn WarpScheduler>;
    let factories: [(&str, SchedulerFactory); 3] = [
        ("gto", || Box::new(GtoWarpScheduler::new())),
        ("lrr", || Box::new(LrrWarpScheduler::new())),
        ("tb-clustered", || Box::new(TbClusteredWarpScheduler::new())),
    ];
    for (label, factory) in factories {
        let wl = spec.generate(Scale::Small, SEED);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_warp_scheduler_factory(Box::new(factory))
            .run(wl);
        println!(
            "  {:<14} cycles {:>10}  L1 hit {:>5.1}%",
            label,
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0
        );
    }
    c.bench_function("ablation_warp_scheduler", |b| {
        b.iter(|| {
            let wl = spec.generate(Scale::Test, SEED);
            Simulator::new(GpuConfig::dac23_baseline())
                .with_warp_scheduler_factory(Box::new(|| {
                    Box::new(TbClusteredWarpScheduler::new()) as Box<dyn WarpScheduler>
                }))
                .run(std::hint::black_box(wl))
                .total_cycles
        })
    });
}

/// TB-throttling extension (§IV-A): gate new TBs while every SM thrashes.
fn ablation_throttling(c: &mut Criterion) {
    println!("\n=== Ablation: TB throttling threshold (color, Scale::Small) ===");
    let spec = registry().into_iter().find(|s| s.name == "color").unwrap();
    for threshold in [0.3, 0.6, 1.0] {
        let wl = spec.generate(Scale::Small, SEED);
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_tb_scheduler(Box::new(ThrottlingTlbAwareScheduler::new(threshold)))
            .run(wl);
        println!(
            "  threshold {threshold:>4.2}: cycles {:>10}  L1 hit {:>5.1}%",
            r.total_cycles,
            r.l1_tlb_hit_rate() * 100.0
        );
    }
    c.bench_function("ablation_throttling", |b| {
        b.iter(|| {
            let wl = spec.generate(Scale::Test, SEED);
            Simulator::new(GpuConfig::dac23_baseline())
                .with_tb_scheduler(Box::new(ThrottlingTlbAwareScheduler::new(0.8)))
                .run(std::hint::black_box(wl))
                .total_cycles
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    targets = ablation_sharing, ablation_lookup_overhead,
              ablation_scheduler_tolerance, ablation_page_size,
              ablation_compression_degree, ablation_warp_scheduler,
              ablation_throttling, ablation_partition_strategy
}
criterion_main!(ablations);
