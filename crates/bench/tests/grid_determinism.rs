//! The parallel grid must be invisible in the results: every figure row
//! is exactly equal for any `--jobs N`, and a cached workload behaves
//! exactly like a freshly generated one.

use bench::{fig10_11_grid, Grid, SEED};
use gpu_sim::GpuConfig;
use orchestrated_tlb::{run_benchmark, run_benchmark_cached, Mechanism};
use workloads::{registry, Scale, WorkloadCache};

/// Figure 10/11 rows are exactly equal (every float bit-identical) for
/// `jobs = 1` vs `jobs = 8`, and stable across repeated parallel runs.
#[test]
fn fig10_rows_identical_for_any_job_count() {
    let specs = registry();
    let serial = fig10_11_grid(&specs, Scale::Test, &Grid::new(1));
    let parallel = fig10_11_grid(&specs, Scale::Test, &Grid::new(8));
    let repeated = fig10_11_grid(&specs, Scale::Test, &Grid::new(8));

    // Debug formatting renders every f64 exactly, so string equality is
    // bitwise equality of all hit rates and normalized times.
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "jobs=1 and jobs=8 must produce identical rows"
    );
    assert_eq!(
        format!("{parallel:?}"),
        format!("{repeated:?}"),
        "repeated parallel runs must produce identical rows"
    );
}

/// A workload served from the cache produces a `SimReport` identical to
/// one generated fresh, for every mechanism in the paper — i.e. sharing
/// kernel traces behind `Arc` never leaks simulator state between runs.
#[test]
fn cached_workload_reports_match_fresh_for_every_mechanism() {
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
    let cache = WorkloadCache::new();
    for mechanism in Mechanism::all() {
        let fresh = run_benchmark(&spec, Scale::Test, SEED, mechanism, GpuConfig::dac23_baseline());
        let cached = run_benchmark_cached(
            &cache,
            &spec,
            Scale::Test,
            SEED,
            mechanism,
            GpuConfig::dac23_baseline(),
        );
        assert_eq!(
            format!("{fresh:?}"),
            format!("{cached:?}"),
            "cached vs fresh mismatch under mechanism {}",
            mechanism.label()
        );
    }

    // Across the full mechanism sweep the trace is generated exactly
    // once; every later run must hit the cache, not regenerate.
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "workload generated more than once");
    assert_eq!(
        stats.hits,
        Mechanism::all().len() as u64 - 1,
        "expected every later mechanism to hit the cache"
    );
}
