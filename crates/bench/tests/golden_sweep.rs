//! The experiment-grid contract: `sweep --param l1-entries --scale test`
//! over two benchmarks is byte-identical to the checked-in golden CSV —
//! rows in deterministic value-major order for every `--jobs N`, every
//! cycle count stable, and `--sim-threads 2` not moving a single byte.
//!
//! Together with `golden_repro.rs` this pins both reporting binaries;
//! the differential fuzzer (`sim-oracle`) covers the state machines
//! underneath them.

use std::process::Command;

/// Golden CSV (checked in; regenerate only for a deliberate, documented
/// timing change — see EXPERIMENTS.md):
/// `sweep --param l1-entries --scale test --bench gemm --bench bfs --jobs 2`
const GOLDEN: &str = include_str!("golden/sweep_l1_entries_test.txt");

fn assert_matches_golden(extra: &[&str]) {
    let mut args = vec![
        "--param",
        "l1-entries",
        "--scale",
        "test",
        "--bench",
        "gemm",
        "--bench",
        "bfs",
        "--jobs",
        "2",
    ];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(&args)
        .output()
        .expect("sweep binary must run");
    assert!(
        out.status.success(),
        "sweep {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("sweep output is UTF-8");
    if got != GOLDEN {
        let diverge = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()));
        let got_line = got.lines().nth(diverge).unwrap_or("<missing>");
        let want_line = GOLDEN.lines().nth(diverge).unwrap_or("<missing>");
        panic!(
            "sweep {args:?} output diverged from golden at line {}:\n  got:  {got_line}\n  want: {want_line}\n\
             (regenerate tests/golden/sweep_l1_entries_test.txt only for a deliberate timing change)",
            diverge + 1
        );
    }
}

#[test]
fn sweep_l1_entries_matches_golden_byte_for_byte() {
    assert_matches_golden(&[]);
}

#[test]
fn sweep_with_serial_jobs_matches_golden_byte_for_byte() {
    // Row order is value-major by construction, not by accident of the
    // worker pool: one job must produce the identical file.
    assert_matches_golden(&["--jobs", "1"]);
}

#[test]
fn sweep_with_two_sim_threads_matches_golden_byte_for_byte() {
    assert_matches_golden(&["--sim-threads", "2"]);
}
