//! The two-phase engine's determinism contract, pinned from outside the
//! engine crate: `--sim-threads N` must produce the *same report* — every
//! counter, every CSV field — for every `N`, across the whole mechanism ×
//! sharing-policy space. Phase A only touches SM-private state and phase
//! B drains outboxes in SM-index order, so any divergence here means a
//! shared structure leaked into phase A (or a merge lost ordering).
//!
//! The proptests below pin the other half of the design: the per-SM stat
//! accumulators are merged with plain `Add`, which is only sound because
//! every field is an order-independent sum. Splitting any op stream
//! across SMs and re-merging must equal serial accumulation exactly.

use bench::SEED;
use gpu_sim::{GpuConfig, LatencyBreakdown, SimReport, Simulator, TranslationBreakdown};
use orchestrated_tlb::{
    Mechanism, PartitionedTlb, PartitionedTlbConfig, SharingPolicy, TlbAwareScheduler,
};
use proptest::prelude::*;
use tlb::{TlbStats, TranslationBuffer};
use workloads::{registry, Scale, Workload};

/// Assert two reports are observably identical: the repro CSV row plus
/// the per-structure counters the row aggregates away.
fn assert_reports_equal(serial: &SimReport, parallel: &SimReport, context: &str) {
    assert_eq!(
        serial.total_cycles, parallel.total_cycles,
        "total_cycles diverged under {context}"
    );
    assert_eq!(
        serial.kernel_cycles, parallel.kernel_cycles,
        "kernel_cycles diverged under {context}"
    );
    assert_eq!(
        serial.to_csv_row(),
        parallel.to_csv_row(),
        "CSV row diverged under {context}"
    );
    assert_eq!(
        serial.l1_tlb, parallel.l1_tlb,
        "per-SM L1 TLB stats diverged under {context}"
    );
    assert_eq!(
        serial.latency, parallel.latency,
        "latency breakdown diverged under {context}"
    );
    assert_eq!(
        serial.sharded_rounds, parallel.sharded_rounds,
        "sharded_rounds diverged under {context}"
    );
    assert_eq!(
        serial.fastpath_hits, parallel.fastpath_hits,
        "fastpath_hits diverged under {context}"
    );
    assert_eq!(
        serial.per_app, parallel.per_app,
        "per-app reports diverged under {context}"
    );
}

/// A 2-app co-run mix used by the multi-tenant invariance tests.
fn corun_apps() -> Vec<Workload> {
    let specs = registry();
    ["gemm", "bfs"]
        .iter()
        .map(|name| {
            specs
                .iter()
                .find(|s| s.name == *name)
                .unwrap()
                .generate(Scale::Test, SEED)
        })
        .collect()
}

/// Every mechanism of the paper is thread-count invariant (exhaustive:
/// each mechanism routes a different L1 TLB organization and TB scheduler
/// through the same two-phase engine).
#[test]
fn every_mechanism_is_thread_count_invariant() {
    let spec = registry().into_iter().find(|s| s.name == "bfs").unwrap();
    let workload = spec.generate(Scale::Test, SEED);
    for m in Mechanism::all() {
        let serial = m
            .simulator(GpuConfig::dac23_baseline())
            .with_sim_threads(1)
            .run(workload.clone());
        for threads in [2usize, 4] {
            let parallel = m
                .simulator(GpuConfig::dac23_baseline())
                .with_sim_threads(threads)
                .run(workload.clone());
            assert_reports_equal(
                &serial,
                &parallel,
                &format!("{} --sim-threads {threads}", m.label()),
            );
        }
    }
}

/// Every mechanism stays thread-count invariant when two applications
/// co-run as concurrent address spaces — including the per-app report
/// entries (slowdown/fairness figures are derived from them, so a
/// nondeterministic per-app merge would corrupt the multi-tenant
/// figures silently).
#[test]
fn every_mechanism_is_thread_count_invariant_under_corun() {
    for m in Mechanism::all() {
        let serial = m
            .simulator(GpuConfig::dac23_baseline())
            .with_sim_threads(1)
            .run_corun(corun_apps());
        assert_eq!(serial.per_app.len(), 2, "{}", m.label());
        for threads in [2usize, 4] {
            let parallel = m
                .simulator(GpuConfig::dac23_baseline())
                .with_sim_threads(threads)
                .run_corun(corun_apps());
            assert_reports_equal(
                &serial,
                &parallel,
                &format!("{} co-run --sim-threads {threads}", m.label()),
            );
        }
    }
}

/// The forced sharded drain stays byte-identical under a co-run for
/// every mechanism — ASID-tagged deferred fills must shard exactly like
/// solo ones (the shard key and the parked-fill payloads both carry the
/// ASID).
#[test]
fn sharded_drain_is_report_invariant_under_corun() {
    let forced = GpuConfig {
        shard_threshold: 1,
        shard_lane_overhead: 0,
        l2_tlb_slices: 4,
        ..GpuConfig::dac23_baseline()
    };
    for m in Mechanism::all() {
        let serial = m
            .simulator(forced.clone())
            .with_sim_threads(1)
            .with_sanitizer(false)
            .run_corun(corun_apps());
        let parallel = m
            .simulator(forced.clone())
            .with_sim_threads(4)
            .with_sanitizer(false)
            .run_corun(corun_apps());
        assert_reports_equal(
            &serial,
            &parallel,
            &format!("{} co-run forced-sharded", m.label()),
        );
    }
}

/// Every partitioned-TLB sharing policy is thread-count invariant.
/// Sharing policies are the riskiest case for the private/shared split:
/// a "shared" way probed from another SM's partition must still be
/// per-SM-private state in phase A.
#[test]
fn every_sharing_policy_is_thread_count_invariant() {
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
    let workload = spec.generate(Scale::Test, SEED);
    for sharing in [
        SharingPolicy::None,
        SharingPolicy::Adjacent,
        SharingPolicy::AdjacentCounter { threshold: 2 },
        SharingPolicy::AllToAll,
    ] {
        let run = |threads: usize, workload: Workload| {
            Simulator::new(GpuConfig::dac23_baseline())
                .with_tb_scheduler(Box::new(TlbAwareScheduler::new()))
                .with_l1_tlb_factory(Box::new(move |c: &GpuConfig| {
                    Box::new(PartitionedTlb::new(PartitionedTlbConfig {
                        geometry: c.l1_tlb,
                        sharing,
                        ..PartitionedTlbConfig::partition_only()
                    })) as Box<dyn TranslationBuffer>
                }))
                .with_sim_threads(threads)
                .run(workload)
        };
        let serial = run(1, workload.clone());
        for threads in [2usize, 4] {
            let parallel = run(threads, workload.clone());
            assert_reports_equal(
                &serial,
                &parallel,
                &format!("sharing={sharing:?} --sim-threads {threads}"),
            );
        }
    }
}

/// Forcing the sharded phase-B drain on every round (`shard_threshold:
/// 1`, zero per-lane overhead) must not change a single byte of the
/// report, across every mechanism and L2 TLB slice count. The paper's
/// own partitioned L1 (compression off) defers its fills and takes the
/// sharded drain for real; only the compressed TLB — whose placement
/// inherently inspects the payload — exercises the serial-fallback gate
/// instead, also byte-identical by construction. Serial and parallel
/// runs share the forced config so the `sharded_rounds` CSV column must
/// agree too.
#[test]
fn sharded_drain_is_report_invariant_across_mechanisms_and_slices() {
    let spec = registry().into_iter().find(|s| s.name == "bfs").unwrap();
    let workload = spec.generate(Scale::Test, SEED);
    for slices in [1usize, 2, 4] {
        let forced = GpuConfig {
            l2_tlb_slices: slices,
            shard_threshold: 1,
            shard_lane_overhead: 0,
            ..GpuConfig::dac23_baseline()
        };
        for m in Mechanism::all() {
            let serial = m
                .simulator(forced.clone())
                .with_sim_threads(1)
                .with_sanitizer(false)
                .run(workload.clone());
            let parallel = m
                .simulator(forced.clone())
                .with_sim_threads(4)
                .with_sanitizer(false)
                .run(workload.clone());
            assert_reports_equal(
                &serial,
                &parallel,
                &format!("{} slices={slices} forced-sharded", m.label()),
            );
        }
    }
}

/// Same forcing across the partitioned TLB's sharing policies. With
/// compression off the partitioned insert is payload-independent (the
/// fill's PPN travels inside the pre-built way and is patched in later
/// by `patch_ppn`), so `supports_deferred_fill()` is true and every
/// forced round drives the paper's own mechanism through the sharded
/// drain's sentinel-insert/patch protocol — byte-identically, for every
/// sharing policy including cross-partition spills.
#[test]
fn sharded_drain_gate_is_invariant_across_sharing_policies() {
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
    let workload = spec.generate(Scale::Test, SEED);
    for sharing in [
        SharingPolicy::None,
        SharingPolicy::AdjacentCounter { threshold: 2 },
        SharingPolicy::AllToAll,
    ] {
        let run = |threads: usize, workload: Workload| {
            let config = GpuConfig {
                shard_threshold: 1,
                shard_lane_overhead: 0,
                l2_tlb_slices: 4,
                ..GpuConfig::dac23_baseline()
            };
            Simulator::new(config)
                .with_tb_scheduler(Box::new(TlbAwareScheduler::new()))
                .with_l1_tlb_factory(Box::new(move |c: &GpuConfig| {
                    Box::new(PartitionedTlb::new(PartitionedTlbConfig {
                        geometry: c.l1_tlb,
                        sharing,
                        ..PartitionedTlbConfig::partition_only()
                    })) as Box<dyn TranslationBuffer>
                }))
                .with_sim_threads(threads)
                .with_sanitizer(false)
                .run(workload)
        };
        let serial = run(1, workload.clone());
        for threads in [2usize, 4] {
            let parallel = run(threads, workload.clone());
            assert_reports_equal(
                &serial,
                &parallel,
                &format!("sharing={sharing:?} forced-sharded {threads} threads"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a lookup stream across any number of per-SM `TlbStats`
    /// accumulators and merging with `Add` equals serial accumulation.
    #[test]
    fn merged_per_sm_tlb_stats_equal_serial_accumulation(
        ops in collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 0..256),
        sms in 1usize..=16,
    ) {
        let mut serial = TlbStats::default();
        let mut per_sm = vec![TlbStats::default(); sms];
        for (i, &(hit, inserted, evicted)) in ops.iter().enumerate() {
            for s in [&mut serial, &mut per_sm[i % sms]] {
                s.record(hit);
                if inserted {
                    s.insertions += 1;
                    if evicted {
                        s.evictions += 1;
                    }
                }
            }
        }
        let merged = per_sm.into_iter().fold(TlbStats::default(), |a, b| a + b);
        prop_assert_eq!(merged, serial);
        prop_assert_eq!(merged.accesses(), serial.hits + serial.misses);
    }

    /// Splitting translation completions across per-SM `LatencyBreakdown`
    /// accumulators and merging with `Add` equals serial accumulation,
    /// and preserves the per-stage attribution identity.
    #[test]
    fn merged_per_sm_latency_breakdowns_equal_serial_accumulation(
        ops in collection::vec(((0u64..500, 0u64..40), (0u64..100, 0u64..20), (0u64..2000, 0u64..5000)), 0..128),
        sms in 1usize..=16,
    ) {
        let mut serial = LatencyBreakdown::default();
        let mut per_sm = vec![LatencyBreakdown::default(); sms];
        for (i, &((l1_tlb, icnt), (l2_tlb_queue, l2_tlb_lookup), (walk, fault))) in ops.iter().enumerate() {
            let b = TranslationBreakdown { l1_tlb, icnt, l2_tlb_queue, l2_tlb_lookup, walk, fault };
            serial.record(&b, b.total());
            per_sm[i % sms].record(&b, b.total());
        }
        let merged = per_sm.into_iter().fold(LatencyBreakdown::default(), |a, b| a + b);
        prop_assert_eq!(merged, serial);
        prop_assert_eq!(merged.translations, ops.len() as u64);
        prop_assert!(merged.check().is_ok(), "{:?}", merged.check());
    }
}
