//! Replays the checked-in `.case` corpus through the differential
//! harness: every shrunk reproducer that ever caught a bug (plus the
//! hand-written coverage cases) keeps replaying forever as a regression
//! test.
//!
//! Cases carrying a `mutate` directive other than `none` are mutation
//! self-tests: they run a deliberately-broken subject and MUST diverge —
//! that assertion is what keeps the harness itself honest (see
//! TESTING.md). All other cases must replay clean.

use sim_oracle::{run_case, Case, Mutation};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus() -> Vec<(PathBuf, String)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable case file");
            (p, text)
        })
        .collect()
}

#[test]
fn corpus_replays_with_expected_verdicts() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 13,
        "corpus should not silently shrink (found {})",
        corpus.len()
    );
    for (path, text) in &corpus {
        let case = Case::parse(text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let is_mutant = matches!(&case, Case::Trace(t) if t.mutation != Mutation::None);
        let result = run_case(&case);
        if is_mutant {
            assert!(
                result.is_some(),
                "{}: mutation self-test stopped diverging — the harness lost sensitivity",
                path.display()
            );
        } else {
            assert_eq!(
                result.map(|d| d.to_string()),
                None,
                "{}: corpus case diverged",
                path.display()
            );
        }
    }
}

/// The corpus exercises every model kind, solo and co-run engine
/// replays, and all three mutants — a guard against coverage rot as
/// cases are added or rewritten.
#[test]
fn corpus_covers_all_models_and_mutants() {
    let mut setassoc = 0;
    let mut partitioned = 0;
    let mut scheduler = 0;
    let mut engine_solo = 0;
    let mut engine_corun = 0;
    let mut mutants = 0;
    for (path, text) in corpus() {
        match Case::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display())) {
            Case::Trace(t) => {
                match t.model {
                    sim_oracle::ModelKind::SetAssoc => setassoc += 1,
                    sim_oracle::ModelKind::Partitioned => partitioned += 1,
                    sim_oracle::ModelKind::Scheduler => scheduler += 1,
                }
                if t.mutation != Mutation::None {
                    mutants += 1;
                }
            }
            Case::Engine(e) if e.apps.is_empty() => engine_solo += 1,
            Case::Engine(_) => engine_corun += 1,
        }
    }
    assert!(setassoc >= 2, "need set-assoc coverage");
    assert!(partitioned >= 5, "need partitioned coverage");
    assert!(scheduler >= 1, "need scheduler coverage");
    assert!(engine_solo >= 1, "need solo engine coverage");
    assert!(engine_corun >= 1, "need co-run engine coverage");
    assert_eq!(mutants, 3, "exactly the three known mutants are self-tests");
}

/// Every corpus file round-trips through the serializer: parse →
/// serialize → parse is identity, so reproducers written by the fuzzer
/// and cases edited by hand stay interchangeable.
#[test]
fn corpus_round_trips_through_the_text_format() {
    for (path, text) in corpus() {
        let case = Case::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let reparsed = Case::parse(&case.serialize())
            .unwrap_or_else(|e| panic!("{}: reserialized form does not parse: {e}", path.display()));
        assert_eq!(case, reparsed, "{}", path.display());
    }
}
