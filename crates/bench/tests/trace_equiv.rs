//! Streamed replay ≡ in-memory replay, pinned from outside the engine:
//! writing a workload to a `trace/v1` file and replaying it through the
//! streaming reader must produce the *same report* — every counter,
//! every CSV field — as running the generated workload directly, for
//! every mechanism and thread count. Any divergence means the codec
//! dropped information or the streaming feed changed dispatch order.

use std::path::PathBuf;

use bench::SEED;
use gpu_sim::{GpuConfig, SimReport, Simulator};
use orchestrated_tlb::Mechanism;
use workloads::format::{write_workload, TraceSource};
use workloads::{registry, Scale, WorkloadCache};

fn assert_reports_equal(mem: &SimReport, streamed: &SimReport, context: &str) {
    assert_eq!(
        mem.total_cycles, streamed.total_cycles,
        "total_cycles diverged under {context}"
    );
    assert_eq!(
        mem.kernel_cycles, streamed.kernel_cycles,
        "kernel_cycles diverged under {context}"
    );
    assert_eq!(
        mem.to_csv_row(),
        streamed.to_csv_row(),
        "CSV row diverged under {context}"
    );
    assert_eq!(
        mem.l1_tlb, streamed.l1_tlb,
        "per-SM L1 TLB stats diverged under {context}"
    );
    assert_eq!(
        mem.latency, streamed.latency,
        "latency breakdown diverged under {context}"
    );
    assert_eq!(
        mem.tb_placements, streamed.tb_placements,
        "TB placements diverged under {context}"
    );
}

fn temp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("otlb-equiv-{tag}-{}.trace", std::process::id()))
}

/// Every mechanism produces an identical report whether the trace comes
/// from RAM or streams from disk, at several thread counts.
#[test]
fn streamed_replay_matches_in_memory_for_every_mechanism() {
    for name in ["bfs", "gemm"] {
        let spec = registry().into_iter().find(|s| s.name == name).unwrap();
        let workload = spec.generate(Scale::Test, SEED);
        let path = temp_trace(name);
        write_workload(&path, &workload, name, Some(Scale::Test), SEED).unwrap();
        for m in Mechanism::all() {
            for threads in [1usize, 2, 4] {
                let mem = m
                    .simulator(GpuConfig::dac23_baseline())
                    .with_sim_threads(threads)
                    .run(workload.clone());
                let streamed = m
                    .simulator(GpuConfig::dac23_baseline())
                    .with_sim_threads(threads)
                    .run_source(TraceSource::open(&path).unwrap())
                    .unwrap();
                assert_reports_equal(
                    &mem,
                    &streamed,
                    &format!("{name} {} --sim-threads {threads}", m.label()),
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// The disk-backed cache's file sources replay identically to its
/// in-memory generated workloads (the `--trace-cache` contract).
#[test]
fn cache_file_source_matches_generated_source() {
    let dir = std::env::temp_dir().join(format!("otlb-equiv-cache-{}", std::process::id()));
    let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();

    let mem_cache = WorkloadCache::new();
    let mem = Simulator::new(GpuConfig::dac23_baseline())
        .run_source(mem_cache.get_source(&spec, Scale::Test, SEED))
        .unwrap();

    let disk_cache = WorkloadCache::with_disk(&dir);
    let source = disk_cache.get_source(&spec, Scale::Test, SEED);
    assert!(
        matches!(source, TraceSource::File(_)),
        "a disk-backed cache must hand out file sources"
    );
    let streamed = Simulator::new(GpuConfig::dac23_baseline())
        .run_source(source)
        .unwrap();

    assert_reports_equal(&mem, &streamed, "mvt via WorkloadCache::with_disk");
    std::fs::remove_dir_all(&dir).unwrap();
}
