//! The streaming-pipeline contract, pinned at the binary level: `repro
//! --all --scale test --trace-cache DIR` is byte-identical to the same
//! golden report the in-memory path produces (`golden_repro.rs`), at
//! every `--sim-threads N`. The trace cache may change where TBs come
//! from — never a single output byte.
//!
//! Also pins cache determinism: populating two fresh directories with
//! `trace-gen` yields byte-identical files (compared by content hash),
//! so a shared trace directory can be rebuilt anywhere without
//! invalidating reproducers that pin traces by hash.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The same golden output the in-memory `golden_repro.rs` tests pin.
const GOLDEN: &str = include_str!("golden/repro_all_test.txt");

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("otlb-trace-golden-{tag}-{}", std::process::id()))
}

/// Run `repro --all --scale test --trace-cache <dir>` with the given
/// extra flags and assert stdout matches the golden byte for byte.
fn assert_traced_matches_golden(dir: &Path, extra: &[&str]) {
    let dir_s = dir.display().to_string();
    let mut args = vec![
        "--all",
        "--scale",
        "test",
        "--jobs",
        "2",
        "--trace-cache",
        &dir_s,
    ];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(&args)
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    if got != GOLDEN {
        let diverge = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()));
        let got_line = got.lines().nth(diverge).unwrap_or("<missing>");
        let want_line = GOLDEN.lines().nth(diverge).unwrap_or("<missing>");
        panic!(
            "trace-cached repro {args:?} diverged from golden at line {}:\n  \
             got:  {got_line}\n  want: {want_line}\n\
             (the trace path must be byte-identical to in-memory replay)",
            diverge + 1
        );
    }
}

#[test]
fn trace_cached_repro_matches_golden_byte_for_byte() {
    let dir = temp_dir("t1");
    assert_traced_matches_golden(&dir, &[]);
    // Second run replays the now-populated cache: still byte-identical.
    assert_traced_matches_golden(&dir, &[]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_cached_repro_with_two_sim_threads_matches_golden() {
    let dir = temp_dir("t2");
    assert_traced_matches_golden(&dir, &["--sim-threads", "2"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_cached_repro_with_four_sim_threads_matches_golden() {
    let dir = temp_dir("t4");
    assert_traced_matches_golden(&dir, &["--sim-threads", "4"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Two independent `trace-gen` populations of the full registry produce
/// byte-identical files — generation is deterministic all the way down
/// to the on-disk encoding.
#[test]
fn trace_gen_populations_are_byte_identical() {
    let dirs = [temp_dir("gen-a"), temp_dir("gen-b")];
    for dir in &dirs {
        let out = Command::new(env!("CARGO_BIN_EXE_trace-gen"))
            .args([
                "--all",
                "--scale",
                "test",
                "--out-dir",
                &dir.display().to_string(),
            ])
            .output()
            .expect("trace-gen binary must run");
        assert!(
            out.status.success(),
            "trace-gen failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let mut names: Vec<String> = std::fs::read_dir(&dirs[0])
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "population produced no trace files");
    for name in &names {
        let a = workloads::format::file_hash(&dirs[0].join(name)).unwrap();
        let b = workloads::format::file_hash(&dirs[1].join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between two populations");
    }
    for dir in &dirs {
        std::fs::remove_dir_all(dir).unwrap();
    }
}
