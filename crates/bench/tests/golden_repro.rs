//! The refactor contract: `repro --all --scale test` is byte-identical to
//! the golden report checked in before the mem-hier extraction. Any
//! timing drift — one cycle anywhere, one reordered row — fails this test
//! before it can silently shift the paper's reproduced figures.
//!
//! The same golden file is the oracle for the two-phase parallel engine:
//! `--sim-threads N` must not move a single byte for any `N`, so the
//! thread-count variants below compare against the identical text.

use std::process::Command;

/// The pre-refactor golden output (checked in; regenerate only for a
/// deliberate, documented timing change — see EXPERIMENTS.md).
const GOLDEN: &str = include_str!("golden/repro_all_test.txt");

/// Run `repro --all --scale test` with the given extra flags and assert
/// the stdout matches the golden file byte for byte, reporting the first
/// divergent line on failure.
fn assert_matches_golden(extra: &[&str]) {
    let mut args = vec!["--all", "--scale", "test", "--jobs", "2"];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(&args)
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    if got != GOLDEN {
        // Locate the first divergence for a readable failure message.
        let diverge = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()));
        let got_line = got.lines().nth(diverge).unwrap_or("<missing>");
        let want_line = GOLDEN.lines().nth(diverge).unwrap_or("<missing>");
        panic!(
            "repro {args:?} output diverged from golden at line {}:\n  got:  {got_line}\n  want: {want_line}\n\
             (regenerate tests/golden/repro_all_test.txt only for a deliberate timing change)",
            diverge + 1
        );
    }
}

#[test]
fn repro_all_test_scale_matches_golden_byte_for_byte() {
    assert_matches_golden(&[]);
}

#[test]
fn repro_with_two_sim_threads_matches_golden_byte_for_byte() {
    assert_matches_golden(&["--sim-threads", "2"]);
}

#[test]
fn repro_with_four_sim_threads_matches_golden_byte_for_byte() {
    assert_matches_golden(&["--sim-threads", "4"]);
}

/// The 2-app co-run study's golden output (multi-tenant figure: per-app
/// slowdown, Jain fairness, system throughput, per-app CSV columns).
const GOLDEN_CORUN: &str = include_str!("golden/repro_corun_test.txt");

/// Run `repro --apps gemm,bfs --scale test` with the given extra flags
/// and assert stdout matches the co-run golden byte for byte.
fn assert_matches_corun_golden(extra: &[&str]) {
    let mut args = vec!["--apps", "gemm,bfs", "--scale", "test"];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(&args)
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro {args:?} exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    assert!(
        got == GOLDEN_CORUN,
        "repro {args:?} co-run output diverged from tests/golden/repro_corun_test.txt
         (regenerate only for a deliberate timing change)"
    );
}

#[test]
fn corun_repro_matches_golden_byte_for_byte() {
    assert_matches_corun_golden(&["--jobs", "2"]);
}

#[test]
fn corun_repro_is_jobs_invariant() {
    assert_matches_corun_golden(&["--jobs", "1"]);
}

#[test]
fn corun_repro_with_two_sim_threads_matches_golden() {
    assert_matches_corun_golden(&["--jobs", "2", "--sim-threads", "2"]);
}

#[test]
fn corun_repro_with_four_sim_threads_matches_golden() {
    assert_matches_corun_golden(&["--jobs", "2", "--sim-threads", "4"]);
}

#[test]
fn corun_repro_sanitized_matches_golden() {
    assert_matches_corun_golden(&["--jobs", "2", "--sanitize"]);
}
