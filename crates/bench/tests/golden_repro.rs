//! The refactor contract: `repro --all --scale test` is byte-identical to
//! the golden report checked in before the mem-hier extraction. Any
//! timing drift — one cycle anywhere, one reordered row — fails this test
//! before it can silently shift the paper's reproduced figures.

use std::process::Command;

/// The pre-refactor golden output (checked in; regenerate only for a
/// deliberate, documented timing change — see EXPERIMENTS.md).
const GOLDEN: &str = include_str!("golden/repro_all_test.txt");

#[test]
fn repro_all_test_scale_matches_golden_byte_for_byte() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--all", "--scale", "test", "--jobs", "2"])
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    if got != GOLDEN {
        // Locate the first divergence for a readable failure message.
        let diverge = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(GOLDEN.lines().count()));
        let got_line = got.lines().nth(diverge).unwrap_or("<missing>");
        let want_line = GOLDEN.lines().nth(diverge).unwrap_or("<missing>");
        panic!(
            "repro output diverged from golden at line {}:\n  got:  {got_line}\n  want: {want_line}\n\
             (regenerate tests/golden/repro_all_test.txt only for a deliberate timing change)",
            diverge + 1
        );
    }
}
