//! The mem-hier latency breakdown must account for every translation
//! cycle: for any mechanism, sharing policy, and hierarchy shape, the sum
//! of per-stage contributions (L1 TLB + interconnect + L2 TLB queueing +
//! L2 TLB lookup + walk + fault) equals the independently accumulated
//! end-to-end translation latency. The engine debug-asserts this per
//! translation; these tests pin the aggregate identity in release mode
//! too, across the whole mechanism × policy space.

use bench::SEED;
use gpu_sim::{GpuConfig, SimReport, Simulator};
use orchestrated_tlb::{
    run_benchmark, Mechanism, PartitionedTlb, PartitionedTlbConfig, SharingPolicy,
    TlbAwareScheduler,
};
use proptest::prelude::*;
use tlb::TranslationBuffer;
use workloads::{registry, Scale};

fn assert_breakdown_accounts_for_everything(r: &SimReport, context: &str) {
    r.latency
        .check()
        .unwrap_or_else(|e| panic!("latency identity broken under {context}: {e}"));
    assert!(
        r.latency.translations > 0,
        "no translations recorded under {context}"
    );
    assert_eq!(
        r.latency.stage_sum(),
        r.latency.end_to_end_cycles,
        "stage sum != end-to-end under {context}"
    );
    r.walker
        .check()
        .unwrap_or_else(|e| panic!("walker stats broken under {context}: {e}"));
}

/// Every mechanism of the paper satisfies the identity (exhaustive, not
/// sampled: the mechanism list is small and each carries a different L1
/// TLB organization through the same hierarchy).
#[test]
fn every_mechanism_accounts_for_every_translation_cycle() {
    let spec = registry().into_iter().find(|s| s.name == "bfs").unwrap();
    for m in Mechanism::all() {
        let r = run_benchmark(&spec, Scale::Test, SEED, m, GpuConfig::dac23_baseline());
        assert_breakdown_accounts_for_everything(&r, m.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random benchmark × sharing policy × hierarchy shape: the identity
    /// is structural, not a property of the baseline numbers.
    #[test]
    fn breakdown_identity_holds_for_any_sharing_policy_and_shape(
        bench_idx in 0usize..16,
        policy_idx in 0usize..4,
        slices in prop_oneof![Just(1usize), Just(2), Just(4)],
        occupancy in 1u64..=10,
        per_level in prop_oneof![Just(0u64), Just(25)],
    ) {
        let specs = registry();
        let spec = &specs[bench_idx % specs.len()];
        let sharing = [
            SharingPolicy::None,
            SharingPolicy::Adjacent,
            SharingPolicy::AdjacentCounter { threshold: 2 },
            SharingPolicy::AllToAll,
        ][policy_idx];
        let config = GpuConfig {
            l2_tlb_slices: slices,
            l2_tlb_port_occupancy: occupancy,
            walk_latency_per_level: per_level,
            ..GpuConfig::dac23_baseline()
        };
        let r = Simulator::new(config)
            .with_tb_scheduler(Box::new(TlbAwareScheduler::new()))
            .with_l1_tlb_factory(Box::new(move |c: &GpuConfig| {
                Box::new(PartitionedTlb::new(PartitionedTlbConfig {
                    geometry: c.l1_tlb,
                    sharing,
                    ..PartitionedTlbConfig::partition_only()
                })) as Box<dyn TranslationBuffer>
            }))
            .run(spec.generate(Scale::Test, SEED));
        assert_breakdown_accounts_for_everything(
            &r,
            &format!("{} sharing={sharing:?} slices={slices} occ={occupancy} per_level={per_level}", spec.name),
        );
    }
}
