//! The parallel experiment-grid runner.
//!
//! The paper's evaluation is a grid: every benchmark × every mechanism
//! (× page sizes, TLB capacities, seeds). Cells are independent — the
//! simulator is single-threaded and deterministic — so the grid is
//! embarrassingly parallel. [`Grid::map`] fans cells out over a fixed
//! worker pool (`std::thread::scope` + an atomic work queue; no external
//! dependencies) and collects results *by cell index*, so the output of
//! any figure function is bit-identical for every `--jobs N`, including
//! `N = 1`.
//!
//! Workers share one [`WorkloadCache`], so a workload's trace is
//! generated once per `(benchmark, scale, seed, page_size)` no matter how
//! many grid cells — or worker threads — consume it.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use workloads::WorkloadCache;

/// A fixed-size worker pool that maps experiment cells in deterministic
/// output order.
///
/// # Example
///
/// ```
/// use bench::Grid;
///
/// let grid = Grid::new(4);
/// let squares = grid.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]); // order preserved
/// ```
pub struct Grid {
    jobs: usize,
    cache: Arc<WorkloadCache>,
}

impl Grid {
    /// A grid running `jobs` cells concurrently (`0` means
    /// [`Grid::default_jobs`]), with a fresh workload cache.
    pub fn new(jobs: usize) -> Self {
        Grid::with_cache(
            jobs,
            Arc::new(WorkloadCache::new()),
        )
    }

    /// A single-worker grid: cells run inline on the calling thread, in
    /// order. Useful as the drop-in serial path.
    pub fn serial() -> Self {
        Grid::new(1)
    }

    /// A grid sharing an existing workload cache (e.g. one cache across
    /// every figure of a `repro --all` run).
    pub fn with_cache(jobs: usize, cache: Arc<WorkloadCache>) -> Self {
        Grid {
            jobs: if jobs == 0 { Grid::default_jobs() } else { jobs },
            cache,
        }
    }

    /// The machine's available parallelism (1 if it cannot be queried).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Number of concurrent cells this grid runs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shared workload cache.
    pub fn cache(&self) -> &WorkloadCache {
        &self.cache
    }

    /// Clones the shared cache handle (to build another grid over the
    /// same cache).
    pub fn cache_handle(&self) -> Arc<WorkloadCache> {
        Arc::clone(&self.cache)
    }

    /// Applies `f` to every item and returns the results in item order —
    /// bit-identical output regardless of `jobs`.
    ///
    /// Work is distributed dynamically: each worker pops the next
    /// unclaimed index from an atomic counter, so long cells (e.g.
    /// `Scale::Paper` graph benchmarks) don't serialize behind a static
    /// partition. If `f` panics on any cell the panic propagates to the
    /// caller once all workers stop.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len()).max(1);
        if workers == 1 {
            return items.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        // simlint: allow(engine-spawn, reason = "bench sweep fan-out over independent simulations; each result lands in its per-index slot, so completion order cannot reach the output")
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(item);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell index was claimed by a worker")
            })
            .collect()
    }
}

impl Default for Grid {
    fn default() -> Self {
        Grid::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let got = Grid::new(jobs).map(&items, |&x| x * 3);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let grid = Grid::new(4);
        assert_eq!(grid.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(grid.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let grid = Grid::new(0);
        assert!(grid.jobs() >= 1);
        assert_eq!(grid.jobs(), Grid::default_jobs());
    }

    #[test]
    fn grids_can_share_a_cache() {
        let a = Grid::new(2);
        let b = Grid::with_cache(4, a.cache_handle());
        let spec = workloads::registry()
            .into_iter()
            .find(|s| s.name == "gemm")
            .unwrap();
        a.cache().get(&spec, workloads::Scale::Test, 42);
        b.cache().get(&spec, workloads::Scale::Test, 42);
        assert_eq!(b.cache().stats().misses, 1);
        assert_eq!(b.cache().stats().hits, 1);
    }

    #[test]
    fn work_is_actually_distributed() {
        // With 4 workers and 4 slow-ish items, at least two distinct
        // threads must claim work (the queue hands out all indices before
        // any single worker can finish them all — not guaranteed, so we
        // assert only that all results are correct and distinct threads
        // *may* appear; the determinism tests cover correctness).
        let grid = Grid::new(4);
        let got = grid.map(&[10u64, 20, 30, 40], |&x| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            x / 10
        });
        assert_eq!(got, vec![1, 2, 3, 4]);
    }
}
