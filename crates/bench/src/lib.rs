//! # bench — experiment harnesses that regenerate every table and figure
//!
//! Each `figNN` function reproduces one artifact of the paper's
//! evaluation and returns the same rows/series the paper plots; the
//! `repro` binary prints them as text tables, and the Criterion benches
//! wrap them for timing. See EXPERIMENTS.md for paper-vs-measured notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use analysis::{
    inter_intensities, intra_intensities, reuse_distance_samples, tb_translation_streams, Cdf,
    DistanceOptions, ReuseBins,
};
use gpu_sim::GpuConfig;
use orchestrated_tlb::{
    run_benchmark_cached, run_benchmark_cached_with_page_size, Mechanism,
};
use vmem::PageSize;
use workloads::{registry, BenchmarkSpec, Scale};

mod grid;

pub use grid::Grid;

/// The seed used by every experiment (results are deterministic).
pub const SEED: u64 = 42;

/// Enumerates the grid cells of `specs × options`, benchmark-major (all
/// of spec 0's options first). Reassembly relies on this order:
/// `results.chunks(options.len())` yields one benchmark's cells.
fn cells<M: Copy>(n_specs: usize, options: &[M]) -> Vec<(usize, M)> {
    (0..n_specs)
        .flat_map(|i| options.iter().map(move |&m| (i, m)))
        .collect()
}

/// Cache-line size used for coalescing in trace analyses.
pub const LINE_BYTES: u64 = 128;

/// Per-benchmark result of the Figure 2 study.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Benchmark name.
    pub bench: String,
    /// L1 TLB hit rate with the 64-entry baseline.
    pub hit_64: f64,
    /// L1 TLB hit rate with 256 entries.
    pub hit_256: f64,
}

/// Figure 2: baseline L1 TLB hit rates at 64 vs 256 entries.
pub fn fig2(scale: Scale) -> Vec<Fig2Row> {
    fig2_for(&registry(), scale)
}

/// [`fig2`] over an explicit benchmark set (e.g.
/// [`workloads::extended_registry`]).
pub fn fig2_for(specs: &[BenchmarkSpec], scale: Scale) -> Vec<Fig2Row> {
    fig2_grid(specs, scale, &Grid::serial())
}

/// [`fig2`] over a parallel [`Grid`] (one cell per benchmark ×
/// mechanism; output identical to the serial run).
pub fn fig2_grid(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) -> Vec<Fig2Row> {
    let mechs = [Mechanism::Baseline, Mechanism::LargeTlb];
    let hits = grid.map(&cells(specs.len(), &mechs), |&(i, m)| {
        run_benchmark_cached(
            grid.cache(),
            &specs[i],
            scale,
            SEED,
            m,
            GpuConfig::dac23_baseline(),
        )
        .l1_tlb_hit_rate()
    });
    specs
        .iter()
        .zip(hits.chunks(mechs.len()))
        .map(|(spec, h)| Fig2Row {
            bench: spec.name.to_owned(),
            hit_64: h[0],
            hit_256: h[1],
        })
        .collect()
}

/// Per-benchmark result of the Figures 3/4 reuse-intensity study.
#[derive(Clone, Debug)]
pub struct Fig34Row {
    /// Benchmark name.
    pub bench: String,
    /// Inter-TB bin fractions b1..b5 (Figure 3).
    pub inter: [f64; 5],
    /// Intra-TB bin fractions b1..b5 (Figure 4).
    pub intra: [f64; 5],
}

/// Figures 3 and 4: translation-reuse intensity bins.
///
/// TB pairs are subsampled to at most `max_tbs` TBs per benchmark
/// (`None` = exhaustive, quadratic).
pub fn fig3_4(scale: Scale, max_tbs: Option<usize>) -> Vec<Fig34Row> {
    fig3_4_for(&registry(), scale, max_tbs)
}

/// [`fig3_4`] over an explicit benchmark set.
pub fn fig3_4_for(
    specs: &[BenchmarkSpec],
    scale: Scale,
    max_tbs: Option<usize>,
) -> Vec<Fig34Row> {
    fig3_4_grid(specs, scale, max_tbs, &Grid::serial())
}

/// [`fig3_4`] over a parallel [`Grid`] (one cell per benchmark — the
/// study is trace analysis, not simulation).
pub fn fig3_4_grid(
    specs: &[BenchmarkSpec],
    scale: Scale,
    max_tbs: Option<usize>,
    grid: &Grid,
) -> Vec<Fig34Row> {
    let idx: Vec<usize> = (0..specs.len()).collect();
    grid.map(&idx, |&i| {
        let spec = &specs[i];
        let wl = grid.cache().get(spec, scale, SEED);
        let streams = tb_translation_streams(&wl, LINE_BYTES);
        let inter =
            ReuseBins::from_intensities(&inter_intensities(&streams, max_tbs)).fractions();
        let intra = ReuseBins::from_intensities(&intra_intensities(&streams)).fractions();
        Fig34Row {
            bench: spec.name.to_owned(),
            inter,
            intra,
        }
    })
}

/// Per-benchmark result of the Figures 5/6 reuse-distance study.
#[derive(Clone, Debug)]
pub struct Fig56Row {
    /// Benchmark name.
    pub bench: String,
    /// CDF of intra-TB reuse distances under concurrent TB execution
    /// (Figure 5), sampled at powers of two.
    pub concurrent: Vec<(u64, f64)>,
    /// The same with one TB per SM at a time (Figure 6).
    pub isolated: Vec<(u64, f64)>,
    /// Fraction of concurrent-mode reuses beyond the 64-entry reach.
    pub beyond_reach: f64,
}

/// Exponent range of the paper's Figure 5/6 x-axis (2^3 .. 2^14).
pub const DISTANCE_EXPONENTS: (u32, u32) = (3, 14);

/// Figures 5 and 6: intra-TB reuse-distance CDFs with and without
/// inter-TB interference.
pub fn fig5_6(scale: Scale) -> Vec<Fig56Row> {
    fig5_6_for(&registry(), scale)
}

/// [`fig5_6`] over an explicit benchmark set.
pub fn fig5_6_for(specs: &[BenchmarkSpec], scale: Scale) -> Vec<Fig56Row> {
    fig5_6_grid(specs, scale, &Grid::serial())
}

/// [`fig5_6`] over a parallel [`Grid`] (one cell per benchmark ×
/// concurrency cap).
pub fn fig5_6_grid(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) -> Vec<Fig56Row> {
    let caps: [Option<u8>; 2] = [None, Some(1)];
    let cdfs = grid.map(&cells(specs.len(), &caps), |&(i, cap)| {
        let wl = grid.cache().get(&specs[i], scale, SEED);
        let report = Mechanism::Baseline
            .simulator(GpuConfig::dac23_baseline())
            .with_translation_trace(true)
            .with_max_concurrent_tbs(cap)
            .run(wl);
        Cdf::from_samples(reuse_distance_samples(
            &report.translation_trace,
            DistanceOptions::intra_tb(),
        ))
    });
    let (lo, hi) = DISTANCE_EXPONENTS;
    specs
        .iter()
        .zip(cdfs.chunks(caps.len()))
        .map(|(spec, pair)| {
            let (concurrent, isolated) = (&pair[0], &pair[1]);
            Fig56Row {
                bench: spec.name.to_owned(),
                beyond_reach: concurrent.tail_beyond(64),
                concurrent: concurrent.log2_points(lo, hi),
                isolated: isolated.log2_points(lo, hi),
            }
        })
        .collect()
}

/// Per-benchmark result of the Figures 10/11 evaluation.
#[derive(Clone, Debug)]
pub struct Fig1011Row {
    /// Benchmark name.
    pub bench: String,
    /// L1 TLB hit rate per mechanism (Figure 10), in
    /// [`Mechanism::figure10`] order.
    pub hit_rates: [f64; 4],
    /// Execution time normalized to baseline (Figure 11), same order.
    pub norm_time: [f64; 4],
}

/// Figures 10 and 11: the four evaluated configurations per benchmark.
pub fn fig10_11(scale: Scale) -> Vec<Fig1011Row> {
    fig10_11_for(&registry(), scale)
}

/// [`fig10_11`] over an explicit benchmark set.
pub fn fig10_11_for(specs: &[BenchmarkSpec], scale: Scale) -> Vec<Fig1011Row> {
    fig10_11_grid(specs, scale, &Grid::serial())
}

/// [`fig10_11`] over a parallel [`Grid`] (one cell per benchmark ×
/// mechanism — the main 40-cell grid of the evaluation).
pub fn fig10_11_grid(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) -> Vec<Fig1011Row> {
    let mechs = Mechanism::figure10();
    let reports = grid.map(&cells(specs.len(), &mechs), |&(i, m)| {
        run_benchmark_cached(
            grid.cache(),
            &specs[i],
            scale,
            SEED,
            m,
            GpuConfig::dac23_baseline(),
        )
    });
    specs
        .iter()
        .zip(reports.chunks(mechs.len()))
        .map(|(spec, reports)| {
            let base_cycles = reports[0].total_cycles as f64;
            let mut hit_rates = [0.0; 4];
            let mut norm_time = [0.0; 4];
            for (i, r) in reports.iter().enumerate() {
                hit_rates[i] = r.l1_tlb_hit_rate();
                norm_time[i] = r.total_cycles as f64 / base_cycles;
            }
            Fig1011Row {
                bench: spec.name.to_owned(),
                hit_rates,
                norm_time,
            }
        })
        .collect()
}

/// One benchmark's Figure 10/11 bars.
pub fn fig10_11_one(spec: &BenchmarkSpec, scale: Scale) -> Fig1011Row {
    fig10_11_grid(std::slice::from_ref(spec), scale, &Grid::serial())
        .pop()
        .expect("one spec in, one row out")
}

/// Per-benchmark result of the Figure 12 compression study.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Benchmark name.
    pub bench: String,
    /// Speedup of (ours + compression) over compression alone.
    pub speedup: f64,
}

/// Figure 12: the proposal combined with PACT'20 TLB compression,
/// normalized to compression alone.
pub fn fig12(scale: Scale) -> Vec<Fig12Row> {
    fig12_for(&registry(), scale)
}

/// [`fig12`] over an explicit benchmark set.
pub fn fig12_for(specs: &[BenchmarkSpec], scale: Scale) -> Vec<Fig12Row> {
    fig12_grid(specs, scale, &Grid::serial())
}

/// [`fig12`] over a parallel [`Grid`] (one cell per benchmark ×
/// mechanism).
pub fn fig12_grid(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) -> Vec<Fig12Row> {
    let mechs = [Mechanism::Compression, Mechanism::FullWithCompression];
    let reports = grid.map(&cells(specs.len(), &mechs), |&(i, m)| {
        run_benchmark_cached(
            grid.cache(),
            &specs[i],
            scale,
            SEED,
            m,
            GpuConfig::dac23_baseline(),
        )
    });
    specs
        .iter()
        .zip(reports.chunks(mechs.len()))
        .map(|(spec, pair)| Fig12Row {
            bench: spec.name.to_owned(),
            speedup: pair[1].speedup(&pair[0]),
        })
        .collect()
}

/// Per-benchmark result of the Section V huge-page study.
#[derive(Clone, Debug)]
pub struct HugePageRow {
    /// Benchmark name.
    pub bench: String,
    /// Baseline L1 TLB hit rate with 2 MiB pages.
    pub hit_rate_huge: f64,
    /// Execution time of ours (2 MiB pages) normalized to baseline
    /// (2 MiB pages).
    pub norm_time_ours: f64,
}

/// Section V huge-page study: 2 MiB pages, baseline vs the full proposal.
pub fn hugepage(scale: Scale) -> Vec<HugePageRow> {
    hugepage_for(&registry(), scale)
}

/// [`hugepage`] over an explicit benchmark set.
pub fn hugepage_for(specs: &[BenchmarkSpec], scale: Scale) -> Vec<HugePageRow> {
    hugepage_grid(specs, scale, &Grid::serial())
}

/// [`hugepage`] over a parallel [`Grid`] (one cell per benchmark ×
/// mechanism, 2 MiB pages).
pub fn hugepage_grid(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) -> Vec<HugePageRow> {
    let mechs = [Mechanism::Baseline, Mechanism::Full];
    let reports = grid.map(&cells(specs.len(), &mechs), |&(i, m)| {
        run_benchmark_cached_with_page_size(
            grid.cache(),
            &specs[i],
            scale,
            SEED,
            m,
            GpuConfig::dac23_baseline(),
            PageSize::Large,
        )
    });
    specs
        .iter()
        .zip(reports.chunks(mechs.len()))
        .map(|(spec, pair)| HugePageRow {
            bench: spec.name.to_owned(),
            hit_rate_huge: pair[0].l1_tlb_hit_rate(),
            norm_time_ours: pair[1].normalized_time(&pair[0]),
        })
        .collect()
}

/// Mean and population standard deviation of the full proposal's
/// normalized time across seeds (workload generation varies with seed).
#[derive(Clone, Debug)]
pub struct VarianceRow {
    /// Benchmark name.
    pub bench: String,
    /// Mean normalized time of the full proposal across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub std_dev: f64,
}

/// Seed-sensitivity study: reruns the Figure 11 headline comparison under
/// several workload seeds and reports mean ± std of the full proposal's
/// normalized time.
pub fn fig11_variance(scale: Scale, seeds: &[u64]) -> Vec<VarianceRow> {
    fig11_variance_grid(scale, seeds, &Grid::serial())
}

/// [`fig11_variance`] over a parallel [`Grid`] (one cell per benchmark ×
/// seed × mechanism).
pub fn fig11_variance_grid(scale: Scale, seeds: &[u64], grid: &Grid) -> Vec<VarianceRow> {
    let specs = registry();
    let mechs = [Mechanism::Baseline, Mechanism::Full];
    let grid_cells: Vec<(usize, u64, Mechanism)> = (0..specs.len())
        .flat_map(|i| {
            seeds
                .iter()
                .flat_map(move |&seed| mechs.into_iter().map(move |m| (i, seed, m)))
        })
        .collect();
    let cycles = grid.map(&grid_cells, |&(i, seed, m)| {
        run_benchmark_cached(
            grid.cache(),
            &specs[i],
            scale,
            seed,
            m,
            GpuConfig::dac23_baseline(),
        )
        .total_cycles
    });
    specs
        .iter()
        .zip(cycles.chunks(seeds.len() * mechs.len()))
        .map(|(spec, per_seed)| {
            let samples: Vec<f64> = per_seed
                .chunks(mechs.len())
                .map(|pair| pair[1] as f64 / pair[0] as f64)
                .collect();
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            VarianceRow {
                bench: spec.name.to_owned(),
                mean,
                std_dev: var.sqrt(),
            }
        })
        .collect()
}

/// Per-benchmark result of the §VII warp-granularity study.
#[derive(Clone, Debug)]
pub struct WarpStudyRow {
    /// Benchmark name.
    pub bench: String,
    /// P[distance <= 64] for intra-TB reuse pairs.
    pub tb_at_reach: f64,
    /// P[distance <= 64] for intra-*warp* reuse pairs.
    pub warp_at_reach: f64,
}

/// The paper's §VII future work: reuse distances at warp granularity,
/// side by side with the TB-granularity Figure 5 numbers.
pub fn warp_study(scale: Scale) -> Vec<WarpStudyRow> {
    warp_study_grid(scale, &Grid::serial())
}

/// [`warp_study`] over a parallel [`Grid`] (one cell per benchmark).
pub fn warp_study_grid(scale: Scale, grid: &Grid) -> Vec<WarpStudyRow> {
    let specs = registry();
    let idx: Vec<usize> = (0..specs.len()).collect();
    grid.map(&idx, |&i| {
        let spec = &specs[i];
        let wl = grid.cache().get(spec, scale, SEED);
        let report = Mechanism::Baseline
            .simulator(GpuConfig::dac23_baseline())
            .with_translation_trace(true)
            .run(wl);
        let cdf = |opts: DistanceOptions| {
            Cdf::from_samples(reuse_distance_samples(&report.translation_trace, opts)).at(64)
        };
        WarpStudyRow {
            bench: spec.name.to_owned(),
            tb_at_reach: cdf(DistanceOptions::intra_tb()),
            warp_at_reach: cdf(DistanceOptions::intra_warp()),
        }
    })
}

/// Per-mechanism result of the multi-tenant co-run study.
#[derive(Clone, Debug)]
pub struct CorunRow {
    /// Mechanism label.
    pub mechanism: String,
    /// Per-app slowdown vs. solo, in app order.
    pub slowdowns: Vec<f64>,
    /// Jain's fairness index over per-app normalized progress.
    pub fairness: f64,
    /// System throughput (weighted speedup): sum of normalized progress.
    pub throughput: f64,
    /// The merged run's CSV row (carries the append-only per-app
    /// columns).
    pub csv_row: String,
}

/// The mechanisms the co-run study compares: the solo-tuned baseline and
/// full proposal, plus the two multi-tenant shared-L2-TLB variants
/// (MASK-style fill tokens and sub-entry sharing).
pub const CORUN_MECHANISMS: [Mechanism; 4] = [
    Mechanism::Baseline,
    Mechanism::Full,
    Mechanism::MaskTokens,
    Mechanism::SubEntrySharing,
];

/// The multi-tenant co-run study: `apps` run as concurrent address
/// spaces sharing the GPU under each of [`CORUN_MECHANISMS`]. Each app's
/// solo baseline is a 1-app co-run through the same merged path, so the
/// slowdown's numerator and denominator share dispatch semantics (see
/// `gpu_sim`'s co-run module docs).
pub fn corun_study(apps: &[BenchmarkSpec], scale: Scale) -> Vec<CorunRow> {
    corun_study_grid(apps, scale, &Grid::serial())
}

/// [`corun_study`] over a parallel [`Grid`] (one cell per mechanism ×
/// {co-run, each solo baseline}).
pub fn corun_study_grid(apps: &[BenchmarkSpec], scale: Scale, grid: &Grid) -> Vec<CorunRow> {
    let cells: Vec<(Mechanism, Option<usize>)> = CORUN_MECHANISMS
        .iter()
        .flat_map(|&m| {
            std::iter::once((m, None)).chain((0..apps.len()).map(move |i| (m, Some(i))))
        })
        .collect();
    let reports = grid.map(&cells, |&(m, solo)| {
        let mut sim = m.simulator(GpuConfig::dac23_baseline());
        let load = |i: usize| grid.cache().get(&apps[i], scale, SEED);
        match solo {
            Some(i) => sim.run_corun(vec![load(i)]),
            None => sim.run_corun((0..apps.len()).map(load).collect()),
        }
    });
    CORUN_MECHANISMS
        .iter()
        .zip(reports.chunks(1 + apps.len()))
        .map(|(&m, chunk)| {
            let corun = &chunk[0];
            let solo: Vec<u64> = chunk[1..].iter().map(|r| r.per_app[0].cycles).collect();
            let slowdowns = corun.per_app_slowdowns(&solo);
            let progress = corun.per_app_progress(&solo);
            CorunRow {
                mechanism: m.to_string(),
                slowdowns,
                fairness: gpu_sim::jain_fairness(&progress),
                throughput: gpu_sim::system_throughput(&progress),
                csv_row: corun.to_csv_row(),
            }
        })
        .collect()
}

/// Geometric mean helper used for the paper's summary statistics.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::extended_registry;

    #[test]
    fn spec_filtered_variants_respect_the_set() {
        let ext = extended_registry();
        let just_two = &ext[10..];
        let rows = fig2_for(just_two, Scale::Test);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].bench, "embedding");
        assert_eq!(rows[1].bench, "mlp");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
        assert!((geomean([0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig2_produces_ten_rows() {
        let rows = fig2(Scale::Test);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.hit_64), "{}: {}", r.bench, r.hit_64);
            assert!(
                r.hit_256 >= r.hit_64 - 0.05,
                "{}: capacity should not hurt much ({} vs {})",
                r.bench,
                r.hit_256,
                r.hit_64
            );
        }
    }

    #[test]
    fn fig10_rows_are_normalized_to_baseline() {
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let row = fig10_11_one(&spec, Scale::Test);
        assert!((row.norm_time[0] - 1.0).abs() < 1e-12);
        for t in row.norm_time {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn variance_rows_have_small_spread_on_regular_kernels() {
        let rows = fig11_variance(Scale::Test, &[1, 2]);
        assert_eq!(rows.len(), 10);
        let gemm = rows.iter().find(|r| r.bench == "gemm").unwrap();
        // gemm's generator ignores the seed entirely.
        assert!(gemm.std_dev < 1e-9, "gemm std {}", gemm.std_dev);
    }

    #[test]
    fn warp_study_bounds() {
        for r in warp_study(Scale::Test) {
            assert!((0.0..=1.0).contains(&r.tb_at_reach), "{}", r.bench);
            assert!((0.0..=1.0).contains(&r.warp_at_reach), "{}", r.bench);
            // Intra-warp pairs are a subset of intra-TB pairs with equal
            // or tighter locality.
            assert!(
                r.warp_at_reach >= r.tb_at_reach - 0.35,
                "{}: warp {} vs tb {}",
                r.bench,
                r.warp_at_reach,
                r.tb_at_reach
            );
        }
    }

    #[test]
    fn fig3_4_bins_sum_to_one() {
        let rows = fig3_4(Scale::Test, Some(20));
        assert_eq!(rows.len(), 10);
        for r in &rows {
            let s: f64 = r.intra.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: {:?}", r.bench, r.intra);
        }
    }
}
