//! `sweep` — architectural sensitivity sweeps around the Table III
//! baseline, printed as CSV.
//!
//! ```text
//! sweep --param l1-entries|l2-entries|walkers|walk-latency|l2-ports|
//!               l2-port-occupancy|l2-slices|sms
//!       [--scale test|small|paper] [--bench <name>]...
//!       [--mechanism full|baseline] [--jobs N] [--sim-threads N]
//!       [--sanitize] [--trace-cache DIR] [--trace FILE]...
//! ```
//!
//! `--jobs N` runs up to `N` sweep cells (parameter value × benchmark)
//! in parallel; the default is the machine's available parallelism and
//! the CSV rows come out in the same order for every `N`.
//!
//! `--sim-threads N` parallelizes phase A inside each simulation (see
//! `gpu_sim::set_sim_threads`); the CSV is bit-identical for every `N`.
//!
//! `--sanitize` turns on the engine's runtime invariant checks (see
//! `gpu_sim::sanitize`) for every cell; the first violation aborts with
//! a state dump. The CSV is unchanged when no violation fires.
//!
//! `--trace-cache DIR` backs the sweep's workload cache with an on-disk
//! `trace/v1` directory and `--trace FILE` preloads specific trace
//! files (see `repro` / `trace-gen`); the CSV is byte-identical to the
//! in-memory run either way.
//!
//! Example: how sensitive is the proposal's win to the number of
//! page-table walkers?
//!
//! ```text
//! cargo run --release -p bench --bin sweep -- --param walkers --bench atax
//! ```

use bench::{Grid, SEED};
use gpu_sim::GpuConfig;
use orchestrated_tlb::{run_benchmark_cached, Mechanism};
use tlb::TlbConfig;
use workloads::{registry, BenchmarkSpec, Scale};

/// One sweepable parameter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Param {
    L1Entries,
    L2Entries,
    Walkers,
    WalkLatency,
    L2Ports,
    L2PortOccupancy,
    L2Slices,
    Sms,
}

impl Param {
    fn parse(s: &str) -> Option<Param> {
        Some(match s {
            "l1-entries" => Param::L1Entries,
            "l2-entries" => Param::L2Entries,
            "walkers" => Param::Walkers,
            "walk-latency" => Param::WalkLatency,
            "l2-ports" => Param::L2Ports,
            "l2-port-occupancy" => Param::L2PortOccupancy,
            "l2-slices" => Param::L2Slices,
            "sms" => Param::Sms,
            _ => return None,
        })
    }

    fn values(self) -> Vec<u64> {
        match self {
            Param::L1Entries => vec![16, 32, 64, 128, 256],
            Param::L2Entries => vec![128, 256, 512, 1024, 2048],
            Param::Walkers => vec![1, 2, 4, 8, 16, 32],
            Param::WalkLatency => vec![100, 250, 500, 1000, 2000],
            Param::L2Ports => vec![1, 2, 4, 8],
            // 1 = pipelined baseline; 10 = a port held for the full
            // lookup latency (unpipelined L2 TLB).
            Param::L2PortOccupancy => vec![1, 2, 5, 10],
            Param::L2Slices => vec![1, 2, 4, 8, 16],
            Param::Sms => vec![4, 8, 16, 32],
        }
    }

    fn apply(self, value: u64) -> GpuConfig {
        let base = GpuConfig::dac23_baseline();
        match self {
            Param::L1Entries => base.with_l1_tlb(TlbConfig::new(value as usize, 4, 1)),
            Param::L2Entries => GpuConfig {
                l2_tlb: TlbConfig::new(value as usize, 16, 10),
                ..base
            },
            Param::Walkers => GpuConfig {
                walkers: value as usize,
                ..base
            },
            Param::WalkLatency => GpuConfig {
                walk_latency: value,
                ..base
            },
            Param::L2Ports => GpuConfig {
                l2_tlb_ports: value as usize,
                ..base
            },
            Param::L2PortOccupancy => GpuConfig {
                l2_tlb_port_occupancy: value,
                ..base
            },
            Param::L2Slices => GpuConfig {
                l2_tlb_slices: value as usize,
                ..base
            },
            Param::Sms => GpuConfig {
                num_sms: value as usize,
                ..base
            },
        }
    }

    fn name(self) -> &'static str {
        match self {
            Param::L1Entries => "l1_entries",
            Param::L2Entries => "l2_entries",
            Param::Walkers => "walkers",
            Param::WalkLatency => "walk_latency",
            Param::L2Ports => "l2_ports",
            Param::L2PortOccupancy => "l2_port_occupancy",
            Param::L2Slices => "l2_slices",
            Param::Sms => "sms",
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut param = None;
    let mut scale = Scale::Small;
    let mut only: Vec<String> = Vec::new();
    let mut mechanism = Mechanism::Full;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut trace_cache: Option<String> = None;
    let mut traces: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sanitize" => gpu_sim::set_sanitize(true),
            "--trace-cache" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => trace_cache = Some(dir.clone()),
                    None => {
                        eprintln!("--trace-cache requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(file) => traces.push(file.clone()),
                    None => {
                        eprintln!("--trace requires a trace file");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--sim-threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => gpu_sim::set_sim_threads(n),
                    _ => {
                        eprintln!("--sim-threads requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--param" => {
                i += 1;
                param = args.get(i).and_then(|s| Param::parse(s));
                if param.is_none() {
                    eprintln!(
                        "--param must be one of l1-entries|l2-entries|walkers|walk-latency|l2-ports|l2-port-occupancy|l2-slices|sms"
                    );
                    std::process::exit(2);
                }
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--bench" => {
                i += 1;
                if let Some(name) = args.get(i) {
                    only.push(name.clone());
                }
            }
            "--mechanism" => {
                i += 1;
                mechanism = match args.get(i).map(String::as_str) {
                    Some("full") => Mechanism::Full,
                    Some("baseline") => Mechanism::Baseline,
                    Some("sched") => Mechanism::Scheduling,
                    Some("sched+part") => Mechanism::SchedPartition,
                    other => {
                        eprintln!("unknown mechanism {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(param) = param else {
        eprintln!("--param is required");
        std::process::exit(2);
    };
    let mut specs: Vec<BenchmarkSpec> = registry();
    if !only.is_empty() {
        specs.retain(|s| only.iter().any(|n| n == s.name));
    }
    if specs.is_empty() {
        eprintln!("no benchmark selected");
        std::process::exit(2);
    }

    println!(concat!(
        "param,value,bench,mechanism,cycles,l1_tlb_hit_rate,l2_tlb_hit_rate,walks,walker_wait,",
        "walker_coalesced,walker_max_queue_wait,translations,l1_tlb_cycles,icnt_cycles,",
        "l2_tlb_queue_cycles,l2_tlb_lookup_cycles,walk_cycles,fault_cycles,translate_cycles"
    ));
    // One sweep cell per parameter value × benchmark; the grid preserves
    // cell order, so the CSV comes out value-major like the serial loop.
    let cache = std::sync::Arc::new(match &trace_cache {
        Some(dir) => workloads::WorkloadCache::with_disk(dir),
        None => workloads::WorkloadCache::new(),
    });
    for file in &traces {
        if let Err(e) = cache.preload_trace(std::path::Path::new(file)) {
            eprintln!("--trace {file}: {e}");
            std::process::exit(2);
        }
    }
    let grid = Grid::with_cache(jobs, cache);
    let cells: Vec<(u64, usize)> = param
        .values()
        .iter()
        .flat_map(|&value| (0..specs.len()).map(move |i| (value, i)))
        .collect();
    let rows = grid.map(&cells, |&(value, i)| {
        let spec = &specs[i];
        let r = run_benchmark_cached(
            grid.cache(),
            spec,
            scale,
            SEED,
            mechanism,
            param.apply(value),
        );
        format!(
            "{},{},{},{},{},{:.6},{:.6},{},{},{},{},{},{},{},{},{},{},{},{}",
            param.name(),
            value,
            spec.name,
            mechanism.label(),
            r.total_cycles,
            r.l1_tlb_hit_rate(),
            r.l2_tlb.hit_rate(),
            r.walker.walks,
            r.walker.queue_wait_cycles,
            r.walker.coalesced,
            r.walker.max_queue_wait,
            r.latency.translations,
            r.latency.l1_tlb_cycles,
            r.latency.icnt_cycles,
            r.latency.l2_tlb_queue_cycles,
            r.latency.l2_tlb_lookup_cycles,
            r.latency.walk_cycles,
            r.latency.fault_cycles,
            r.latency.end_to_end_cycles
        )
    });
    for row in rows {
        println!("{row}");
    }
}
