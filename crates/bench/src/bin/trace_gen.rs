//! `trace-gen` — populates an on-disk `trace/v1` cache ahead of time.
//!
//! ```text
//! trace-gen [--bench NAME]... [--all] [--extended]
//!           [--scale test|small|paper|large] [--seed N]
//!           [--page-size 4k|2m] [--out-dir DIR]
//! ```
//!
//! Writes one trace file per selected benchmark into `--out-dir`
//! (default `traces/`), named by its provenance key
//! (`{bench}-{scale}-s{seed}-{4k|2m}.v1.trace`), and prints one line per
//! file: path, op counts, and the FNV-1a content hash. Generation is
//! deterministic — two populations of the same directory are
//! byte-identical, which is what the CI trace-determinism step asserts.
//!
//! The written directory is what `repro`/`sweep`/`engine-bench` consume
//! via `--trace-cache DIR`: a pre-populated cache turns every workload
//! materialization into a streamed replay.

use std::path::PathBuf;

use vmem::PageSize;
use workloads::format::file_hash;
use workloads::{extended_registry, registry, Scale, TraceReader, WorkloadCache};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Vec<String> = Vec::new();
    let mut all = false;
    let mut extended = false;
    let mut scale = Scale::Test;
    let mut seed = bench::SEED;
    let mut page_size = PageSize::Small;
    let mut out_dir = PathBuf::from("traces");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--extended" => {
                extended = true;
                all = true;
            }
            "--bench" => {
                i += 1;
                match args.get(i) {
                    Some(name) => only.push(name.clone()),
                    None => {
                        eprintln!("--bench requires a benchmark name");
                        std::process::exit(2);
                    }
                }
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str).map(str::parse) {
                    Some(Ok(s)) => s,
                    _ => {
                        eprintln!("unknown scale (use test|small|paper|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--seed requires an integer");
                        std::process::exit(2);
                    }
                };
            }
            "--page-size" => {
                i += 1;
                page_size = match args.get(i).map(String::as_str) {
                    Some("4k") => PageSize::Small,
                    Some("2m") => PageSize::Large,
                    other => {
                        eprintln!("unknown page size {other:?} (use 4k|2m)");
                        std::process::exit(2);
                    }
                };
            }
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_dir = PathBuf::from(p),
                    None => {
                        eprintln!("--out-dir requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if only.is_empty() && !all {
        eprintln!("select benchmarks with --bench NAME... or --all");
        std::process::exit(2);
    }

    let mut specs = if extended { extended_registry() } else { registry() };
    if !only.is_empty() {
        specs.retain(|s| only.iter().any(|n| n == s.name));
        if specs.is_empty() {
            eprintln!("no benchmark matched {only:?}");
            std::process::exit(2);
        }
    }

    let cache = WorkloadCache::with_disk(&out_dir);
    let mut failed = false;
    for spec in &specs {
        match cache
            .ensure_trace_file(spec, scale, seed, page_size)
            .and_then(|path| {
                let reader = TraceReader::open(&path)?;
                let hash = file_hash(&path)?;
                Ok((path, reader, hash))
            }) {
            Ok((path, reader, hash)) => {
                let s = reader.summary();
                println!(
                    "{}  {} kernels, {} ops ({} loads, {} stores, {} compute), hash {hash:016x}",
                    path.display(),
                    reader.kernels().len(),
                    s.total_ops(),
                    s.loads,
                    s.stores,
                    s.compute_ops,
                );
            }
            Err(e) => {
                eprintln!("{}: {e}", spec.name);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
