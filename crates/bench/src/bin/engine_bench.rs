//! `engine-bench` — machine-readable throughput report for the two-phase
//! parallel engine, written as `BENCH_engine.json`.
//!
//! ```text
//! engine-bench [--out PATH] [--reps N] [--threads N]... [--scale S]
//!              [--trace-cache DIR] [--trace FILE]...
//! ```
//!
//! Runs the same scenarios as the `simulator_throughput` criterion bench
//! (gemm/bfs/atax under the baseline, plus mvt under the heavier L1 TLB
//! organizations) once per `--sim-threads` setting (default 1, 2, 4) and
//! records the best wall time over `--reps` repetitions (default 3) as
//! simulated cycles per second plus the speedup versus the serial run.
//! `--scale large` generates engine-throughput-sized inputs (seconds of
//! simulation per run) — the configuration the speedup acceptance
//! numbers in EXPERIMENTS.md are measured at; the `test` default keeps
//! the CI smoke fast.
//!
//! Wall-clock time is banned in the simulator proper (simlint
//! `wall-clock`): simulated timing must never depend on the host. This
//! binary is the one sanctioned consumer — it *measures* the host, it
//! never feeds the measurement back into a simulation. The determinism
//! contract is enforced inline: every thread count must report exactly
//! the serial run's `total_cycles`, or the emitter aborts.
//!
//! Schema (`"schema": "bench-engine/v2"` — v1 plus `host_cores`, the
//! per-scenario `scale`, and a selectable top-level `scale`; every v1
//! field is unchanged, so v1 consumers only need the version bump):
//!
//! ```json
//! {
//!   "schema": "bench-engine/v2",
//!   "scale": "test",
//!   "host_cores": 8,
//!   "reps": 3,
//!   "scenarios": [
//!     {
//!       "bench": "gemm", "mechanism": "baseline", "scale": "test",
//!       "total_cycles": 12345,
//!       "runs": [
//!         { "sim_threads": 1, "best_seconds": 0.01,
//!           "cycles_per_sec": 1234500.0, "speedup_vs_serial": 1.0 }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! `host_cores` is the host's available parallelism at measurement
//! time: speedup numbers are only meaningful relative to it (a 1-core
//! runner truthfully reports ~1.0x, which is why the acceptance
//! criterion binds on multi-core runners only).
//!
//! `--trace-cache DIR` / `--trace FILE` replay each rep by streaming a
//! `trace/v1` file instead of cloning the in-RAM workload (the
//! determinism check still binds: streamed cycles must equal serial
//! in-memory cycles). Wall times then include trace decode, which is
//! the honest cost of the streaming pipeline.
//!
//! # `--tune` — self-calibration sweep
//!
//! `engine-bench --tune` sweeps the engine's wall-clock-only tuning
//! knobs — `shard_threshold` × `epoch_cycles` × `shard_chunk` — over a
//! fixed scenario pair and writes `BENCH_tuning.json` (schema
//! `"bench-tuning/v1"`). Every cell must report byte-identical
//! simulated cycles (the knobs may only move wall-clock), which the
//! emitter enforces; `speedup_vs_default` compares each cell to the
//! shipped [`GpuConfig::dac23_baseline`] knob values, and `best` names
//! the fastest cell so the defaults can be re-anchored on a new host:
//!
//! ```json
//! {
//!   "schema": "bench-tuning/v1",
//!   "scale": "test",
//!   "host_cores": 8,
//!   "reps": 3,
//!   "sim_threads": 4,
//!   "scenarios": ["gemm/baseline", "mvt/sched+part+share"],
//!   "cells": [
//!     { "shard_threshold": 64, "epoch_cycles": 4096, "shard_chunk": 1,
//!       "total_seconds": 0.01, "speedup_vs_default": 1.0 }
//!   ],
//!   "best": { "shard_threshold": 64, "epoch_cycles": 4096,
//!             "shard_chunk": 1, "total_seconds": 0.01,
//!             "speedup_vs_default": 1.0 }
//! }
//! ```

use std::fmt::Write as _;
// simlint: allow(wall-clock, reason = "engine-bench measures host throughput; nothing flows back into simulated timing")
use std::time::Instant;

use bench::SEED;
use gpu_sim::GpuConfig;
use orchestrated_tlb::Mechanism;
use workloads::{registry, BenchmarkSpec, Scale, WorkloadCache};

/// The scenarios of the `simulator_throughput` criterion groups.
const SCENARIOS: [(&str, Mechanism); 6] = [
    ("gemm", Mechanism::Baseline),
    ("bfs", Mechanism::Baseline),
    ("atax", Mechanism::Baseline),
    ("mvt", Mechanism::Baseline),
    ("mvt", Mechanism::Full),
    ("mvt", Mechanism::Compression),
];

/// One timed run: best wall time over `reps`, plus the simulated cycle
/// count (identical across reps by the determinism contract). Each rep
/// pulls a fresh [`workloads::TraceSource`] from the cache — a clone of
/// the shared in-RAM workload for a memory cache, a freshly opened
/// streaming reader for a disk-backed one — so the timed region covers
/// exactly what a grid cell pays.
fn best_of(
    reps: usize,
    threads: usize,
    mechanism: Mechanism,
    cache: &WorkloadCache,
    spec: &BenchmarkSpec,
    scale: Scale,
    config: &GpuConfig,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0u64;
    for _ in 0..reps {
        let mut sim = mechanism
            .simulator(config.clone())
            .with_sim_threads(threads);
        let input = cache.get_source(spec, scale, SEED);
        // simlint: allow(wall-clock, reason = "engine-bench measures host throughput; nothing flows back into simulated timing")
        let start = Instant::now();
        let report = match sim.run_source(input) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace replay of {} failed: {e}", spec.name);
                std::process::exit(1);
            }
        };
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        cycles = report.total_cycles;
    }
    (best, cycles)
}

/// The `--tune` sweep grid. The middle entry of each axis is the
/// shipped [`GpuConfig::dac23_baseline`] default (chunk: the first), so
/// the default cell is always measured and `speedup_vs_default` is
/// anchored within the same sweep.
const TUNE_THRESHOLDS: [usize; 3] = [16, 64, 256];
const TUNE_EPOCHS: [u64; 3] = [1024, 4096, 16384];
const TUNE_CHUNKS: [usize; 2] = [1, 4];

/// The scenarios timed per tuning cell: the serial-engine staple plus
/// the paper's full mechanism, whose partitioned L1 now rides the
/// sharded drain the knobs steer.
const TUNE_SCENARIOS: [(&str, Mechanism); 2] =
    [("gemm", Mechanism::Baseline), ("mvt", Mechanism::Full)];

/// One `--tune` cell: measured wall time for a knob combination.
struct TuneCell {
    threshold: usize,
    epoch: u64,
    chunk: usize,
    total_seconds: f64,
}

impl TuneCell {
    fn json(&self, speedup: f64) -> String {
        format!(
            "{{ \"shard_threshold\": {}, \"epoch_cycles\": {}, \
             \"shard_chunk\": {}, \"total_seconds\": {:.6}, \
             \"speedup_vs_default\": {speedup:.3} }}",
            self.threshold, self.epoch, self.chunk, self.total_seconds
        )
    }
}

/// Runs the self-calibration sweep and writes `bench-tuning/v1` JSON.
fn run_tune(out_path: &str, reps: usize, scale: Scale, threads: usize, cache: &WorkloadCache) {
    let specs = registry();
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let default = GpuConfig::dac23_baseline();
    let mut cells: Vec<TuneCell> = Vec::new();
    // Per-scenario simulated cycles pinned by the first cell: the knobs
    // are wall-clock-only, so every other cell must reproduce them.
    let mut pinned: Vec<u64> = Vec::new();
    for &threshold in &TUNE_THRESHOLDS {
        for &epoch in &TUNE_EPOCHS {
            for &chunk in &TUNE_CHUNKS {
                let config = GpuConfig {
                    shard_threshold: threshold,
                    epoch_cycles: epoch,
                    shard_chunk: chunk,
                    ..default.clone()
                };
                eprintln!(
                    "engine-bench --tune: threshold={threshold} epoch={epoch} chunk={chunk} ..."
                );
                let mut total = 0.0f64;
                for (i, &(name, mechanism)) in TUNE_SCENARIOS.iter().enumerate() {
                    let spec = specs
                        .iter()
                        .find(|s| s.name == name)
                        .unwrap_or_else(|| panic!("benchmark {name} missing from the registry"));
                    let (best, cycles) =
                        best_of(reps, threads, mechanism, cache, spec, scale, &config);
                    total += best;
                    if cells.is_empty() {
                        pinned.push(cycles);
                    } else if cycles != pinned[i] {
                        eprintln!(
                            "tuning knob changed simulated output: {name}/{} reported \
                             {cycles} cycles at threshold={threshold} epoch={epoch} \
                             chunk={chunk} but {} at the first cell",
                            mechanism.label(),
                            pinned[i]
                        );
                        std::process::exit(1);
                    }
                }
                cells.push(TuneCell {
                    threshold,
                    epoch,
                    chunk,
                    total_seconds: total,
                });
            }
        }
    }

    let default_cell = cells
        .iter()
        .find(|c| {
            c.threshold == default.shard_threshold
                && c.epoch == default.epoch_cycles
                && c.chunk == default.shard_chunk
        })
        .expect("the sweep grid contains the shipped defaults");
    let default_seconds = default_cell.total_seconds;
    let best = cells
        .iter()
        .min_by(|a, b| a.total_seconds.total_cmp(&b.total_seconds))
        .expect("sweep grid is non-empty");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"bench-tuning/v1\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"sim_threads\": {threads},");
    let scenario_names: Vec<String> = TUNE_SCENARIOS
        .iter()
        .map(|(n, m)| format!("\"{n}/{}\"", m.label()))
        .collect();
    let _ = writeln!(json, "  \"scenarios\": [{}],", scenario_names.join(", "));
    let _ = writeln!(json, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {}{sep}",
            cell.json(default_seconds / cell.total_seconds)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"best\": {}",
        best.json(default_seconds / best.total_seconds)
    );
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("engine-bench: wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_engine.json");
    let mut out_given = false;
    let mut tune = false;
    let mut reps = 3usize;
    let mut scale = Scale::Test;
    let mut thread_counts: Vec<usize> = Vec::new();
    let mut trace_cache: Option<String> = None;
    let mut traces: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => {
                        out_path = p.clone();
                        out_given = true;
                    }
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
            }
            "--tune" => tune = true,
            "--reps" => {
                i += 1;
                reps = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--reps requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(|v| v.as_str()) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (use test|small|paper|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => thread_counts.push(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--trace-cache" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => trace_cache = Some(dir.clone()),
                    None => {
                        eprintln!("--trace-cache requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(file) => traces.push(file.clone()),
                    None => {
                        eprintln!("--trace requires a trace file");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if thread_counts.is_empty() {
        thread_counts = vec![1, 2, 4];
    }
    if thread_counts[0] != 1 {
        thread_counts.insert(0, 1); // the serial reference is mandatory
    }

    let cache = match &trace_cache {
        Some(dir) => WorkloadCache::with_disk(dir),
        None => WorkloadCache::new(),
    };
    for file in &traces {
        if let Err(e) = cache.preload_trace(std::path::Path::new(file)) {
            eprintln!("--trace {file}: {e}");
            std::process::exit(2);
        }
    }

    if tune {
        if !out_given {
            out_path = String::from("BENCH_tuning.json");
        }
        // Tune at the highest requested thread count: the swept knobs
        // steer the parallel engine's batching and sharding.
        let threads = thread_counts.iter().copied().max().unwrap_or(1);
        run_tune(&out_path, reps, scale, threads, &cache);
        return;
    }

    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let specs = registry();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"bench-engine/v2\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (si, &(name, mechanism)) in SCENARIOS.iter().enumerate() {
        let spec = specs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("benchmark {name} missing from the registry"));
        eprintln!("engine-bench: {name}/{} at --scale {scale} ...", mechanism.label());

        let mut serial_best = 0.0f64;
        let mut serial_cycles = 0u64;
        let mut runs = String::new();
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let (best, cycles) = best_of(
                reps,
                threads,
                mechanism,
                &cache,
                spec,
                scale,
                &GpuConfig::dac23_baseline(),
            );
            if ti == 0 {
                serial_best = best;
                serial_cycles = cycles;
            } else if cycles != serial_cycles {
                eprintln!(
                    "determinism violated: {name}/{} reported {cycles} cycles at \
                     --sim-threads {threads} but {serial_cycles} serially",
                    mechanism.label()
                );
                std::process::exit(1);
            }
            let sep = if ti + 1 < thread_counts.len() { "," } else { "" };
            let _ = writeln!(
                runs,
                "        {{ \"sim_threads\": {threads}, \"best_seconds\": {best:.6}, \
                 \"cycles_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3} }}{sep}",
                cycles as f64 / best,
                serial_best / best
            );
        }
        let sep = if si + 1 < SCENARIOS.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"bench\": \"{name}\",");
        let _ = writeln!(json, "      \"mechanism\": \"{}\",", mechanism.label());
        let _ = writeln!(json, "      \"scale\": \"{scale}\",");
        let _ = writeln!(json, "      \"total_cycles\": {serial_cycles},");
        let _ = writeln!(json, "      \"runs\": [");
        json.push_str(&runs);
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{sep}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("engine-bench: wrote {out_path}");
}
