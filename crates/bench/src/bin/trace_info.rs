//! `trace-info` — inspects a `trace/v1` file without replaying it.
//!
//! ```text
//! trace-info FILE... [--verify] [--replay] [--materialize]
//! ```
//!
//! Prints the footer metadata (provenance key, buffer table, per-kernel
//! index) and the summary counters stored at write time — opening a
//! trace reads only the footer, so this is O(footer) no matter how large
//! the op stream is.
//!
//! `--verify` additionally decodes every block and checks its stored
//! checksum plus the summary recount (exit 1 on the first corruption).
//!
//! `--replay` streams the trace through the baseline simulator and
//! prints the total cycle count plus the process's peak RSS (`VmHWM`
//! from `/proc/self/status`); `--materialize` does the same but loads
//! the whole workload into RAM first. The pair is the RSS-flatness
//! measurement documented in EXPERIMENTS.md: on a large trace, streamed
//! peak RSS stays near the footer + one decoded block, while the
//! materialized run pays for every TB at once.

use std::path::Path;

use gpu_sim::{GpuConfig, Simulator};
use workloads::format::TraceSource;
use workloads::TraceReader;

/// Peak resident set size of this process in KiB, per the kernel's
/// `VmHWM` line (`None` off Linux or if the field is missing).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn print_info(reader: &TraceReader) {
    let s = reader.summary();
    println!("{}", reader.path().display());
    println!(
        "  workload {:?}  bench {:?}  scale {}  seed {}  pages {}",
        reader.workload_name(),
        reader.bench(),
        reader.scale_tag(),
        reader.seed(),
        match reader.page_size() {
            vmem::PageSize::Small => "4k",
            vmem::PageSize::Large => "2m",
        },
    );
    println!(
        "  summary: {} ops ({} loads, {} stores, {} compute / {} cycles), \
         {} gather + {} strided, {} lane accesses",
        s.total_ops(),
        s.loads,
        s.stores,
        s.compute_ops,
        s.compute_cycles,
        s.gather_ops,
        s.strided_ops,
        s.lane_accesses,
    );
    println!("  buffers:");
    for b in reader.buffers() {
        println!("    {:<12} {:>12} bytes @ {:#x}", b.name, b.size, b.base);
    }
    println!("  kernels:");
    for k in reader.kernels() {
        println!(
            "    {:<12} {} TBs x {} threads (max {}/SM), {} blocks, {} ops",
            k.name,
            k.tb_count,
            k.threads_per_tb,
            k.max_concurrent_tbs_per_sm,
            k.blocks.len(),
            k.blocks.iter().map(|b| b.ops).sum::<u64>(),
        );
    }
}

fn run_and_report(path: &Path, materialize: bool) -> Result<(), workloads::TraceError> {
    let mode = if materialize { "materialized" } else { "streamed" };
    let report = if materialize {
        let workload = TraceReader::open(path)?.read_workload()?;
        Simulator::new(GpuConfig::dac23_baseline()).run(workload)
    } else {
        Simulator::new(GpuConfig::dac23_baseline()).run_source(TraceSource::open(path)?)?
    };
    match peak_rss_kib() {
        Some(kib) => println!(
            "  {mode} replay: {} cycles, peak RSS {kib} KiB",
            report.total_cycles
        ),
        None => println!("  {mode} replay: {} cycles", report.total_cycles),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut verify = false;
    let mut replay = false;
    let mut materialize = false;
    for arg in &args {
        match arg.as_str() {
            "--verify" => verify = true,
            "--replay" => replay = true,
            "--materialize" => materialize = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: trace-info FILE... [--verify] [--replay] [--materialize]");
        std::process::exit(2);
    }

    let mut failed = false;
    for file in &files {
        let path = Path::new(file);
        let reader = match TraceReader::open(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{file}: {e}");
                failed = true;
                continue;
            }
        };
        print_info(&reader);
        if verify {
            match reader.verify() {
                Ok(()) => println!("  verify: ok (all block checksums + summary recount)"),
                Err(e) => {
                    eprintln!("{file}: verify FAILED: {e}");
                    failed = true;
                    continue;
                }
            }
        }
        if replay {
            if let Err(e) = run_and_report(path, false) {
                eprintln!("{file}: streamed replay failed: {e}");
                failed = true;
            }
        }
        if materialize {
            if let Err(e) = run_and_report(path, true) {
                eprintln!("{file}: materialized replay failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
