//! `repro` — regenerates every table and figure of the paper as text.
//!
//! ```text
//! repro [--scale test|small|paper] [--jobs N] [--sim-threads N]
//!       [--sanitize] [--fig2] [--fig3] [--fig4] [--fig5] [--fig6]
//!       [--fig10] [--fig11] [--fig12] [--hugepage] [--table2]
//!       [--breakdown] [--all] [--apps a,b,...]
//! ```
//!
//! `--apps a,b[,c,...]` switches to the multi-tenant co-run study: the
//! named benchmarks run as concurrent address spaces sharing the GPU
//! (2-16 apps), and the output reports each mechanism's per-app slowdown
//! vs. solo, Jain fairness index and system throughput, followed by the
//! per-app CSV rows. Like every other figure, output is byte-identical
//! for any `--jobs`/`--sim-threads` combination.
//!
//! `--jobs N` runs up to `N` grid cells (benchmark × mechanism) in
//! parallel; the default is the machine's available parallelism and the
//! output is bit-identical for every `N`.
//!
//! `--sim-threads N` parallelizes *inside* each simulation: phase A of
//! the engine's two-phase event loop steps event-ready SMs on `N`
//! threads (see `gpu_sim::set_sim_threads`). Output is bit-identical for
//! every `N`; it composes with `--jobs` (total worker threads scale with
//! the product, so shrink `--jobs` when raising `--sim-threads`).
//!
//! `--sanitize` turns on the engine's runtime invariant checks (TLB set
//! ownership, LRU order, stats identities — see `gpu_sim::sanitize`) for
//! every simulation in the run; the first violation aborts with a state
//! dump. Output is unchanged when no violation fires.
//!
//! `--trace-cache DIR` backs the run's workload cache with an on-disk
//! `trace/v1` directory (see `trace-gen`): misses write trace files,
//! hits stream TBs from disk instead of materializing the kernel, and
//! the output stays byte-identical either way. `--trace FILE`
//! (repeatable) preloads specific trace files; requests matching their
//! recorded provenance replay them.

use bench::{
    corun_study_grid, fig10_11_grid, fig11_variance_grid, fig12_grid, fig2_grid, fig3_4_grid,
    fig5_6_grid, geomean, hugepage_grid, warp_study_grid, Grid, SEED,
};
use orchestrated_tlb::{run_benchmark_cached, Mechanism};
use workloads::{extended_registry, registry, BenchmarkSpec, Scale};

fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

fn bins(b: &[f64; 5]) -> String {
    b.iter()
        .map(|x| format!("{:4.0}%", x * 100.0))
        .collect::<Vec<_>>()
        .join(" ")
}

fn print_table2(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    println!("== Table II: benchmarks (scaled inputs; paper footprints are 0.7-107 GB) ==");
    println!(
        "{:<10} {:<10} {:<45} {:>10} {:>9} {:>8}",
        "bench", "suite", "application", "footprint", "kernels", "TBs"
    );
    let idx: Vec<usize> = (0..specs.len()).collect();
    let rows = grid.map(&idx, |&i| {
        let spec = &specs[i];
        let wl = grid.cache().get(spec, scale, SEED);
        let tbs: usize = wl.kernels().iter().map(|k| k.tbs.len()).sum();
        let summary = wl.summary();
        format!(
            "{:<10} {:<10} {:<45} {:>8.2}MB {:>9} {:>8}  ({} ops, {:.0}% gather)",
            spec.name,
            format!("{:?}", spec.suite),
            spec.application,
            wl.footprint_bytes() as f64 / (1024.0 * 1024.0),
            wl.kernels().len(),
            tbs,
            summary.total_ops(),
            summary.gather_fraction() * 100.0
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!();
}

fn print_fig2(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    println!("== Figure 2: baseline L1 TLB hit rate, 64 vs 256 entries ==");
    println!("{:<10} {:>8} {:>8}", "bench", "64-entry", "256-entry");
    let rows = fig2_grid(specs, scale, grid);
    for r in &rows {
        println!("{:<10} {:>8} {:>8}", r.bench, pct(r.hit_64), pct(r.hit_256));
    }
    println!(
        "{:<10} {:>8} {:>8}\n",
        "mean",
        pct(rows.iter().map(|r| r.hit_64).sum::<f64>() / rows.len() as f64),
        pct(rows.iter().map(|r| r.hit_256).sum::<f64>() / rows.len() as f64)
    );
}

fn print_fig3_4(specs: &[BenchmarkSpec], scale: Scale, which: &str, grid: &Grid) {
    let rows = fig3_4_grid(specs, scale, Some(64), grid);
    if which != "4" {
        println!("== Figure 3: inter-TB translation reuse (bins b1..b5) ==");
        println!("{:<10}   b1   b2   b3   b4   b5", "bench");
        for r in &rows {
            println!("{:<10} {}", r.bench, bins(&r.inter));
        }
        println!();
    }
    if which != "3" {
        println!("== Figure 4: intra-TB translation reuse (bins b1..b5) ==");
        println!("{:<10}   b1   b2   b3   b4   b5", "bench");
        for r in &rows {
            println!("{:<10} {}", r.bench, bins(&r.intra));
        }
        println!();
    }
}

fn print_fig5_6(specs: &[BenchmarkSpec], scale: Scale, which: &str, grid: &Grid) {
    let rows = fig5_6_grid(specs, scale, grid);
    let header = || {
        print!("{:<10}", "bench");
        for e in bench::DISTANCE_EXPONENTS.0..=bench::DISTANCE_EXPONENTS.1 {
            print!(" {:>5}", 1u64 << e);
        }
        println!("  (CDF at distance <= x; '|' marks 64-entry reach)");
    };
    if which != "6" {
        println!("== Figure 5: intra-TB reuse distance CDF, concurrent TBs ==");
        header();
        for r in &rows {
            print!("{:<10}", r.bench);
            for (x, v) in &r.concurrent {
                print!(" {:>4.0}%{}", v * 100.0, if *x == 64 { "|" } else { "" });
            }
            println!();
        }
        println!();
    }
    if which != "5" {
        println!("== Figure 6: intra-TB reuse distance CDF, one TB at a time ==");
        header();
        for r in &rows {
            print!("{:<10}", r.bench);
            for (x, v) in &r.isolated {
                print!(" {:>4.0}%{}", v * 100.0, if *x == 64 { "|" } else { "" });
            }
            println!();
        }
        println!();
    }
}

fn print_fig10_11(specs: &[BenchmarkSpec], scale: Scale, which: &str, grid: &Grid) {
    let rows = fig10_11_grid(specs, scale, grid);
    let labels = ["baseline", "sched", "sched+part", "+share"];
    if which != "11" {
        println!("== Figure 10: L1 TLB hit rates (higher is better) ==");
        print!("{:<10}", "bench");
        for l in labels {
            print!(" {:>11}", l);
        }
        println!();
        for r in &rows {
            print!("{:<10}", r.bench);
            for h in r.hit_rates {
                print!(" {:>11}", pct(h));
            }
            println!();
        }
        println!();
    }
    if which != "10" {
        println!("== Figure 11: execution time normalized to baseline (lower is better) ==");
        print!("{:<10}", "bench");
        for l in labels {
            print!(" {:>11}", l);
        }
        println!();
        for r in &rows {
            print!("{:<10}", r.bench);
            for t in r.norm_time {
                print!(" {:>11.3}", t);
            }
            println!();
        }
        for (i, l) in labels.iter().enumerate() {
            let g = geomean(rows.iter().map(|r| r.norm_time[i]));
            println!("geomean {:<11} {:.3}  ({:+.1}% vs baseline)", l, g, (g - 1.0) * 100.0);
        }
        println!();
    }
}

fn print_fig12(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    println!("== Figure 12: ours + TLB compression, normalized to compression alone ==");
    let rows = fig12_grid(specs, scale, grid);
    for r in &rows {
        println!("{:<10} {:>7.3}x", r.bench, r.speedup);
    }
    println!(
        "{:<10} {:>7.3}x\n",
        "geomean",
        geomean(rows.iter().map(|r| r.speedup))
    );
}

fn print_hugepage(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    println!("== Section V huge-page study (2 MiB pages) ==");
    println!(
        "{:<10} {:>14} {:>20}",
        "bench", "base hit(2MB)", "ours time (norm.)"
    );
    let rows = hugepage_grid(specs, scale, grid);
    for r in &rows {
        println!(
            "{:<10} {:>14} {:>20.3}",
            r.bench,
            pct(r.hit_rate_huge),
            r.norm_time_ours
        );
    }
    let g = geomean(rows.iter().map(|r| r.norm_time_ours));
    println!(
        "{:<10} {:>14} {:>20.3}  ({:+.1}%)\n",
        "geomean",
        "",
        g,
        (g - 1.0) * 100.0
    );
}

fn print_variance(scale: Scale, grid: &Grid) {
    let seeds = [42, 1, 7, 1234];
    println!("== Seed sensitivity: full proposal's normalized time, {} seeds ==", seeds.len());
    println!("{:<10} {:>8} {:>8}", "bench", "mean", "std");
    for r in fig11_variance_grid(scale, &seeds, grid) {
        println!("{:<10} {:>8.3} {:>8.4}", r.bench, r.mean, r.std_dev);
    }
    println!();
}

fn print_warp_study(scale: Scale, grid: &Grid) {
    println!("== §VII warp-granularity reuse distances (P[d <= 64-entry reach]) ==");
    println!("{:<10} {:>10} {:>10}", "bench", "intra-TB", "intra-warp");
    for r in warp_study_grid(scale, grid) {
        println!(
            "{:<10} {:>9.0}% {:>9.0}%",
            r.bench,
            r.tb_at_reach * 100.0,
            r.warp_at_reach * 100.0
        );
    }
    println!();
}

/// Prints the mem-hier per-level translation-latency attribution for the
/// baseline and the full proposal: where each translation cycle went
/// (L1 TLB, interconnect, L2 TLB queueing, L2 TLB lookup, walk, fault).
fn print_breakdown(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    println!("== Translation latency breakdown (share of translation cycles) ==");
    println!(
        "{:<10} {:<18} {:>9}{}",
        "bench",
        "mechanism",
        "mean lat",
        analysis::LATENCY_COMPONENTS
            .map(|c| format!(" {c:>13}"))
            .join("")
    );
    let mechs = [Mechanism::Baseline, Mechanism::Full];
    let cells: Vec<(usize, Mechanism)> = (0..specs.len())
        .flat_map(|i| mechs.into_iter().map(move |m| (i, m)))
        .collect();
    let rows = grid.map(&cells, |&(i, m)| {
        let report = run_benchmark_cached(
            grid.cache(),
            &specs[i],
            scale,
            SEED,
            m,
            gpu_sim::GpuConfig::dac23_baseline(),
        );
        report
            .latency
            .check()
            .expect("per-stage latency must sum to end-to-end translation latency");
        let shares = analysis::latency_shares(&report.latency);
        format!(
            "{:<10} {:<18} {:>9.1}{}",
            specs[i].name,
            m.to_string(),
            report.latency.mean_latency(),
            shares.map(|s| format!(" {:>12.1}%", s * 100.0)).join("")
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!();
}

/// Prints the multi-tenant co-run study: per-app slowdown vs. solo,
/// Jain fairness and system throughput per mechanism, then the per-app
/// CSV rows.
fn print_corun(apps: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    let names: Vec<&str> = apps.iter().map(|s| s.name).collect();
    println!(
        "== Multi-tenant co-run: {} concurrent address spaces ({}) ==",
        apps.len(),
        names.join("+")
    );
    print!("{:<18}", "mechanism");
    for n in &names {
        print!(" {:>10}", n);
    }
    println!(" {:>9} {:>11}  (slowdown vs solo; fairness/STP over progress)", "fairness", "throughput");
    let rows = corun_study_grid(apps, scale, grid);
    for r in &rows {
        print!("{:<18}", r.mechanism);
        for s in &r.slowdowns {
            print!(" {:>10.3}", s);
        }
        println!(" {:>9.4} {:>11.4}", r.fairness, r.throughput);
    }
    println!();
    println!("{}", gpu_sim::SimReport::csv_header_for_apps(apps.len()));
    for r in &rows {
        println!("{}", r.csv_row);
    }
}

/// Prints every mechanism's headline counters as CSV for the selected
/// benchmarks.
fn print_csv(specs: &[BenchmarkSpec], scale: Scale, grid: &Grid) {
    println!("{}", gpu_sim::SimReport::csv_header());
    let cells: Vec<(usize, Mechanism)> = (0..specs.len())
        .flat_map(|i| Mechanism::all().into_iter().map(move |m| (i, m)))
        .collect();
    let rows = grid.map(&cells, |&(i, m)| {
        run_benchmark_cached(
            grid.cache(),
            &specs[i],
            scale,
            SEED,
            m,
            gpu_sim::GpuConfig::dac23_baseline(),
        )
        .to_csv_row()
    });
    for row in rows {
        println!("{row}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut wanted: Vec<String> = Vec::new();
    let mut extended = false;
    let mut only: Vec<String> = Vec::new();
    let mut jobs = 0usize; // 0 = available parallelism
    let mut apps: Vec<String> = Vec::new();
    let mut trace_cache: Option<String> = None;
    let mut traces: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--extended" => extended = true,
            "--sanitize" => gpu_sim::set_sanitize(true),
            "--trace-cache" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => trace_cache = Some(dir.clone()),
                    None => {
                        eprintln!("--trace-cache requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(file) => traces.push(file.clone()),
                    None => {
                        eprintln!("--trace requires a trace file");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--sim-threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => gpu_sim::set_sim_threads(n),
                    _ => {
                        eprintln!("--sim-threads requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--bench" => {
                i += 1;
                match args.get(i) {
                    Some(name) => only.push(name.clone()),
                    None => {
                        eprintln!("--bench requires a benchmark name");
                        std::process::exit(2);
                    }
                }
            }
            "--apps" => {
                i += 1;
                match args.get(i) {
                    Some(list) if !list.is_empty() => {
                        apps.extend(list.split(',').map(str::to_owned));
                    }
                    _ => {
                        eprintln!("--apps requires a comma-separated benchmark list");
                        std::process::exit(2);
                    }
                }
            }
            "--csv" => wanted.push("csv".into()),
            "--breakdown" => wanted.push("breakdown".into()),
            "--variance" => wanted.push("variance".into()),
            "--warp-study" => wanted.push("warp".into()),
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (use test|small|paper|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--all" => wanted.extend(
                ["table2", "2", "3", "4", "5", "6", "10", "11", "12", "hugepage"]
                    .map(String::from),
            ),
            flag if flag.starts_with("--fig") => wanted.push(flag[5..].to_owned()),
            "--table2" => wanted.push("table2".into()),
            "--hugepage" => wanted.push("hugepage".into()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if wanted.is_empty() {
        wanted = ["table2", "2", "10", "11"].map(String::from).to_vec();
    }
    let mut specs = if extended { extended_registry() } else { registry() };
    if !only.is_empty() {
        specs.retain(|s| only.iter().any(|n| n == s.name));
        if specs.is_empty() {
            eprintln!("no benchmark matched {only:?}");
            std::process::exit(2);
        }
    }
    // One grid (and one workload cache) across every requested figure.
    // The job count deliberately stays out of the printed header: output
    // is byte-identical for every --jobs N — and for the in-memory vs
    // trace-streamed paths (--trace-cache / --trace).
    let cache = std::sync::Arc::new(match &trace_cache {
        Some(dir) => workloads::WorkloadCache::with_disk(dir),
        None => workloads::WorkloadCache::new(),
    });
    for file in &traces {
        if let Err(e) = cache.preload_trace(std::path::Path::new(file)) {
            eprintln!("--trace {file}: {e}");
            std::process::exit(2);
        }
    }
    let grid = Grid::with_cache(jobs, cache);
    println!("# orchestrated-tlb repro (scale: {scale}, seed: {SEED})\n");
    let has = |x: &str| wanted.iter().any(|w| w == x);
    if !apps.is_empty() {
        // The co-run study is its own report: always resolve against the
        // extended registry so any known benchmark can join a mix.
        let all = extended_registry();
        let corun_specs: Vec<BenchmarkSpec> = apps
            .iter()
            .map(|name| {
                all.iter().find(|s| s.name == name).cloned().unwrap_or_else(|| {
                    eprintln!("--apps: unknown benchmark {name}");
                    std::process::exit(2);
                })
            })
            .collect();
        if corun_specs.len() < 2 {
            eprintln!("--apps needs at least two benchmarks to co-run");
            std::process::exit(2);
        }
        print_corun(&corun_specs, scale, &grid);
        return;
    }
    if has("csv") {
        print_csv(&specs, scale, &grid);
        return;
    }
    if has("table2") {
        print_table2(&specs, scale, &grid);
    }
    if has("2") {
        print_fig2(&specs, scale, &grid);
    }
    if has("3") || has("4") {
        let which = match (has("3"), has("4")) {
            (true, false) => "3",
            (false, true) => "4",
            _ => "34",
        };
        print_fig3_4(&specs, scale, which, &grid);
    }
    if has("5") || has("6") {
        let which = match (has("5"), has("6")) {
            (true, false) => "5",
            (false, true) => "6",
            _ => "56",
        };
        print_fig5_6(&specs, scale, which, &grid);
    }
    if has("10") || has("11") {
        let which = match (has("10"), has("11")) {
            (true, false) => "10",
            (false, true) => "11",
            _ => "1011",
        };
        print_fig10_11(&specs, scale, which, &grid);
    }
    if has("12") {
        print_fig12(&specs, scale, &grid);
    }
    if has("hugepage") {
        print_hugepage(&specs, scale, &grid);
    }
    if has("breakdown") {
        print_breakdown(&specs, scale, &grid);
    }
    if has("variance") {
        print_variance(scale, &grid);
    }
    if has("warp") {
        print_warp_study(scale, &grid);
    }
    // Diagnostics go to stderr so stdout stays byte-identical; hit/miss
    // counts are themselves deterministic (one generation per unique
    // key regardless of the job count).
    if std::env::var_os("REPRO_CACHE_STATS").is_some() {
        let stats = grid.cache().stats();
        eprintln!(
            "# workload cache: {} generated, {} served from cache ({} requests)",
            stats.misses,
            stats.hits,
            stats.requests()
        );
    }
}
