//! `fuzz` — the differential fuzzing campaign driver.
//!
//! ```text
//! fuzz [--seeds A..B] [--iters-per-seed N] [--mutate NAME]
//!      [--engine-every N] [--out-dir DIR] [--trace-cache DIR]
//!      [--replay FILE]...
//! ```
//!
//! Replays deterministic generated traces (and, every `--engine-every`th
//! seed, a whole-simulation thread-equivalence case) through the
//! optimized implementations and the `sim-oracle` reference models,
//! comparing every observable (see `sim_oracle::diff`). Everything is a
//! pure function of the seed range: two runs with the same flags produce
//! byte-identical output, which is what the CI `fuzz-smoke` job asserts.
//!
//! On the first divergence the failing case is shrunk to a minimal
//! reproducer, written to `--out-dir` (default `fuzz-out/`), printed,
//! and the process exits 1. `--mutate
//! evict-mru|skip-flag-reset|drop-asid-tag` runs the campaign against a
//! deliberately-broken subject — the mutation test documented in
//! TESTING.md — and is therefore *expected* to exit 1 with a shrunk
//! case (`drop-asid-tag` is only killable by multi-app traces, which is
//! exactly what its campaign generates).
//!
//! `--replay FILE` skips generation and replays checked-in `.case`
//! reproducers (exit 1 if any diverges); `crates/bench/tests/corpus/`
//! holds the starter corpus.
//!
//! `--trace-cache DIR` routes every engine case through an on-disk
//! `trace/v1` cache: the workload's trace file is written (or reused)
//! under `DIR` and the thread-equivalence replays stream from it,
//! recording the file by content hash in any shrunk reproducer (a
//! `trace <hash> <path>` directive). Campaign results are unchanged —
//! only where the bytes come from.

use sim_oracle::{fuzz_seed, run_case, Case, Mutation};
use std::ops::Range;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: Range<u64>,
    iters_per_seed: u64,
    mutation: Mutation,
    engine_every: u64,
    out_dir: PathBuf,
    trace_cache: Option<PathBuf>,
    replay: Vec<PathBuf>,
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: fuzz [--seeds A..B] [--iters-per-seed N] [--mutate NAME] \
         [--engine-every N] [--out-dir DIR] [--trace-cache DIR] [--replay FILE]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        seeds: 0..64,
        iters_per_seed: 100,
        mutation: Mutation::None,
        engine_every: 4,
        out_dir: PathBuf::from("fuzz-out"),
        trace_cache: None,
        replay: Vec::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| usage(&format!("{flag} requires a value")))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                let v = value(&mut i, "--seeds");
                let Some((a, b)) = v.split_once("..") else {
                    usage("--seeds wants a half-open range A..B");
                };
                match (a.parse(), b.parse()) {
                    (Ok(a), Ok(b)) if a < b => parsed.seeds = a..b,
                    _ => usage("--seeds wants integers A < B"),
                }
            }
            "--iters-per-seed" => {
                parsed.iters_per_seed = value(&mut i, "--iters-per-seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--iters-per-seed wants an integer"));
            }
            "--mutate" => {
                let v = value(&mut i, "--mutate");
                parsed.mutation = Mutation::parse(&v)
                    .unwrap_or_else(|| {
                        usage("--mutate wants none|evict-mru|skip-flag-reset|drop-asid-tag")
                    });
            }
            "--engine-every" => {
                // 0 disables engine cases entirely.
                parsed.engine_every = value(&mut i, "--engine-every")
                    .parse()
                    .unwrap_or_else(|_| usage("--engine-every wants an integer"));
            }
            "--out-dir" => parsed.out_dir = PathBuf::from(value(&mut i, "--out-dir")),
            "--trace-cache" => {
                parsed.trace_cache = Some(PathBuf::from(value(&mut i, "--trace-cache")));
            }
            "--replay" => {
                // Greedy: `--replay a.case b.case c.case` is the natural
                // shell-glob invocation.
                parsed.replay.push(PathBuf::from(value(&mut i, "--replay")));
                while args.get(i + 1).is_some_and(|a| !a.starts_with("--")) {
                    i += 1;
                    parsed.replay.push(PathBuf::from(&args[i]));
                }
            }
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    parsed
}

fn replay_files(files: &[PathBuf]) -> ExitCode {
    let mut failed = false;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot read: {e}", path.display());
                failed = true;
                continue;
            }
        };
        let case = match Case::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: cannot parse: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match run_case(&case) {
            None => println!("{}: ok", path.display()),
            Some(d) => {
                println!("{}: DIVERGED: {d}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(dir) = &args.trace_cache {
        sim_oracle::set_trace_dir(dir);
    }
    if !args.replay.is_empty() {
        return replay_files(&args.replay);
    }

    let mut traces = 0u64;
    let mut engine_runs = 0u64;
    for seed in args.seeds.clone() {
        let engine = args.engine_every != 0 && seed % args.engine_every == 0;
        let report = fuzz_seed(seed, args.iters_per_seed, args.mutation, engine);
        traces += report.traces;
        engine_runs += report.engine_runs;
        if let Some((case, divergence)) = report.divergence {
            println!("seed {seed}: {divergence}");
            let serialized = case.serialize();
            println!("--- shrunk reproducer ---\n{serialized}");
            let file = args.out_dir.join(format!("divergence-seed{seed}.case"));
            if let Err(e) = std::fs::create_dir_all(&args.out_dir)
                .and_then(|()| std::fs::write(&file, &serialized))
            {
                eprintln!("cannot write {}: {e}", file.display());
            } else {
                println!("written to {}", file.display());
            }
            return ExitCode::from(1);
        }
    }
    println!(
        "fuzz: seeds {}..{} x {} iters (mutation: {}): {traces} traces, \
         {engine_runs} engine runs, 0 divergences",
        args.seeds.start,
        args.seeds.end,
        args.iters_per_seed,
        args.mutation.name(),
    );
    ExitCode::SUCCESS
}
