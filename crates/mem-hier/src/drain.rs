//! Sharded phase-B drain: slice-parallel L2 TLB processing with a
//! deterministic merge.
//!
//! The serial drain applies every [`SharedRequest`] in global
//! `(sm, seq)` order against the whole [`SharedBack`]. That order is
//! stronger than the hardware needs: the L2 TLB is VPN-interleaved over
//! slices, each slice fronted by its own port bank, so two requests on
//! different slices never touch the same shared state — only the walker
//! pool (whose arbitration and PPN-allocating page table are global) and
//! the L2 data cache are truly order-sensitive across slices. This
//! module exploits that to drain a large batch in five passes:
//!
//! 1. **Front translate** (parallel over SMs): walk each outbox in push
//!    order, probing L1 for replays and pre-inserting the L1 fill every
//!    L2-bound translate will perform — with a provisional *sentinel*
//!    frame, since placement is payload-independent
//!    ([`tlb::TranslationBuffer::supports_deferred_fill`]). A replay
//!    that hits a sentinel resolves to the earlier translate's frame.
//! 2. **Per-slice L2** (parallel over slices): requests reach their
//!    slice in `(sm, seq)` order — exactly the serial subsequence — win
//!    a port, probe, and on a miss pre-insert the slice fill with a
//!    sentinel naming the pending walk. Stats and attribution accumulate
//!    in shard-local counters merged by order-independent sums.
//! 3. **Walks** (serial): L2 misses from all slices merge back into
//!    global `(sm, seq)` order — byte-identical walker arbitration and
//!    demand-paging order — then each resolved frame is patched over its
//!    slice sentinel ([`tlb::TranslationBuffer::patch_ppn`]).
//! 4. **Resolve + front data** (parallel over SMs): patch L1 sentinels
//!    with final frames, then replay deferred data accesses against the
//!    private L1 data cache in push order.
//! 5. **L2 data** (serial): the shared L2/DRAM legs in global
//!    `(sm, seq)` order.
//!
//! Every structure sees exactly the operation sequence the serial drain
//! would issue (same order, and — via sentinels — the same final
//! payloads), so reports are byte-identical; the proptests in the bench
//! crate and the engine's thread-equivalence goldens enforce it.

use crate::breakdown::{LatencyBreakdown, TranslationBreakdown};
use crate::split::{PerSmFront, SharedBack, SharedRequest, SharedResponse, TranslationRef};
use crate::stage::{Access, Outcome, Stage, StageStats};
use crate::stages::L2TlbStage;
use tlb::TlbRequest;
use vmem::{PhysAddr, Ppn};

/// Executes a batch of independent tasks, possibly in parallel.
///
/// The drain's parallel passes produce tasks over disjoint mutable
/// state, so any execution order (or interleaving) yields the same
/// result; implementations only trade wall-clock. The engine's worker
/// pool provides a scoped-thread executor; [`SerialExec`] runs inline
/// (used by tests and the differential harness).
pub trait DrainExec {
    /// Runs every task to completion before returning.
    fn run<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>);
}

/// Runs tasks inline on the calling thread.
pub struct SerialExec;

impl DrainExec for SerialExec {
    fn run<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        for t in tasks {
            t();
        }
    }
}

/// One SM's slice of a drain batch: its private front, its deferred
/// requests in push order, and the response slot the engine reads back.
pub struct DrainLane<'a> {
    /// SM index (lanes must be passed in ascending SM order).
    pub sm: usize,
    /// The SM's private front (L1 TLB + L1 data cache).
    pub front: &'a mut PerSmFront,
    /// Deferred requests, in outbox push order.
    pub reqs: &'a [SharedRequest],
    /// Filled with one response per request, in the same order.
    pub resps: &'a mut Vec<SharedResponse>,
}

/// Provisional frames are carved from the top of the PPN space, far
/// above anything an [`vmem::AddressSpace`] allocates: bit 62 marks an
/// L1 sentinel (low bits = the outbox-local translate index), bit 63 a
/// slice sentinel (slice index << 40 | slice-local walk index).
const L1_SENTINEL: u64 = 1 << 62;
const SLICE_SENTINEL: u64 = 1 << 63;
const SLICE_SHIFT: u32 = 40;

fn l1_sentinel(t_idx: u32) -> Ppn {
    Ppn::new(L1_SENTINEL | u64::from(t_idx))
}

fn slice_sentinel(slice: usize, local: usize) -> Ppn {
    debug_assert!(local < (1 << SLICE_SHIFT) && (slice as u64) < (1 << 22));
    Ppn::new(SLICE_SENTINEL | ((slice as u64) << SLICE_SHIFT) | local as u64)
}

fn treq(acc: &Access) -> TlbRequest {
    TlbRequest::with_page_size(acc.vpn, acc.tb_slot, acc.page_size).with_asid(acc.asid)
}

/// How one translate request's frame and ready cycle get determined.
#[derive(Copy, Clone)]
enum Resolve {
    /// Known outright (L1 hit, or a walk once pass 3 ran).
    Done(Ppn, u64),
    /// Frame of an earlier translate in the same outbox (the replay hit
    /// that translate's provisional L1 entry); own probe ready cycle.
    Local(u32, u64),
    /// Frame of walk `local` on `slice` (the lookup hit a slice
    /// sentinel); own L2-hit ready cycle.
    SliceWalk { slice: u32, local: u32, ready: u64 },
    /// Placeholder until a later pass writes `Done`.
    Pending,
}

/// An L2-bound translate heading to its slice.
#[derive(Copy, Clone)]
struct L2Req {
    seq: u32,
    t_idx: u32,
    acc: Access,
    /// Cycle the L1 miss verdict left the SM.
    depart: u64,
    l1_service: u64,
}

/// A pending walk, held slice-local until the serial walk pass.
#[derive(Copy, Clone)]
struct WalkItem {
    lane: u32,
    seq: u32,
    t_idx: u32,
    acc: Access,
    /// Arrival at the walker pool (L2 miss verdict ready).
    l2_ready: u64,
    l1_service: u64,
    l2_queue: u64,
    l2_lookup: u64,
    sent: Ppn,
    /// Resolved frame, written by the walk pass.
    ppn: Ppn,
}

/// Outcome of one slice-pass request, parallel to the slice queue.
#[derive(Copy, Clone)]
enum SliceOut {
    /// Real L2 hit: frame and icnt-return ready cycle.
    Hit(Ppn, u64),
    /// Hit a slice sentinel: frame comes from that pending walk.
    HitSent { local: u32, ready: u64 },
    /// Miss: walk enqueued (resolved by the walk pass).
    Walk,
}

#[derive(Default)]
struct LaneScratch {
    kinds: Vec<Resolve>,
    /// `Some(acc)` per translate that pre-inserted an L1 sentinel (every
    /// L2-bound one) and needs the final frame patched in.
    fill: Vec<Option<Access>>,
    l2q: Vec<L2Req>,
    resolved: Vec<(Ppn, u64)>,
    /// Deferred shared data legs: (seq, start, line, write).
    data_q: Vec<(u32, u64, PhysAddr, bool)>,
}

struct SliceShard {
    queue: Vec<(u32, L2Req)>,
    outs: Vec<SliceOut>,
    walks: Vec<WalkItem>,
    icnt: StageStats,
    l2: StageStats,
    breakdown: LatencyBreakdown,
}

fn hop(at: u64, latency: u64) -> Outcome {
    Outcome {
        ppn: None,
        ready_at: at + latency,
        queue_cycles: 0,
        service_cycles: latency,
        fault_cycles: 0,
    }
}

/// Drains a batch of outboxes through the five-pass sharded pipeline.
///
/// `lanes` must be in ascending SM order with every `resps` empty, and
/// every lane's L1 TLB (and the L2 slices, which always do) must report
/// [`tlb::TranslationBuffer::supports_deferred_fill`] — the engine
/// checks this and falls back to the serial drain otherwise. Produces
/// responses, stats, attribution and structure states byte-identical to
/// applying every request via [`SharedBack::apply`] in `(sm, seq)`
/// order.
pub fn drain_sharded(back: &mut SharedBack, lanes: &mut [DrainLane<'_>], exec: &dyn DrainExec) {
    let page_size = back.page_size();
    let lat = back.icnt_latency;
    let nslices = back.l2_tlb.slices.len();
    let mut scratch: Vec<LaneScratch> = Vec::new();
    scratch.resize_with(lanes.len(), LaneScratch::default);

    // Pass 1: front translate, parallel over SMs.
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = lanes
            .iter_mut()
            .zip(scratch.iter_mut())
            .map(|(dl, sc)| Box::new(move || pass_front_translate(dl, sc)) as Box<_>)
            .collect();
        exec.run(tasks);
    }

    // Partition L2-bound translates into per-slice queues; lane-major
    // iteration keeps each queue in global (sm, seq) order.
    let mut shards: Vec<SliceShard> = (0..nslices)
        .map(|_| SliceShard {
            queue: Vec::new(),
            outs: Vec::new(),
            walks: Vec::new(),
            icnt: StageStats::default(),
            l2: StageStats::default(),
            breakdown: LatencyBreakdown::default(),
        })
        .collect();
    for (li, sc) in scratch.iter_mut().enumerate() {
        for r in sc.l2q.drain(..) {
            let s = (r.acc.vpn.raw() % nslices as u64) as usize; // simlint: allow(lossy-cast, reason = "modulo by the usize slice count happens in u64 first; the result always fits")
            shards[s].queue.push((li as u32, r));
        }
    }

    let SharedBack {
        icnt,
        l2_tlb,
        walker,
        l2_data,
        icnt_latency,
        l2_hit_latency,
        dram_latency,
        breakdown,
    } = back;
    let L2TlbStage {
        slices,
        ports,
        stats: l2_stage_stats,
    } = l2_tlb;

    // Pass 2: per-slice port arbitration + lookup, parallel over slices.
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slices
            .iter_mut()
            .zip(ports.iter_mut())
            .zip(shards.iter_mut())
            .enumerate()
            .filter(|(_, ((_, _), shard))| !shard.queue.is_empty())
            .map(|(s, ((slice, port), shard))| {
                Box::new(move || pass_slice(s, slice, port, shard, lat)) as Box<_>
            })
            .collect();
        exec.run(tasks);
    }

    // Record slice hit results; misses resolve in the walk pass.
    for (s, shard) in shards.iter().enumerate() {
        for (qi, (lane, r)) in shard.queue.iter().enumerate() {
            let k = match shard.outs[qi] {
                SliceOut::Hit(p, ready) => Resolve::Done(p, ready),
                SliceOut::HitSent { local, ready } => Resolve::SliceWalk {
                    slice: s as u32,
                    local,
                    ready,
                },
                SliceOut::Walk => continue,
            };
            scratch[*lane as usize].kinds[r.t_idx as usize] = k;
        }
    }

    // Pass 3: walks, serial in global (sm, seq) order — the serial
    // drain's exact walker-arbitration and demand-paging order.
    let mut order: Vec<(u32, u32, u32, u32)> = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        for (l, w) in shard.walks.iter().enumerate() {
            order.push((w.lane, w.seq, s as u32, l as u32));
        }
    }
    order.sort_unstable();
    for (lane, _seq, s, l) in order {
        let w = shards[s as usize].walks[l as usize];
        let walk = walker.access(&w.acc.arriving_at(w.l2_ready));
        let ppn = walk.ppn.expect("completed walks always resolve a frame"); // simlint: allow(hot-unwrap, reason = "WalkerStage::access always returns Some per its panic contract")
        debug_assert!(ppn.raw() < L1_SENTINEL, "real frames stay below the sentinel space");
        shards[s as usize].walks[l as usize].ppn = ppn;
        let patched = slices[s as usize].patch_ppn(&treq(&w.acc), w.sent, ppn);
        let _ = patched; // evicted-before-patch is benign: the entry is gone
        let back_hop = hop(walk.ready_at, lat);
        icnt.stats.record(&back_hop);
        let b = TranslationBreakdown {
            l1_tlb: w.l1_service,
            icnt: 2 * lat,
            l2_tlb_queue: w.l2_queue,
            l2_tlb_lookup: w.l2_lookup,
            walk: walk.queue_cycles + walk.service_cycles,
            fault: walk.fault_cycles,
        };
        breakdown.record(&b, back_hop.ready_at - w.acc.at);
        scratch[lane as usize].kinds[w.t_idx as usize] = Resolve::Done(ppn, back_hop.ready_at);
    }

    // Merge shard-local accumulators (order-independent sums).
    for shard in &shards {
        icnt.stats = icnt.stats.merged(shard.icnt);
        *l2_stage_stats = l2_stage_stats.merged(shard.l2);
        *breakdown += shard.breakdown;
    }

    // Pass 4: resolve frames, patch L1 sentinels, replay private data
    // probes — parallel over SMs (walk results are read-only now).
    {
        let shards = &shards;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = lanes
            .iter_mut()
            .zip(scratch.iter_mut())
            .map(|(dl, sc)| {
                Box::new(move || pass_resolve_and_data(dl, sc, shards, page_size)) as Box<_>
            })
            .collect();
        exec.run(tasks);
    }

    // Pass 5: shared L2/DRAM data legs, serial in (sm, seq) order.
    for (dl, sc) in lanes.iter_mut().zip(scratch.iter()) {
        for &(seq, start, pa, write) in &sc.data_q {
            let at_l2 = start + *icnt_latency;
            let ready = if l2_data.access(pa.raw(), write) {
                at_l2 + *l2_hit_latency + *icnt_latency
            } else {
                at_l2 + *l2_hit_latency + *dram_latency + *icnt_latency
            };
            dl.resps[seq as usize].ready_at = ready;
        }
    }
}

fn pass_front_translate(dl: &mut DrainLane<'_>, sc: &mut LaneScratch) {
    for (seq, req) in dl.reqs.iter().enumerate() {
        match *req {
            SharedRequest::TranslateMiss {
                acc,
                l1_ready_at,
                l1_service_cycles,
            } => {
                let t = sc.kinds.len() as u32;
                sc.kinds.push(Resolve::Pending);
                sc.fill.push(Some(acc));
                dl.front.fill(&acc, l1_sentinel(t));
                sc.l2q.push(L2Req {
                    seq: seq as u32,
                    t_idx: t,
                    acc,
                    depart: l1_ready_at,
                    l1_service: l1_service_cycles,
                });
            }
            SharedRequest::TranslateReplay { acc } => {
                let t = sc.kinds.len() as u32;
                let o = dl.front.probe_translate(&acc);
                match o.ppn {
                    Some(p) if p.raw() & L1_SENTINEL != 0 => {
                        let local = (p.raw() & !L1_SENTINEL) as u32; // simlint: allow(lossy-cast, reason = "masked value is an outbox-local translate index, not an address")
                        sc.kinds.push(Resolve::Local(local, o.ready_at));
                        sc.fill.push(None);
                    }
                    Some(p) => {
                        sc.kinds.push(Resolve::Done(p, o.ready_at));
                        sc.fill.push(None);
                    }
                    None => {
                        sc.kinds.push(Resolve::Pending);
                        sc.fill.push(Some(acc));
                        dl.front.fill(&acc, l1_sentinel(t));
                        sc.l2q.push(L2Req {
                            seq: seq as u32,
                            t_idx: t,
                            acc,
                            depart: o.ready_at,
                            l1_service: o.service_cycles,
                        });
                    }
                }
            }
            SharedRequest::DataBack { .. } | SharedRequest::DataReplay { .. } => {}
        }
    }
}

fn pass_slice(
    s: usize,
    slice: &mut crate::stages::L2Slice,
    port: &mut crate::ports::Ports,
    shard: &mut SliceShard,
    lat: u64,
) {

    for qi in 0..shard.queue.len() {
        let (lane, r) = shard.queue[qi];
        let fwd = hop(r.depart, lat);
        shard.icnt.record(&fwd);
        let grant = port.acquire(fwd.ready_at);
        let look = slice.lookup(&treq(&r.acc));
        let out = Outcome {
            ppn: if look.hit { look.ppn } else { None },
            ready_at: grant + look.latency,
            queue_cycles: grant - fwd.ready_at,
            service_cycles: look.latency,
            fault_cycles: 0,
        };
        shard.l2.record(&out);
        if let (true, Some(p)) = (look.hit, look.ppn) {
            let back_hop = hop(out.ready_at, lat);
            shard.icnt.record(&back_hop);
            let b = TranslationBreakdown {
                l1_tlb: r.l1_service,
                icnt: 2 * lat,
                l2_tlb_queue: out.queue_cycles,
                l2_tlb_lookup: out.service_cycles,
                ..Default::default()
            };
            shard.breakdown.record(&b, back_hop.ready_at - r.acc.at);
            shard.outs.push(if p.raw() & SLICE_SENTINEL != 0 {
                SliceOut::HitSent {
                    local: (p.raw() & ((1 << SLICE_SHIFT) - 1)) as u32,
                    ready: back_hop.ready_at,
                }
            } else {
                SliceOut::Hit(p, back_hop.ready_at)
            });
        } else {
            let local = shard.walks.len();
            let sent = slice_sentinel(s, local);
            slice.insert(&treq(&r.acc), sent);
            shard.walks.push(WalkItem {
                lane,
                seq: r.seq,
                t_idx: r.t_idx,
                acc: r.acc,
                l2_ready: out.ready_at,
                l1_service: r.l1_service,
                l2_queue: out.queue_cycles,
                l2_lookup: out.service_cycles,
                sent,
                ppn: Ppn::new(0),
            });
            shard.outs.push(SliceOut::Walk);
        }
    }
}

fn pass_resolve_and_data(
    dl: &mut DrainLane<'_>,
    sc: &mut LaneScratch,
    shards: &[SliceShard],
    page_size: vmem::PageSize,
) {
    sc.resolved.clear();
    for t in 0..sc.kinds.len() {
        let (p, r) = match sc.kinds[t] {
            Resolve::Done(p, r) => (p, r),
            // Local/SliceWalk reference strictly earlier translates and
            // already-run walks, so the frame is final here.
            Resolve::Local(j, r) => (sc.resolved[j as usize].0, r),
            Resolve::SliceWalk { slice, local, ready } => {
                (shards[slice as usize].walks[local as usize].ppn, ready)
            }
            Resolve::Pending => unreachable!("every translate resolves by the walk pass"),
        };
        debug_assert!(p.raw() < L1_SENTINEL);
        sc.resolved.push((p, r));
    }
    for (t, f) in sc.fill.iter().enumerate() {
        if let Some(acc) = f {
            // A false return means the provisional entry was already
            // evicted — exactly as the real fill would have been.
            let _ = dl
                .front
                .tlb_mut()
                .patch_ppn(&treq(acc), l1_sentinel(t as u32), sc.resolved[t].0);
        }
    }
    let mut t = 0usize;
    for (seq, req) in dl.reqs.iter().enumerate() {
        let resp = match *req {
            SharedRequest::TranslateMiss { .. } | SharedRequest::TranslateReplay { .. } => {
                let (p, r) = sc.resolved[t];
                let filled = sc.fill[t].is_some();
                t += 1;
                SharedResponse {
                    ppn: Some(p),
                    ready_at: r,
                    filled_l1: filled,
                }
            }
            SharedRequest::DataBack { start, pa, write } => {
                sc.data_q.push((seq as u32, start, pa, write));
                SharedResponse {
                    ppn: None,
                    ready_at: 0,
                    filled_l1: false,
                }
            }
            SharedRequest::DataReplay {
                translation,
                min_start,
                page_offset,
                write,
            } => {
                let (ppn, t_ready) = match translation {
                    TranslationRef::Resolved { ppn, ready_at } => (ppn, ready_at),
                    TranslationRef::Pending(i) => sc.resolved[i as usize],
                };
                let start = t_ready.max(min_start);
                let pa = PhysAddr::from_parts(ppn, page_offset, page_size);
                match dl.front.probe_data(start, pa, write) {
                    Some(done) => SharedResponse {
                        ppn: None,
                        ready_at: done,
                        filled_l1: false,
                    },
                    None => {
                        sc.data_q.push((seq as u32, start, pa, write));
                        SharedResponse {
                            ppn: None,
                            ready_at: 0,
                            filled_l1: false,
                        }
                    }
                }
            }
        };
        dl.resps.push(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig, L2Policy};
    use tlb::{SetAssocTlb, TlbConfig, TranslationBuffer};
    use vmem::{AddressSpace, Asid, PageSize, VirtAddr};

    fn config_with(num_sms: usize, slices: usize, policy: L2Policy) -> HierarchyConfig {
        HierarchyConfig {
            num_sms,
            l1_cache: CacheConfig::new(512, 2, 128),
            l2_cache: CacheConfig::new(1024, 2, 128),
            l2_tlb: TlbConfig::new(16, 2, 10),
            l2_tlb_slices: slices,
            l2_tlb_ports: 1,
            l2_tlb_port_occupancy: 2,
            walkers: 2,
            walk_latency: 500,
            walk_latency_per_level: 0,
            l1_hit_latency: 1,
            icnt_latency: 20,
            l2_hit_latency: 30,
            dram_latency: 200,
            demand_fault_latency: 2000,
            l2_policy: policy,
        }
    }

    fn config(num_sms: usize, slices: usize) -> HierarchyConfig {
        config_with(num_sms, slices, L2Policy::Shared)
    }

    fn setup(
        num_sms: usize,
        slices: usize,
        l1: &dyn Fn() -> Box<dyn TranslationBuffer>,
    ) -> (Vec<PerSmFront>, SharedBack, u64) {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 22).expect("fresh space");
        let base = buf.addr_of(0).raw();
        let cfg = config(num_sms, slices);
        let fronts = (0..num_sms)
            .map(|sm| PerSmFront::new(sm, l1(), &cfg))
            .collect();
        (fronts, SharedBack::new(&cfg, space), base)
    }

    /// Like [`setup`] but with `apps` twin address spaces behind one
    /// shared back (co-run shape) and a configurable L2 policy.
    fn setup_multi(
        num_sms: usize,
        slices: usize,
        apps: usize,
        policy: L2Policy,
        l1: &dyn Fn() -> Box<dyn TranslationBuffer>,
    ) -> (Vec<PerSmFront>, SharedBack, u64) {
        let mut spaces = Vec::new();
        let mut base = 0;
        for _ in 0..apps {
            let mut s = AddressSpace::new(PageSize::Small);
            let buf = s.allocate("b", 1 << 22).expect("fresh space");
            base = buf.addr_of(0).raw();
            spaces.push(s);
        }
        let cfg = config_with(num_sms, slices, policy);
        let fronts = (0..num_sms)
            .map(|sm| PerSmFront::new(sm, l1(), &cfg))
            .collect();
        (fronts, SharedBack::new_multi(&cfg, spaces), base)
    }

    fn acc(base: u64, at: u64, sm: usize, page: u64) -> Access {
        // Page index relative to the buffer base (identical in both
        // twin spaces: allocation is deterministic).
        let va = VirtAddr::new(base + (page << 12));
        Access {
            at,
            sm,
            asid: Asid::default(),
            tb_slot: (page % 3) as u8,
            va,
            vpn: va.vpn(PageSize::Small),
            page_size: PageSize::Small,
        }
    }

    /// Retags every translate access with an ASID derived from its VPN
    /// (`(vpn >> 1) % apps`, so consecutive pages alternate apps and a
    /// multi-slice L2 still sees mixed-ASID queues on every slice).
    fn stripe_asids(reqs: &mut [Vec<SharedRequest>], apps: u16) {
        for rs in reqs.iter_mut() {
            for r in rs.iter_mut() {
                match r {
                    SharedRequest::TranslateMiss { acc, .. }
                    | SharedRequest::TranslateReplay { acc } => {
                        acc.asid = Asid::new(((acc.vpn.raw() >> 1) % u64::from(apps)) as u16);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Deterministic mixed batch: translate misses, replays (some
    /// duplicating earlier VPNs to exercise sentinel hits), raw data
    /// legs, and data replays pending on earlier translates.
    fn batch(base: u64, num_sms: usize, seed: u64) -> Vec<Vec<SharedRequest>> {
        let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        (0..num_sms)
            .map(|sm| {
                let mut reqs = Vec::new();
                let mut translates = 0u32;
                let n = 6 + (next() % 10) as usize;
                for i in 0..n {
                    let page = next() % 24; // small pool: plenty of reuse
                    let at = (next() % 50) + i as u64;
                    match next() % 5 {
                        0 => {
                            reqs.push(SharedRequest::TranslateMiss {
                                acc: acc(base, at, sm, page),
                                l1_ready_at: at + 1,
                                l1_service_cycles: 1,
                            });
                            translates += 1;
                        }
                        1 | 2 => {
                            reqs.push(SharedRequest::TranslateReplay {
                                acc: acc(base, at, sm, page),
                            });
                            translates += 1;
                        }
                        3 => reqs.push(SharedRequest::DataBack {
                            start: at,
                            pa: PhysAddr::new((next() % 64) << 7),
                            write: next() % 2 == 0,
                        }),
                        _ => {
                            let translation = if translates > 0 && next() % 2 == 0 {
                                TranslationRef::Pending((next() % u64::from(translates)) as u32)
                            } else {
                                TranslationRef::Resolved {
                                    ppn: Ppn::new(next() % 64),
                                    ready_at: at,
                                }
                            };
                            reqs.push(SharedRequest::DataReplay {
                                translation,
                                min_start: at,
                                page_offset: (next() % 32) << 7,
                                write: next() % 2 == 0,
                            });
                        }
                    }
                }
                reqs
            })
            .collect()
    }

    /// Runs the serial-vs-sharded twin comparison for one L1 TLB
    /// organization. Every lane's L1 must report
    /// `supports_deferred_fill` — the drain's sentinel protocol depends
    /// on it.
    fn twin_check(mech: &str, l1: &dyn Fn() -> Box<dyn TranslationBuffer>) {
        for seed in 0..12 {
            for slices in [1usize, 2, 4] {
                let num_sms = 4;
                // Serial reference: global (sm, seq) apply order.
                let (mut fronts_a, mut back_a, base) = setup(num_sms, slices, l1);
                let reqs = batch(base, num_sms, seed);
                let mut serial: Vec<Vec<SharedResponse>> = Vec::new();
                for (sm, rs) in reqs.iter().enumerate() {
                    let mut resolved: Vec<(Ppn, u64)> = Vec::new();
                    let mut out = Vec::new();
                    for r in rs {
                        let resp = back_a.apply(&mut fronts_a[sm], r, &resolved);
                        if let Some(p) = resp.ppn {
                            resolved.push((p, resp.ready_at));
                        }
                        out.push(resp);
                    }
                    serial.push(out);
                }
                // Sharded drain over the identical twin.
                let (mut fronts_b, mut back_b, base_b) = setup(num_sms, slices, l1);
                assert_eq!(base, base_b, "twin allocation must be deterministic");
                let mut resps: Vec<Vec<SharedResponse>> = vec![Vec::new(); num_sms];
                {
                    let mut lanes: Vec<DrainLane<'_>> = fronts_b
                        .iter_mut()
                        .zip(reqs.iter())
                        .zip(resps.iter_mut())
                        .enumerate()
                        .map(|(sm, ((front, reqs), resps))| DrainLane {
                            sm,
                            front,
                            reqs,
                            resps,
                        })
                        .collect();
                    drain_sharded(&mut back_b, &mut lanes, &SerialExec);
                }
                let tag = format!("{mech}: seed {seed} slices {slices}");
                for sm in 0..num_sms {
                    for (i, (a, b)) in serial[sm].iter().zip(&resps[sm]).enumerate() {
                        assert_eq!(
                            format!("{a:?}"),
                            format!("{b:?}"),
                            "{tag}: sm {sm} response {i} ({:?})",
                            reqs[sm][i]
                        );
                    }
                    assert_eq!(
                        format!("{:?}", fronts_a[sm].tlb().stats()),
                        format!("{:?}", fronts_b[sm].tlb().stats()),
                        "{tag}: sm {sm} L1 TLB stats"
                    );
                    assert_eq!(
                        format!("{:?} {:?}", fronts_a[sm].breakdown(), fronts_a[sm].l1_cache_stats()),
                        format!("{:?} {:?}", fronts_b[sm].breakdown(), fronts_b[sm].l1_cache_stats()),
                        "{tag}: sm {sm} front accounting"
                    );
                    // Post-state: resident translations (and thus victim
                    // choices) must agree entry for entry.
                    for page in 0..24u64 {
                        let r = treq(&acc(base, 0, sm, page));
                        assert_eq!(
                            fronts_a[sm].tlb().probe(&r),
                            fronts_b[sm].tlb().probe(&r),
                            "{tag}: sm {sm} L1 resident state for page {page}"
                        );
                    }
                }
                assert_eq!(
                    format!(
                        "{:?} {:?} {:?} {:?} {:?}",
                        back_a.breakdown(),
                        back_a.stage_stats(),
                        back_a.l2_tlb_stats(),
                        back_a.walker_stats(),
                        back_a.l2_cache_stats()
                    ),
                    format!(
                        "{:?} {:?} {:?} {:?} {:?}",
                        back_b.breakdown(),
                        back_b.stage_stats(),
                        back_b.l2_tlb_stats(),
                        back_b.walker_stats(),
                        back_b.l2_cache_stats()
                    ),
                    "{tag}: shared-back accounting"
                );
                assert_eq!(back_a.demand_faults(), back_b.demand_faults(), "{tag}");
                for (i, (sa, sb)) in back_a
                    .l2_slices()
                    .iter()
                    .zip(back_b.l2_slices())
                    .enumerate()
                {
                    for page in 0..24u64 {
                        let vpn = acc(base, 0, 0, page).vpn;
                        assert_eq!(
                            sa.peek(Asid::default(), vpn),
                            sb.peek(Asid::default(), vpn),
                            "{tag}: L2 slice {i} resident state for page {page}"
                        );
                    }
                }
            }
        }
    }

    /// Serial-vs-sharded twin comparison for a 2-app co-run under one L2
    /// policy: ASID-striped requests force mixed-ASID slice queues, twin
    /// page tables, and per-app L1 sentinel traffic through the full
    /// five-pass protocol.
    fn twin_check_multi(policy: L2Policy) {
        let apps = 2u16;
        let l1: &dyn Fn() -> Box<dyn TranslationBuffer> =
            &|| Box::new(SetAssocTlb::new(TlbConfig::new(8, 2, 1)));
        for seed in 0..8 {
            for slices in [1usize, 2, 4] {
                let num_sms = 4;
                let (mut fronts_a, mut back_a, base) =
                    setup_multi(num_sms, slices, apps as usize, policy, l1);
                let mut reqs = batch(base, num_sms, seed);
                stripe_asids(&mut reqs, apps);
                let mut serial: Vec<Vec<SharedResponse>> = Vec::new();
                for (sm, rs) in reqs.iter().enumerate() {
                    let mut resolved: Vec<(Ppn, u64)> = Vec::new();
                    let mut out = Vec::new();
                    for r in rs {
                        let resp = back_a.apply(&mut fronts_a[sm], r, &resolved);
                        if let Some(p) = resp.ppn {
                            resolved.push((p, resp.ready_at));
                        }
                        out.push(resp);
                    }
                    serial.push(out);
                }
                let (mut fronts_b, mut back_b, base_b) =
                    setup_multi(num_sms, slices, apps as usize, policy, l1);
                assert_eq!(base, base_b, "twin allocation must be deterministic");
                let mut resps: Vec<Vec<SharedResponse>> = vec![Vec::new(); num_sms];
                {
                    let mut lanes: Vec<DrainLane<'_>> = fronts_b
                        .iter_mut()
                        .zip(reqs.iter())
                        .zip(resps.iter_mut())
                        .enumerate()
                        .map(|(sm, ((front, reqs), resps))| DrainLane {
                            sm,
                            front,
                            reqs,
                            resps,
                        })
                        .collect();
                    drain_sharded(&mut back_b, &mut lanes, &SerialExec);
                }
                let tag = format!("{policy:?}: seed {seed} slices {slices}");
                for sm in 0..num_sms {
                    for (i, (a, b)) in serial[sm].iter().zip(&resps[sm]).enumerate() {
                        assert_eq!(
                            format!("{a:?}"),
                            format!("{b:?}"),
                            "{tag}: sm {sm} response {i} ({:?})",
                            reqs[sm][i]
                        );
                    }
                    assert_eq!(
                        format!("{:?}", fronts_a[sm].tlb().stats_by_asid()),
                        format!("{:?}", fronts_b[sm].tlb().stats_by_asid()),
                        "{tag}: sm {sm} per-ASID L1 TLB stats"
                    );
                    // Resident state must agree per (asid, page).
                    for page in 0..24u64 {
                        let mut a = acc(base, 0, sm, page);
                        for app in 0..apps {
                            a.asid = Asid::new(app);
                            let r = treq(&a);
                            assert_eq!(
                                fronts_a[sm].tlb().probe(&r),
                                fronts_b[sm].tlb().probe(&r),
                                "{tag}: sm {sm} asid {app} L1 state for page {page}"
                            );
                        }
                    }
                }
                assert_eq!(
                    format!(
                        "{:?} {:?} {:?} {:?}",
                        back_a.l2_tlb_stats_by_asid(),
                        back_a.stage_stats(),
                        back_a.walker_stats(),
                        back_a.breakdown()
                    ),
                    format!(
                        "{:?} {:?} {:?} {:?}",
                        back_b.l2_tlb_stats_by_asid(),
                        back_b.stage_stats(),
                        back_b.walker_stats(),
                        back_b.breakdown()
                    ),
                    "{tag}: shared-back accounting"
                );
                assert_eq!(
                    back_a.l2_token_bypasses(),
                    back_b.l2_token_bypasses(),
                    "{tag}: token-bypass counts"
                );
                assert_eq!(back_a.demand_faults(), back_b.demand_faults(), "{tag}");
                for (i, (sa, sb)) in back_a
                    .l2_slices()
                    .iter()
                    .zip(back_b.l2_slices())
                    .enumerate()
                {
                    sa.check_invariants()
                        .unwrap_or_else(|v| panic!("{tag}: slice {i}: {}", v.detail));
                    for page in 0..24u64 {
                        let vpn = acc(base, 0, 0, page).vpn;
                        for app in 0..apps {
                            assert_eq!(
                                sa.peek(Asid::new(app), vpn),
                                sb.peek(Asid::new(app), vpn),
                                "{tag}: L2 slice {i} asid {app} state for page {page}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_drain_matches_serial_apply_for_two_asids() {
        twin_check_multi(L2Policy::Shared);
    }

    #[test]
    fn sharded_drain_matches_serial_apply_with_mask_tokens() {
        // Tiny quota so bypasses actually fire in both twins.
        twin_check_multi(L2Policy::MaskTokens { quota: 3 });
    }

    #[test]
    fn sharded_drain_matches_serial_apply_with_sub_entry_l2() {
        twin_check_multi(L2Policy::SubEntry { subs: 2 });
    }

    #[test]
    fn sharded_drain_matches_serial_apply_exactly() {
        twin_check("set-assoc", &|| {
            Box::new(SetAssocTlb::new(TlbConfig::new(8, 2, 1)))
        });
    }

    #[test]
    fn sharded_drain_matches_serial_apply_for_partitioned_l1() {
        // The paper's own mechanism: TB-id partitioning with adjacent
        // sharing (compression off, so deferred fill is sound). The tiny
        // geometry forces the 16-TBs-over-4-sets aliasing path plus
        // spills, so sentinel fills exercise placement, rescue, and the
        // full-scan patch.
        use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig};
        twin_check("partitioned", &|| {
            let t = PartitionedTlb::new(PartitionedTlbConfig {
                geometry: TlbConfig::new(8, 2, 1),
                ..PartitionedTlbConfig::with_sharing()
            });
            assert!(t.supports_deferred_fill());
            Box::new(t)
        });
    }
}
