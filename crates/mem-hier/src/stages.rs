//! The shared pipeline's concrete stages (the back half of the paper's
//! Figure 1): the interconnect hop, the VPN-interleaved L2 TLB, and the
//! shared walker pool. The SM-private stages (L1 TLB, VIPT L1 data
//! cache) live on [`PerSmFront`](crate::PerSmFront) in `split.rs`.

use crate::config::L2Policy;
use crate::ports::Ports;
use crate::stage::{Access, Outcome, Stage, StageStats};
use tlb::{
    InvariantViolation, SetAssocTlb, SubEntryTlb, TlbConfig, TlbOutcome, TlbRequest, TlbStats,
    TranslationBuffer,
};
use vmem::{AddressSpace, Asid, FaultKind, PageSize, Ppn, Vpn, WalkerPool, WalkerStats};

fn request(acc: &Access) -> TlbRequest {
    TlbRequest::with_page_size(acc.vpn, acc.tb_slot, acc.page_size).with_asid(acc.asid)
}

/// One direction of the SM-to-partition interconnect: a fixed-latency
/// hop with no arbitration (the engine models contention at the L2 TLB
/// ports and the walker pool, not on the network itself).
pub struct IcntLink {
    latency: u64,
    pub(crate) stats: StageStats,
}

impl IcntLink {
    /// A hop of `latency` cycles.
    pub fn new(latency: u64) -> Self {
        IcntLink {
            latency,
            stats: StageStats::default(),
        }
    }

    /// The hop latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

impl Stage for IcntLink {
    fn name(&self) -> &'static str {
        "icnt"
    }

    fn access(&mut self, acc: &Access) -> Outcome {
        let o = Outcome {
            ppn: None,
            ready_at: acc.at + self.latency,
            queue_cycles: 0,
            service_cycles: self.latency,
            fault_cycles: 0,
        };
        self.stats.record(&o);
        o
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

/// The translation structure inside one L2 slice: the baseline
/// ASID-tagged set-associative array, or the MIG-style sub-entry-sharing
/// organization ([`L2Policy::SubEntry`]).
pub enum SliceKind {
    /// ASID-tagged set-associative slice (baseline and
    /// [`L2Policy::MaskTokens`]).
    Set(SetAssocTlb),
    /// VPN-tagged ways with per-ASID sub-entries.
    Sub(SubEntryTlb),
}

impl SliceKind {
    fn buffer(&self) -> &dyn TranslationBuffer {
        match self {
            SliceKind::Set(t) => t,
            SliceKind::Sub(t) => t,
        }
    }

    fn buffer_mut(&mut self) -> &mut dyn TranslationBuffer {
        match self {
            SliceKind::Set(t) => t,
            SliceKind::Sub(t) => t,
        }
    }

    fn resident_of(&self, asid: Asid) -> usize {
        match self {
            SliceKind::Set(t) => t.resident_of(asid),
            SliceKind::Sub(t) => t.resident_of(asid),
        }
    }
}

/// MASK-style fill-token state for one slice: each app's resident-entry
/// budget, and how many fills bypassed the slice once it was exhausted.
struct Tokens {
    quota: usize,
    bypasses: u64,
}

/// One slice of the shared L2 TLB: a [`SliceKind`] structure, optionally
/// guarded by MASK-style fill tokens. The token gate lives *inside*
/// [`L2Slice::insert`], so the serial apply path and the sharded drain
/// (which inserts a provisional sentinel at miss time and patches later)
/// make the same fill/bypass decision by construction: both feed the
/// slice the identical per-slice insert sequence, and the decision reads
/// only resident-entry state, never the (provisional) payload.
pub struct L2Slice {
    kind: SliceKind,
    tokens: Option<Tokens>,
}

impl L2Slice {
    fn new(kind: SliceKind, quota: Option<usize>) -> Self {
        L2Slice {
            kind,
            tokens: quota.map(|quota| Tokens { quota, bypasses: 0 }),
        }
    }

    /// Probes the slice, recording hit/miss stats.
    pub fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.kind.buffer_mut().lookup(req)
    }

    /// Installs a translation — unless the requester's fill tokens for
    /// this slice are exhausted, in which case the fill bypasses the
    /// slice entirely (counted in [`L2Slice::token_bypasses`]).
    pub fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        if let Some(tok) = &mut self.tokens {
            if self.kind.resident_of(req.asid) >= tok.quota {
                tok.bypasses += 1;
                return;
            }
        }
        self.kind.buffer_mut().insert(req, ppn);
    }

    /// Patches a provisional frame after a walk resolves (deferred-fill
    /// protocol); `false` when the entry is gone or was never filled
    /// (token bypass), both benign.
    pub fn patch_ppn(&mut self, req: &TlbRequest, old: Ppn, new: Ppn) -> bool {
        self.kind.buffer_mut().patch_ppn(req, old, new)
    }

    /// Probes for `(asid, vpn)` without perturbing any state.
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        match &self.kind {
            SliceKind::Set(t) => t.peek(asid, vpn),
            SliceKind::Sub(t) => t.peek(asid, vpn),
        }
    }

    /// Cumulative slice counters.
    pub fn stats(&self) -> TlbStats {
        self.kind.buffer().stats()
    }

    /// Per-ASID breakdown of the slice counters.
    pub fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.kind.buffer().stats_by_asid()
    }

    /// Fills that bypassed this slice on exhausted tokens (0 without
    /// [`L2Policy::MaskTokens`]).
    pub fn token_bypasses(&self) -> u64 {
        self.tokens.as_ref().map_or(0, |t| t.bypasses)
    }

    /// Lookups served by the underlying buffer's MRU memo fast path
    /// (wall-clock accounting, forwarded for report totals).
    pub fn fastpath_hits(&self) -> u64 {
        self.kind.buffer().fastpath_hits()
    }

    /// Valid entries the slice currently holds for `asid` (the token
    /// gate's input).
    pub fn resident_of(&self, asid: Asid) -> usize {
        self.kind.resident_of(asid)
    }

    /// Validates the underlying structure's invariants plus the token
    /// gate's own: every app's resident count stays within quota.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.kind.buffer().check_invariants()?;
        if let Some(tok) = &self.tokens {
            for (asid, _) in self.stats_by_asid() {
                let resident = self.kind.resident_of(asid);
                if resident > tok.quota {
                    return Err(InvariantViolation::new(
                        "L2Slice",
                        format!(
                            "ASID {asid} holds {resident} entries over its {}-token quota",
                            tok.quota
                        ),
                        self.kind.buffer().dump_state(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The underlying translation structure.
    pub fn buffer(&self) -> &dyn TranslationBuffer {
        self.kind.buffer()
    }
}

/// The shared L2 TLB, VPN-interleaved over slices, each slice fronted
/// by a [`Ports`] bank. Requests first win a port (queueing under miss
/// floods), then probe the slice.
pub struct L2TlbStage {
    pub(crate) slices: Vec<L2Slice>,
    pub(crate) ports: Vec<Ports>,
    pub(crate) stats: StageStats,
}

impl L2TlbStage {
    /// Divides `config` over `slices` slices (clamped to at least one),
    /// each with `ports` lookup ports held `occupancy` cycles per grant,
    /// organized per `policy`.
    pub fn new(
        config: TlbConfig,
        slices: usize,
        ports: usize,
        occupancy: u64,
        policy: L2Policy,
    ) -> Self {
        let n = slices.max(1);
        let per_slice = config.sliced(n);
        let mk = |_: usize| match policy {
            L2Policy::Shared | L2Policy::MaskTokens { .. } => {
                SliceKind::Set(SetAssocTlb::new(per_slice))
            }
            L2Policy::SubEntry { subs } => SliceKind::Sub(SubEntryTlb::new(per_slice, subs)),
        };
        let quota = match policy {
            L2Policy::MaskTokens { quota } => Some(quota),
            _ => None,
        };
        L2TlbStage {
            slices: (0..n).map(|i| L2Slice::new(mk(i), quota)).collect(),
            ports: (0..n).map(|_| Ports::new(ports, occupancy)).collect(),
            stats: StageStats::default(),
        }
    }

    fn slice_of(&self, acc: &Access) -> usize {
        // simlint: allow(lossy-cast, reason = "modulo slice count bounds the value below the slice-vector length before narrowing")
        (acc.vpn.raw() % self.slices.len() as u64) as usize
    }

    /// Fills the slice owning the access's VPN after a walk resolves.
    pub fn fill(&mut self, acc: &Access, ppn: Ppn) {
        let s = self.slice_of(acc);
        self.slices[s].insert(&request(acc), ppn);
    }

    /// The slices, in interleave order.
    pub fn slices(&self) -> &[L2Slice] {
        &self.slices
    }

    /// Aggregate TLB counters summed over slices.
    pub fn tlb_stats(&self) -> TlbStats {
        self.slices
            .iter()
            .fold(TlbStats::default(), |a, t| a + t.stats())
    }

    /// Per-ASID TLB counters merged over slices, sorted by ASID (an
    /// order-independent counter sum, so serial and sharded drains
    /// agree byte-for-byte).
    pub fn tlb_stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        let mut merged: std::collections::BTreeMap<Asid, TlbStats> = std::collections::BTreeMap::new();
        for slice in &self.slices {
            for (asid, s) in slice.stats_by_asid() {
                let e = merged.entry(asid).or_default();
                *e += s;
            }
        }
        merged.into_iter().collect()
    }

    /// Fills that bypassed a slice on exhausted MASK tokens, summed.
    pub fn token_bypasses(&self) -> u64 {
        self.slices.iter().map(L2Slice::token_bypasses).sum()
    }
}

impl Stage for L2TlbStage {
    fn name(&self) -> &'static str {
        "l2_tlb"
    }

    fn access(&mut self, acc: &Access) -> Outcome {
        let s = self.slice_of(acc);
        let grant = self.ports[s].acquire(acc.at);
        let out = self.slices[s].lookup(&request(acc));
        let ppn = if out.hit {
            Some(out.ppn.expect("hit carries ppn")) // simlint: allow(hot-unwrap, reason = "TlbOutcome::hit always carries a ppn")
        } else {
            None
        };
        let o = Outcome {
            ppn,
            ready_at: grant + out.latency,
            queue_cycles: grant - acc.at,
            service_cycles: out.latency,
            fault_cycles: 0,
        };
        self.stats.record(&o);
        o
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

/// The shared page-table-walker pool plus the UVM address spaces it
/// walks — one per co-running application, indexed by [`Asid`]. Owns
/// demand-fault accounting: a first touch adds the configured fault
/// penalty as `fault_cycles`, attributed separately from the walk
/// itself.
pub struct WalkerStage {
    pool: WalkerPool,
    spaces: Vec<AddressSpace>,
    base_latency: u64,
    per_level_latency: u64,
    fault_latency: u64,
    demand_faults: u64,
    stats: StageStats,
}

impl WalkerStage {
    /// Builds the pool over a single address space (the solo-run shape;
    /// see [`WalkerStage::new_multi`] for co-runs).
    pub fn new(
        space: AddressSpace,
        walkers: usize,
        walk_latency: u64,
        per_level_latency: u64,
        fault_latency: u64,
    ) -> Self {
        Self::new_multi(
            vec![space],
            walkers,
            walk_latency,
            per_level_latency,
            fault_latency,
        )
    }

    /// Builds the pool over one address space per co-running app (ASID
    /// `i` walks `spaces[i]`'s page table) with the paper's analytic walk
    /// model: `walk_latency` flat, plus `per_level_latency` per radix
    /// level touched when non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `spaces` is empty or the spaces disagree on page size
    /// (the hierarchy carries one page size end to end).
    pub fn new_multi(
        spaces: Vec<AddressSpace>,
        walkers: usize,
        walk_latency: u64,
        per_level_latency: u64,
        fault_latency: u64,
    ) -> Self {
        assert!(!spaces.is_empty(), "at least one address space required");
        let ps = spaces[0].page_size();
        assert!(
            spaces.iter().all(|s| s.page_size() == ps),
            "co-running address spaces must share a page size"
        );
        WalkerStage {
            pool: WalkerPool::new(walkers, walk_latency),
            spaces,
            base_latency: walk_latency,
            per_level_latency,
            fault_latency,
            demand_faults: 0,
            stats: StageStats::default(),
        }
    }

    /// UVM demand faults taken so far.
    pub fn demand_faults(&self) -> u64 {
        self.demand_faults
    }

    /// Walker-pool activity counters.
    pub fn walker_stats(&self) -> WalkerStats {
        self.pool.stats()
    }

    /// The address space of ASID 0 (the solo-run accessor).
    pub fn space(&self) -> &AddressSpace {
        &self.spaces[0]
    }

    /// All address spaces, indexed by ASID.
    pub fn spaces(&self) -> &[AddressSpace] {
        &self.spaces
    }

    /// `asid`'s address space.
    pub fn space_of(&self, asid: Asid) -> &AddressSpace {
        &self.spaces[asid.index()]
    }

    /// Page size of the address spaces (identical across apps).
    pub fn page_size(&self) -> PageSize {
        self.spaces[0].page_size()
    }
}

impl Stage for WalkerStage {
    fn name(&self) -> &'static str {
        "walker"
    }

    fn access(&mut self, acc: &Access) -> Outcome {
        // One radix traversal serves both the translation (first touch
        // demand-pages the frame in, mutating the space) and the walk's
        // measured depth — `translate_with_walk_info` reports the level
        // count a separate post-translation walk would.
        let space = self
            .spaces
            .get_mut(acc.asid.index())
            .expect("access ASID outside the configured address spaces"); // simlint: allow(hot-unwrap, reason = "the engine assigns ASIDs densely from the co-run app list")
        let (pa, fault, levels) = space
            .translate_with_walk_info(acc.va)
            .expect("workload addresses must fall inside allocated buffers"); // simlint: allow(hot-unwrap, reason = "documented panic contract: out-of-buffer addresses are generator bugs")
        let page_size = space.page_size();
        let latency = if self.per_level_latency == 0 {
            self.base_latency
        } else {
            self.base_latency + self.per_level_latency * levels as u64
        };
        let waited_before = self.pool.stats().queue_wait_cycles;
        // The pool coalesces walks by key equality; qualify the VPN with
        // the ASID (the documented `asid << 53` packing, lossless for
        // ≤52-bit VPNs) so co-running apps walking the same virtual page
        // never share a walk — they traverse different page tables.
        let key = Vpn::new((u64::from(acc.asid.raw()) << 53) | acc.vpn.raw());
        let done = self.pool.submit_with_latency(acc.at, key, latency);
        let queue_cycles = self.pool.stats().queue_wait_cycles - waited_before;
        let fault_cycles = if fault == FaultKind::DemandPaged {
            self.demand_faults += 1;
            self.fault_latency
        } else {
            0
        };
        let o = Outcome {
            ppn: Some(pa.ppn(page_size)),
            ready_at: done + fault_cycles,
            queue_cycles,
            // Coalesced walks ride an in-flight walk: their service time
            // is whatever remains of it, keeping `ready_at == at +
            // latency()` exact for every path.
            service_cycles: done - acc.at - queue_cycles,
            fault_cycles,
        };
        self.stats.record(&o);
        o
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::Vpn;

    fn acc(at: u64, vpn: u64) -> Access {
        Access {
            at,
            sm: 0,
            asid: Asid::default(),
            tb_slot: 0,
            va: Vpn::new(vpn).base_addr(PageSize::Small),
            vpn: Vpn::new(vpn),
            page_size: PageSize::Small,
        }
    }

    fn acc_as(asid: u16, at: u64, vpn: u64) -> Access {
        Access {
            asid: Asid::new(asid),
            ..acc(at, vpn)
        }
    }

    #[test]
    fn icnt_is_a_pure_delay() {
        let mut link = IcntLink::new(20);
        let o = link.access(&acc(5, 1));
        assert_eq!(o.ready_at, 25);
        assert_eq!(o.latency(), 20);
        assert!(o.ppn.is_none());
    }

    #[test]
    fn l2_stage_queues_on_ports_and_interleaves_slices() {
        // 4 slices, 1 port each, occupancy 1.
        let mut l2 = L2TlbStage::new(TlbConfig::dac23_l2(), 4, 1, 1, L2Policy::Shared);
        assert_eq!(l2.slices().len(), 4);
        // VPNs 0 and 4 both map to slice 0; back-to-back lookups at the
        // same cycle serialize on the single port.
        let first = l2.access(&acc(0, 0));
        let second = l2.access(&acc(0, 4));
        assert_eq!(first.queue_cycles, 0);
        assert_eq!(second.queue_cycles, 1);
        // VPN 1 lives on slice 1 with an idle port.
        let other = l2.access(&acc(0, 1));
        assert_eq!(other.queue_cycles, 0);
        assert_eq!(l2.tlb_stats().misses, 3);
    }

    #[test]
    fn l2_fill_makes_the_owning_slice_hit() {
        let mut l2 = L2TlbStage::new(TlbConfig::dac23_l2(), 2, 2, 1, L2Policy::Shared);
        let a = acc(0, 5);
        assert!(l2.access(&a).ppn.is_none());
        l2.fill(&a, Ppn::new(9));
        let hit = l2.access(&a.arriving_at(100));
        assert_eq!(hit.ppn, Some(Ppn::new(9)));
        // ready = grant(100) + 10-cycle lookup.
        assert_eq!(hit.ready_at, 110);
    }

    #[test]
    fn l2_slices_isolate_asids() {
        let mut l2 = L2TlbStage::new(TlbConfig::dac23_l2(), 2, 2, 1, L2Policy::Shared);
        let a1 = acc_as(1, 0, 5);
        let a2 = acc_as(2, 0, 5);
        l2.fill(&a1, Ppn::new(100));
        // Same VPN, other app: the ASID is part of the tag compare.
        assert!(l2.access(&a2).ppn.is_none(), "cross-ASID lookup must miss");
        assert_eq!(l2.access(&a1.arriving_at(50)).ppn, Some(Ppn::new(100)));
        let by = l2.tlb_stats_by_asid();
        let agg = by.iter().fold(TlbStats::default(), |s, (_, t)| s + *t);
        assert_eq!(agg, l2.tlb_stats(), "per-ASID slice stats sum to aggregate");
    }

    #[test]
    fn mask_tokens_bypass_fills_over_quota() {
        // One slice, quota 2: the third distinct fill from app 1 bypasses.
        let mut l2 = L2TlbStage::new(
            TlbConfig::dac23_l2(),
            1,
            2,
            1,
            L2Policy::MaskTokens { quota: 2 },
        );
        for vpn in 0..3u64 {
            l2.fill(&acc_as(1, 0, vpn), Ppn::new(100 + vpn));
        }
        assert_eq!(l2.token_bypasses(), 1, "third fill exceeded the quota");
        assert_eq!(l2.slices()[0].resident_of(Asid::new(1)), 2);
        assert!(
            l2.access(&acc_as(1, 10, 2)).ppn.is_none(),
            "bypassed fill left no entry"
        );
        // Another app still has its own tokens.
        l2.fill(&acc_as(2, 0, 7), Ppn::new(900));
        assert_eq!(l2.access(&acc_as(2, 20, 7)).ppn, Some(Ppn::new(900)));
        for s in l2.slices() {
            s.check_invariants().expect("token quota invariant holds");
        }
    }

    #[test]
    fn sub_entry_slices_share_tags_across_asids() {
        let mut l2 = L2TlbStage::new(
            TlbConfig::dac23_l2(),
            2,
            2,
            1,
            L2Policy::SubEntry { subs: 4 },
        );
        l2.fill(&acc_as(1, 0, 5), Ppn::new(100));
        l2.fill(&acc_as(2, 0, 5), Ppn::new(200));
        assert_eq!(l2.access(&acc_as(1, 10, 5)).ppn, Some(Ppn::new(100)));
        assert_eq!(l2.access(&acc_as(2, 10, 5)).ppn, Some(Ppn::new(200)));
        // One shared tag serves both: a single insertion-per-app, and the
        // per-ASID split still sums to the aggregate.
        let by = l2.tlb_stats_by_asid();
        let agg = by.iter().fold(TlbStats::default(), |s, (_, t)| s + *t);
        assert_eq!(agg, l2.tlb_stats());
    }

    #[test]
    fn walker_stage_charges_walk_and_first_touch_fault() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 16).expect("fresh space");
        let va = buf.addr_of(0);
        let mut w = WalkerStage::new(space, 8, 500, 0, 2000);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        let first = w.access(&a);
        assert_eq!(first.fault_cycles, 2000, "first touch demand-pages");
        assert_eq!(first.ready_at, 2500);
        assert_eq!(w.demand_faults(), 1);
        // Same page later: walk only, no fault.
        let again = w.access(&a.arriving_at(10_000));
        assert_eq!(again.fault_cycles, 0);
        assert_eq!(again.ready_at, 10_500);
        assert_eq!(w.walker_stats().walks, 2);
    }

    #[test]
    fn walker_routes_each_asid_to_its_own_page_table() {
        // Two apps with identically laid-out spaces: walks for the same
        // VA must hit separate page tables (distinct demand faults) and
        // must never coalesce across ASIDs.
        let mut spaces = Vec::new();
        let mut vas = Vec::new();
        for _ in 0..2 {
            let mut s = AddressSpace::new(PageSize::Small);
            let buf = s.allocate("b", 1 << 16).expect("fresh space");
            vas.push(buf.addr_of(0));
            spaces.push(s);
        }
        assert_eq!(vas[0], vas[1], "twin allocation is deterministic");
        let mut w = WalkerStage::new_multi(spaces, 8, 500, 0, 2000);
        let mk = |asid: u16, at: u64| Access {
            va: vas[0],
            vpn: vas[0].vpn(PageSize::Small),
            ..acc_as(asid, at, 0)
        };
        let a = w.access(&mk(0, 0));
        let b = w.access(&mk(1, 0));
        assert_eq!(a.fault_cycles, 2000, "app 0 first touch");
        assert_eq!(b.fault_cycles, 2000, "app 1 first touch is its own");
        assert_eq!(w.demand_faults(), 2);
        assert_eq!(
            w.walker_stats().coalesced,
            0,
            "same VPN, different ASIDs: no shared walk"
        );
        // Same app re-walking the same page does coalesce.
        let _ = w.access(&mk(0, 1));
        let _ = w.access(&mk(0, 2));
        assert!(w.walker_stats().coalesced >= 1);
    }

    #[test]
    fn walker_outcome_latency_is_exact_even_when_coalesced() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 16).expect("fresh space");
        let va = buf.addr_of(0);
        let mut w = WalkerStage::new(space, 8, 500, 0, 0);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        let first = w.access(&a);
        assert_eq!(first.ready_at, a.at + first.latency());
        // Coalesce onto the in-flight walk mid-way.
        let b = a.arriving_at(250);
        let coalesced = w.access(&b);
        assert_eq!(coalesced.ready_at, first.ready_at);
        assert_eq!(coalesced.ready_at, b.at + coalesced.latency());
        assert_eq!(w.walker_stats().coalesced, 1);
    }
}
