//! The shared pipeline's concrete stages (the back half of the paper's
//! Figure 1): the interconnect hop, the VPN-interleaved L2 TLB, and the
//! shared walker pool. The SM-private stages (L1 TLB, VIPT L1 data
//! cache) live on [`PerSmFront`](crate::PerSmFront) in `split.rs`.

use crate::ports::Ports;
use crate::stage::{Access, Outcome, Stage, StageStats};
use tlb::{SetAssocTlb, TlbConfig, TlbRequest, TlbStats, TranslationBuffer};
use vmem::{AddressSpace, FaultKind, PageSize, Ppn, WalkerPool, WalkerStats};

fn request(acc: &Access) -> TlbRequest {
    TlbRequest::with_page_size(acc.vpn, acc.tb_slot, acc.page_size)
}

/// One direction of the SM-to-partition interconnect: a fixed-latency
/// hop with no arbitration (the engine models contention at the L2 TLB
/// ports and the walker pool, not on the network itself).
pub struct IcntLink {
    latency: u64,
    pub(crate) stats: StageStats,
}

impl IcntLink {
    /// A hop of `latency` cycles.
    pub fn new(latency: u64) -> Self {
        IcntLink {
            latency,
            stats: StageStats::default(),
        }
    }

    /// The hop latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

impl Stage for IcntLink {
    fn name(&self) -> &'static str {
        "icnt"
    }

    fn access(&mut self, acc: &Access) -> Outcome {
        let o = Outcome {
            ppn: None,
            ready_at: acc.at + self.latency,
            queue_cycles: 0,
            service_cycles: self.latency,
            fault_cycles: 0,
        };
        self.stats.record(&o);
        o
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

/// The shared L2 TLB, VPN-interleaved over slices, each slice fronted
/// by a [`Ports`] bank. Requests first win a port (queueing under miss
/// floods), then probe the slice.
pub struct L2TlbStage {
    pub(crate) slices: Vec<SetAssocTlb>,
    pub(crate) ports: Vec<Ports>,
    pub(crate) stats: StageStats,
}

impl L2TlbStage {
    /// Divides `config` over `slices` slices (clamped to at least one),
    /// each with `ports` lookup ports held `occupancy` cycles per grant.
    pub fn new(config: TlbConfig, slices: usize, ports: usize, occupancy: u64) -> Self {
        let n = slices.max(1);
        let per_slice = config.sliced(n);
        L2TlbStage {
            slices: (0..n).map(|_| SetAssocTlb::new(per_slice)).collect(),
            ports: (0..n).map(|_| Ports::new(ports, occupancy)).collect(),
            stats: StageStats::default(),
        }
    }

    fn slice_of(&self, acc: &Access) -> usize {
        // simlint: allow(lossy-cast, reason = "modulo slice count bounds the value below the slice-vector length before narrowing")
        (acc.vpn.raw() % self.slices.len() as u64) as usize
    }

    /// Fills the slice owning the access's VPN after a walk resolves.
    pub fn fill(&mut self, acc: &Access, ppn: Ppn) {
        let s = self.slice_of(acc);
        self.slices[s].insert(&request(acc), ppn);
    }

    /// The slices, in interleave order.
    pub fn slices(&self) -> &[SetAssocTlb] {
        &self.slices
    }

    /// Aggregate TLB counters summed over slices.
    pub fn tlb_stats(&self) -> TlbStats {
        self.slices
            .iter()
            .fold(TlbStats::default(), |a, t| a + t.stats())
    }
}

impl Stage for L2TlbStage {
    fn name(&self) -> &'static str {
        "l2_tlb"
    }

    fn access(&mut self, acc: &Access) -> Outcome {
        let s = self.slice_of(acc);
        let grant = self.ports[s].acquire(acc.at);
        let out = self.slices[s].lookup(&request(acc));
        let ppn = if out.hit {
            Some(out.ppn.expect("hit carries ppn")) // simlint: allow(hot-unwrap, reason = "TlbOutcome::hit always carries a ppn")
        } else {
            None
        };
        let o = Outcome {
            ppn,
            ready_at: grant + out.latency,
            queue_cycles: grant - acc.at,
            service_cycles: out.latency,
            fault_cycles: 0,
        };
        self.stats.record(&o);
        o
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

/// The shared page-table-walker pool plus the UVM address space it
/// walks. Owns demand-fault accounting: a first touch adds the
/// configured fault penalty as `fault_cycles`, attributed separately
/// from the walk itself.
pub struct WalkerStage {
    pool: WalkerPool,
    space: AddressSpace,
    base_latency: u64,
    per_level_latency: u64,
    fault_latency: u64,
    demand_faults: u64,
    stats: StageStats,
}

impl WalkerStage {
    /// Builds the pool over `space` with the paper's analytic walk
    /// model: `walk_latency` flat, plus `per_level_latency` per radix
    /// level touched when non-zero.
    pub fn new(
        space: AddressSpace,
        walkers: usize,
        walk_latency: u64,
        per_level_latency: u64,
        fault_latency: u64,
    ) -> Self {
        WalkerStage {
            pool: WalkerPool::new(walkers, walk_latency),
            space,
            base_latency: walk_latency,
            per_level_latency,
            fault_latency,
            demand_faults: 0,
            stats: StageStats::default(),
        }
    }

    /// UVM demand faults taken so far.
    pub fn demand_faults(&self) -> u64 {
        self.demand_faults
    }

    /// Walker-pool activity counters.
    pub fn walker_stats(&self) -> WalkerStats {
        self.pool.stats()
    }

    /// The address space being walked.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Page size of the address space.
    pub fn page_size(&self) -> PageSize {
        self.space.page_size()
    }
}

impl Stage for WalkerStage {
    fn name(&self) -> &'static str {
        "walker"
    }

    fn access(&mut self, acc: &Access) -> Outcome {
        // One radix traversal serves both the translation (first touch
        // demand-pages the frame in, mutating the space) and the walk's
        // measured depth — `translate_with_walk_info` reports the level
        // count a separate post-translation walk would.
        let (pa, fault, levels) = self
            .space
            .translate_with_walk_info(acc.va)
            .expect("workload addresses must fall inside allocated buffers"); // simlint: allow(hot-unwrap, reason = "documented panic contract: out-of-buffer addresses are generator bugs")
        let latency = if self.per_level_latency == 0 {
            self.base_latency
        } else {
            self.base_latency + self.per_level_latency * levels as u64
        };
        let waited_before = self.pool.stats().queue_wait_cycles;
        let done = self.pool.submit_with_latency(acc.at, acc.vpn, latency);
        let queue_cycles = self.pool.stats().queue_wait_cycles - waited_before;
        let fault_cycles = if fault == FaultKind::DemandPaged {
            self.demand_faults += 1;
            self.fault_latency
        } else {
            0
        };
        let o = Outcome {
            ppn: Some(pa.ppn(self.space.page_size())),
            ready_at: done + fault_cycles,
            queue_cycles,
            // Coalesced walks ride an in-flight walk: their service time
            // is whatever remains of it, keeping `ready_at == at +
            // latency()` exact for every path.
            service_cycles: done - acc.at - queue_cycles,
            fault_cycles,
        };
        self.stats.record(&o);
        o
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::Vpn;

    fn acc(at: u64, vpn: u64) -> Access {
        Access {
            at,
            sm: 0,
            tb_slot: 0,
            va: Vpn::new(vpn).base_addr(PageSize::Small),
            vpn: Vpn::new(vpn),
            page_size: PageSize::Small,
        }
    }

    #[test]
    fn icnt_is_a_pure_delay() {
        let mut link = IcntLink::new(20);
        let o = link.access(&acc(5, 1));
        assert_eq!(o.ready_at, 25);
        assert_eq!(o.latency(), 20);
        assert!(o.ppn.is_none());
    }

    #[test]
    fn l2_stage_queues_on_ports_and_interleaves_slices() {
        // 4 slices, 1 port each, occupancy 1.
        let mut l2 = L2TlbStage::new(TlbConfig::dac23_l2(), 4, 1, 1);
        assert_eq!(l2.slices().len(), 4);
        // VPNs 0 and 4 both map to slice 0; back-to-back lookups at the
        // same cycle serialize on the single port.
        let first = l2.access(&acc(0, 0));
        let second = l2.access(&acc(0, 4));
        assert_eq!(first.queue_cycles, 0);
        assert_eq!(second.queue_cycles, 1);
        // VPN 1 lives on slice 1 with an idle port.
        let other = l2.access(&acc(0, 1));
        assert_eq!(other.queue_cycles, 0);
        assert_eq!(l2.tlb_stats().misses, 3);
    }

    #[test]
    fn l2_fill_makes_the_owning_slice_hit() {
        let mut l2 = L2TlbStage::new(TlbConfig::dac23_l2(), 2, 2, 1);
        let a = acc(0, 5);
        assert!(l2.access(&a).ppn.is_none());
        l2.fill(&a, Ppn::new(9));
        let hit = l2.access(&a.arriving_at(100));
        assert_eq!(hit.ppn, Some(Ppn::new(9)));
        // ready = grant(100) + 10-cycle lookup.
        assert_eq!(hit.ready_at, 110);
    }

    #[test]
    fn walker_stage_charges_walk_and_first_touch_fault() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 16).expect("fresh space");
        let va = buf.addr_of(0);
        let mut w = WalkerStage::new(space, 8, 500, 0, 2000);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        let first = w.access(&a);
        assert_eq!(first.fault_cycles, 2000, "first touch demand-pages");
        assert_eq!(first.ready_at, 2500);
        assert_eq!(w.demand_faults(), 1);
        // Same page later: walk only, no fault.
        let again = w.access(&a.arriving_at(10_000));
        assert_eq!(again.fault_cycles, 0);
        assert_eq!(again.ready_at, 10_500);
        assert_eq!(w.walker_stats().walks, 2);
    }

    #[test]
    fn walker_outcome_latency_is_exact_even_when_coalesced() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 16).expect("fresh space");
        let va = buf.addr_of(0);
        let mut w = WalkerStage::new(space, 8, 500, 0, 0);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        let first = w.access(&a);
        assert_eq!(first.ready_at, a.at + first.latency());
        // Coalesce onto the in-flight walk mid-way.
        let b = a.arriving_at(250);
        let coalesced = w.access(&b);
        assert_eq!(coalesced.ready_at, first.ready_at);
        assert_eq!(coalesced.ready_at, b.at + coalesced.latency());
        assert_eq!(w.walker_stats().coalesced, 1);
    }
}
