//! Per-level latency attribution for address translation.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Where one translation's cycles went, level by level.
///
/// Produced by [`Hierarchy::translate`](crate::Hierarchy::translate) for
/// every L1 TLB lookup; the fields sum to the translation's end-to-end
/// latency (L1 hits spend everything in `l1_tlb`; walks accumulate every
/// field).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslationBreakdown {
    /// L1 TLB lookup cycles.
    pub l1_tlb: u64,
    /// Interconnect hop cycles (both directions on an L1 miss).
    pub icnt: u64,
    /// Cycles queued for an L2 TLB slice port.
    pub l2_tlb_queue: u64,
    /// L2 TLB lookup cycles.
    pub l2_tlb_lookup: u64,
    /// Page-table-walk cycles (walker queueing + the walk itself).
    pub walk: u64,
    /// UVM demand-fault (first-touch) cycles.
    pub fault: u64,
}

impl TranslationBreakdown {
    /// Total cycles attributed across all levels.
    pub fn total(&self) -> u64 {
        self.l1_tlb + self.icnt + self.l2_tlb_queue + self.l2_tlb_lookup + self.walk + self.fault
    }
}

/// Aggregate per-level latency attribution over every translation of a
/// run — the report section that lets Figure-10-style results be
/// *explained* ("bfs loses its cycles to L2 TLB port queueing, not to
/// walks") instead of just totaled.
///
/// `end_to_end_cycles` is accumulated independently of the per-level
/// fields (from each translation's issue/completion cycles), so
/// [`LatencyBreakdown::check`] is a genuine cross-check of the
/// attribution, not an identity by construction.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Translations attributed (one per L1 TLB lookup).
    pub translations: u64,
    /// Cycles spent in L1 TLB lookups.
    pub l1_tlb_cycles: u64,
    /// Cycles spent on the interconnect (SM <-> partition, both ways).
    pub icnt_cycles: u64,
    /// Cycles spent queueing for L2 TLB slice ports.
    pub l2_tlb_queue_cycles: u64,
    /// Cycles spent in L2 TLB lookups.
    pub l2_tlb_lookup_cycles: u64,
    /// Cycles spent walking page tables (including walker queueing).
    pub walk_cycles: u64,
    /// Cycles spent on UVM demand faults.
    pub fault_cycles: u64,
    /// Independently accumulated end-to-end translation cycles.
    pub end_to_end_cycles: u64,
}

impl LatencyBreakdown {
    /// Folds one translation into the aggregate.
    pub fn record(&mut self, b: &TranslationBreakdown, end_to_end: u64) {
        self.translations += 1;
        self.l1_tlb_cycles += b.l1_tlb;
        self.icnt_cycles += b.icnt;
        self.l2_tlb_queue_cycles += b.l2_tlb_queue;
        self.l2_tlb_lookup_cycles += b.l2_tlb_lookup;
        self.walk_cycles += b.walk;
        self.fault_cycles += b.fault;
        self.end_to_end_cycles += end_to_end;
        debug_assert_eq!(
            b.total(),
            end_to_end,
            "translation breakdown must attribute every end-to-end cycle: {b:?}"
        );
    }

    /// Sum of the per-level fields.
    pub fn stage_sum(&self) -> u64 {
        self.l1_tlb_cycles
            + self.icnt_cycles
            + self.l2_tlb_queue_cycles
            + self.l2_tlb_lookup_cycles
            + self.walk_cycles
            + self.fault_cycles
    }

    /// Verifies the attribution identity: the per-level sums must equal
    /// the independently accumulated end-to-end cycles.
    pub fn check(&self) -> Result<(), String> {
        if self.stage_sum() == self.end_to_end_cycles {
            Ok(())
        } else {
            Err(format!(
                "per-level sums ({}) != end-to-end translation cycles ({})",
                self.stage_sum(),
                self.end_to_end_cycles
            ))
        }
    }

    /// Mean end-to-end translation latency in cycles (0 with no
    /// translations).
    pub fn mean_latency(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.end_to_end_cycles as f64 / self.translations as f64
        }
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;
    fn add(mut self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        self.translations += rhs.translations;
        self.l1_tlb_cycles += rhs.l1_tlb_cycles;
        self.icnt_cycles += rhs.icnt_cycles;
        self.l2_tlb_queue_cycles += rhs.l2_tlb_queue_cycles;
        self.l2_tlb_lookup_cycles += rhs.l2_tlb_lookup_cycles;
        self.walk_cycles += rhs.walk_cycles;
        self.fault_cycles += rhs.fault_cycles;
        self.end_to_end_cycles += rhs.end_to_end_cycles;
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} translations, {:.1} cyc mean (L1 TLB {} | icnt {} | L2q {} | L2 {} | walk {} | fault {})",
            self.translations,
            self.mean_latency(),
            self.l1_tlb_cycles,
            self.icnt_cycles,
            self.l2_tlb_queue_cycles,
            self.l2_tlb_lookup_cycles,
            self.walk_cycles,
            self.fault_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk_breakdown() -> TranslationBreakdown {
        TranslationBreakdown {
            l1_tlb: 1,
            icnt: 40,
            l2_tlb_queue: 3,
            l2_tlb_lookup: 10,
            walk: 500,
            fault: 2000,
        }
    }

    #[test]
    fn record_keeps_the_identity() {
        let mut agg = LatencyBreakdown::default();
        let b = walk_breakdown();
        agg.record(&b, b.total());
        agg.record(&TranslationBreakdown { l1_tlb: 1, ..Default::default() }, 1);
        assert_eq!(agg.translations, 2);
        assert_eq!(agg.stage_sum(), b.total() + 1);
        assert!(agg.check().is_ok());
        assert!((agg.mean_latency() - (b.total() + 1) as f64 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn check_catches_unattributed_cycles() {
        let agg = LatencyBreakdown {
            translations: 1,
            l1_tlb_cycles: 1,
            end_to_end_cycles: 5,
            ..Default::default()
        };
        let err = agg.check().unwrap_err();
        assert!(err.contains("(1)") && err.contains("(5)"), "{err}");
    }

    #[test]
    fn addition_is_fieldwise() {
        let mut a = LatencyBreakdown::default();
        let b = walk_breakdown();
        a.record(&b, b.total());
        let sum = a + a;
        assert_eq!(sum.translations, 2);
        assert_eq!(sum.walk_cycles, 1000);
        assert_eq!(sum.end_to_end_cycles, 2 * b.total());
        assert!(sum.check().is_ok());
    }

    #[test]
    fn display_names_every_level() {
        let mut agg = LatencyBreakdown::default();
        let b = walk_breakdown();
        agg.record(&b, b.total());
        let s = agg.to_string();
        for needle in ["L1 TLB", "icnt", "L2q", "walk", "fault"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}
