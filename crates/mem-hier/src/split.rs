//! The private/shared state split of the hierarchy.
//!
//! The paper's design keeps L1 TLBs SM-private while contention
//! concentrates at the shared L2 TLB and walker pool — which is exactly
//! the split a deterministic SM-parallel engine needs. This module
//! factors the pipeline into:
//!
//! * [`PerSmFront`] — everything one SM touches exclusively: its private
//!   L1 TLB (plus that stage's activity stats and the L1-hit latency
//!   attribution) and its private VIPT L1 data cache. Safe to step on a
//!   phase-A worker thread with no shared state.
//! * [`SharedBack`] — the order-sensitive shared stages: the
//!   interconnect, the sliced L2 TLB with port arbitration, the walker
//!   pool over the (mutating, PPN-allocating) address space, and the
//!   L2/DRAM data path. Only the coordinating thread applies these, in
//!   SM-index order, which is what keeps parallel runs byte-identical to
//!   the serial engine.
//! * [`SharedRequest`] — the explicit boundary type: the work a phase-A
//!   step defers to phase B.
//!
//! Per-front accumulators ([`StageStats`], [`LatencyBreakdown`]) are
//! plain counter sums, so merging them over SMs is order-independent and
//! deterministic by construction.

use crate::breakdown::{LatencyBreakdown, TranslationBreakdown};
use crate::cache::{Cache, CacheStats};
use crate::config::HierarchyConfig;
use crate::hierarchy::{HitLevel, Translation};
use crate::stage::{Access, Outcome, Stage, StageStats};
use crate::stages::{IcntLink, L2Slice, L2TlbStage, WalkerStage};
use tlb::{TlbRequest, TlbStats, TranslationBuffer};
use vmem::{AddressSpace, Asid, PageSize, PhysAddr, Ppn, WalkerStats};

fn request(acc: &Access) -> TlbRequest {
    TlbRequest::with_page_size(acc.vpn, acc.tb_slot, acc.page_size).with_asid(acc.asid)
}

/// One SM's private slice of the hierarchy: its L1 TLB and L1 data
/// cache, with the stats and latency attribution they generate. Owns no
/// shared state, so phase A may step it on a worker thread.
pub struct PerSmFront {
    sm: usize,
    l1_tlb: Box<dyn TranslationBuffer>,
    l1_stats: StageStats,
    l1_data: Cache,
    l1_hit_latency: u64,
    transactions: u64,
    /// L1-hit translations are attributed here; miss paths are
    /// attributed by the back. The merged sum equals the serial engine's
    /// single accumulator exactly (u64 sums are order-independent).
    breakdown: LatencyBreakdown,
}

impl PerSmFront {
    /// Builds SM `sm`'s front around an externally built L1 TLB.
    pub fn new(sm: usize, l1_tlb: Box<dyn TranslationBuffer>, config: &HierarchyConfig) -> Self {
        PerSmFront {
            sm,
            l1_tlb,
            l1_stats: StageStats::default(),
            l1_data: Cache::new(config.l1_cache),
            l1_hit_latency: config.l1_hit_latency,
            transactions: 0,
            breakdown: LatencyBreakdown::default(),
        }
    }

    /// The SM index this front belongs to.
    pub fn sm(&self) -> usize {
        self.sm
    }

    /// Probes the private L1 TLB. On a hit the translation is complete
    /// (and attributed); on a miss the caller routes a
    /// [`SharedRequest::TranslateMiss`] carrying this outcome to the
    /// back.
    pub fn probe_translate(&mut self, acc: &Access) -> Outcome {
        debug_assert_eq!(acc.sm, self.sm, "access routed to the wrong SM front");
        let out = self.l1_tlb.lookup(&request(acc));
        let ppn = if out.hit {
            Some(out.ppn.expect("hit carries ppn")) // simlint: allow(hot-unwrap, reason = "TlbOutcome::hit always carries a ppn")
        } else {
            None
        };
        let o = Outcome {
            ppn,
            ready_at: acc.at + out.latency,
            queue_cycles: 0,
            service_cycles: out.latency,
            fault_cycles: 0,
        };
        self.l1_stats.record(&o);
        debug_assert_eq!(o.ready_at, acc.at + o.latency());
        if o.ppn.is_some() {
            let b = TranslationBreakdown {
                l1_tlb: o.service_cycles,
                ..Default::default()
            };
            self.breakdown.record(&b, o.ready_at - acc.at);
        }
        o
    }

    /// Fills the private L1 TLB after a downstream resolution.
    pub fn fill(&mut self, acc: &Access, ppn: Ppn) {
        self.l1_tlb.insert(&request(acc), ppn);
    }

    /// Probes the private VIPT L1 data cache (in parallel with
    /// translation: `start` already accounts for PPN availability).
    /// Returns the completion cycle on a hit; `None` means the caller
    /// must take the shared L2/DRAM leg ([`SharedBack::data_miss`]).
    pub fn probe_data(&mut self, start: u64, pa: PhysAddr, write: bool) -> Option<u64> {
        self.transactions += 1;
        if self.l1_data.access(pa.raw(), write) {
            Some(start + self.l1_hit_latency)
        } else {
            None
        }
    }

    /// The private L1 TLB.
    pub fn tlb(&self) -> &dyn TranslationBuffer {
        self.l1_tlb.as_ref()
    }

    /// Mutable access to the private L1 TLB (kernel-launch flush,
    /// TB-slot retirement).
    pub fn tlb_mut(&mut self) -> &mut dyn TranslationBuffer {
        self.l1_tlb.as_mut()
    }

    /// This front's share of the `l1_tlb` stage activity.
    pub fn l1_stage_stats(&self) -> StageStats {
        self.l1_stats
    }

    /// This front's L1 data-cache counters.
    pub fn l1_cache_stats(&self) -> CacheStats {
        self.l1_data.stats()
    }

    /// Coalesced line transactions this front issued.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// This front's share of the latency attribution (L1-hit
    /// translations).
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.breakdown
    }

    /// Cross-checks the front's accounting: the latency attribution
    /// identity, the L1 TLB's own counter identity, and the structural
    /// couplings between the three independent accumulators (stage stats,
    /// TLB stats, breakdown). The sanitizer runs this at end of kernel;
    /// the differential harness leans on it to catch lost or
    /// double-counted translations.
    pub fn check_accounting(&self) -> Result<(), String> {
        self.breakdown.check()?;
        self.l1_tlb.stats().check()?;
        if self.l1_stats.resolved > self.l1_stats.accesses {
            return Err(format!(
                "L1 stage resolved {} of only {} accesses",
                self.l1_stats.resolved, self.l1_stats.accesses
            ));
        }
        // The front attributes exactly the L1-hit translations: one
        // breakdown entry per resolved stage access, with every cycle in
        // the l1_tlb component (miss paths are attributed by the back).
        if self.breakdown.translations != self.l1_stats.resolved {
            return Err(format!(
                "front attributed {} translations but the L1 stage resolved {}",
                self.breakdown.translations, self.l1_stats.resolved
            ));
        }
        if self.breakdown.stage_sum() != self.breakdown.l1_tlb_cycles {
            return Err(format!(
                "front attribution leaked {} cycles outside the l1_tlb component",
                self.breakdown.stage_sum() - self.breakdown.l1_tlb_cycles
            ));
        }
        // Every stage access is one TLB lookup and vice versa (lookups
        // survive kernel-launch flushes: neither accumulator resets).
        let lookups = self.l1_tlb.stats().lookups;
        if lookups != self.l1_stats.accesses {
            return Err(format!(
                "L1 TLB counted {lookups} lookups but the stage recorded {} accesses",
                self.l1_stats.accesses
            ));
        }
        Ok(())
    }
}

/// Reference to a translation a deferred data access depends on: either
/// already resolved in phase A (an L1 TLB hit or a same-instruction
/// duplicate), or the index of an earlier translate request in the same
/// outbox.
#[derive(Copy, Clone, Debug)]
pub enum TranslationRef {
    /// Resolved in phase A: the frame and the cycle it became available.
    Resolved {
        /// Translated frame.
        ppn: Ppn,
        /// Cycle the PPN was available back at the SM.
        ready_at: u64,
    },
    /// Index into the outbox's translate-request results, in push order.
    Pending(u32),
}

/// One unit of shared-stage work a phase-A SM step defers to phase B.
/// Drained in SM-index order (and in push order within an SM), which
/// reproduces the serial engine's operation order on every shared
/// structure exactly.
#[derive(Copy, Clone, Debug)]
pub enum SharedRequest {
    /// Complete a translation whose private L1 probe already ran (and
    /// missed) in phase A: icnt hop, L2 TLB, walk if needed, fills, icnt
    /// back.
    TranslateMiss {
        /// The original access.
        acc: Access,
        /// When the phase-A L1 probe's miss verdict was ready.
        l1_ready_at: u64,
        /// Service cycles the phase-A L1 probe consumed.
        l1_service_cycles: u64,
    },
    /// Replay a translation in full (its L1 probe was deferred behind an
    /// earlier miss in the same SM step, preserving per-TLB operation
    /// order).
    TranslateReplay {
        /// The original access.
        acc: Access,
    },
    /// The shared L2/DRAM leg of a data access whose private L1 probe
    /// missed in phase A.
    DataBack {
        /// Cycle the transaction left the SM.
        start: u64,
        /// Translated line address.
        pa: PhysAddr,
        /// Store (true) or load.
        write: bool,
    },
    /// Replay a data access in full: its start cycle depends on a
    /// translation resolved in phase B.
    DataReplay {
        /// The translation this line waits on.
        translation: TranslationRef,
        /// Lower bound on the start cycle (the LSU's one-per-cycle
        /// transaction slot).
        min_start: u64,
        /// Byte offset of the line within its page.
        page_offset: u64,
        /// Store (true) or load.
        write: bool,
    },
}

impl SharedRequest {
    /// The access of a translate request (`None` for data requests);
    /// used by the engine's phase-B sanitizer hook.
    pub fn translate_acc(&self) -> Option<&Access> {
        match self {
            SharedRequest::TranslateMiss { acc, .. } | SharedRequest::TranslateReplay { acc } => {
                Some(acc)
            }
            _ => None,
        }
    }
}

/// What applying one [`SharedRequest`] produced.
#[derive(Copy, Clone, Debug)]
pub struct SharedResponse {
    /// Resolved frame for translate requests, `None` for data requests.
    pub ppn: Option<Ppn>,
    /// Completion cycle: PPN availability for translations, transaction
    /// completion for data accesses.
    pub ready_at: u64,
    /// Whether this request filled the SM's private L1 TLB (drives the
    /// engine's post-fill sanitizer check, exactly as the serial path).
    pub filled_l1: bool,
}

/// The shared, order-sensitive half of the hierarchy: interconnect,
/// sliced L2 TLB, walker pool (owning the address space), and the
/// L2/DRAM data path. Applied only by the coordinating thread.
pub struct SharedBack {
    pub(crate) icnt: IcntLink,
    pub(crate) l2_tlb: L2TlbStage,
    pub(crate) walker: WalkerStage,
    pub(crate) l2_data: Cache,
    pub(crate) icnt_latency: u64,
    pub(crate) l2_hit_latency: u64,
    pub(crate) dram_latency: u64,
    /// Miss-path translations are attributed here (the fronts hold the
    /// L1-hit share).
    pub(crate) breakdown: LatencyBreakdown,
}

impl SharedBack {
    /// Assembles the shared stages from the hierarchy geometry around a
    /// single address space (the solo-run shape).
    pub fn new(config: &HierarchyConfig, space: AddressSpace) -> Self {
        Self::new_multi(config, vec![space])
    }

    /// Assembles the shared stages around one address space per
    /// co-running app (ASID `i` owns `spaces[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `spaces` is empty or disagrees on page size (via
    /// [`WalkerStage::new_multi`]).
    pub fn new_multi(config: &HierarchyConfig, spaces: Vec<AddressSpace>) -> Self {
        SharedBack {
            icnt: IcntLink::new(config.icnt_latency),
            l2_tlb: L2TlbStage::new(
                config.l2_tlb,
                config.l2_tlb_slices,
                config.l2_tlb_ports,
                config.l2_tlb_port_occupancy,
                config.l2_policy,
            ),
            walker: WalkerStage::new_multi(
                spaces,
                config.walkers,
                config.walk_latency,
                config.walk_latency_per_level,
                config.demand_fault_latency,
            ),
            l2_data: Cache::new(config.l2_cache),
            icnt_latency: config.icnt_latency,
            l2_hit_latency: config.l2_hit_latency,
            dram_latency: config.dram_latency,
            breakdown: LatencyBreakdown::default(),
        }
    }

    /// Completes a translation after `front`'s L1 probe missed: icnt hop
    /// to the owning L2 slice, port grant + lookup, a walk (with UVM
    /// first-touch faulting) on L2 miss, fills propagating back up (L2
    /// slice first, then the requesting SM's L1 — fill order matters for
    /// eviction stats), and the icnt hop back.
    pub fn translate_miss(
        &mut self,
        front: &mut PerSmFront,
        acc: &Access,
        l1_ready_at: u64,
        l1_service_cycles: u64,
    ) -> Translation {
        let hop = self.icnt.access(&acc.arriving_at(l1_ready_at));
        let l2 = self.l2_tlb.access(&acc.arriving_at(hop.ready_at));
        debug_assert_eq!(l2.ready_at, hop.ready_at + l2.latency());
        if let Some(ppn) = l2.ppn {
            front.fill(acc, ppn);
            let back = self.icnt.access(&acc.arriving_at(l2.ready_at));
            let breakdown = TranslationBreakdown {
                l1_tlb: l1_service_cycles,
                icnt: hop.service_cycles + back.service_cycles,
                l2_tlb_queue: l2.queue_cycles,
                l2_tlb_lookup: l2.service_cycles,
                ..Default::default()
            };
            self.breakdown.record(&breakdown, back.ready_at - acc.at);
            return Translation {
                ppn,
                ready_at: back.ready_at,
                level: HitLevel::L2Tlb,
                breakdown,
            };
        }

        let walk = self.walker.access(&acc.arriving_at(l2.ready_at));
        debug_assert_eq!(walk.ready_at, l2.ready_at + walk.latency());
        let ppn = walk.ppn.expect("completed walks always resolve a frame"); // simlint: allow(hot-unwrap, reason = "WalkerStage::access always returns Some per its panic contract")
        self.l2_tlb.fill(acc, ppn);
        front.fill(acc, ppn);
        let back = self.icnt.access(&acc.arriving_at(walk.ready_at));
        let breakdown = TranslationBreakdown {
            l1_tlb: l1_service_cycles,
            icnt: hop.service_cycles + back.service_cycles,
            l2_tlb_queue: l2.queue_cycles,
            l2_tlb_lookup: l2.service_cycles,
            walk: walk.queue_cycles + walk.service_cycles,
            fault: walk.fault_cycles,
        };
        self.breakdown.record(&breakdown, back.ready_at - acc.at);
        Translation {
            ppn,
            ready_at: back.ready_at,
            level: HitLevel::Walk,
            breakdown,
        }
    }

    /// The shared L2/DRAM leg of a data transaction that missed its
    /// private L1.
    pub fn data_miss(&mut self, start: u64, pa: PhysAddr, write: bool) -> u64 {
        let at_l2 = start + self.icnt_latency;
        if self.l2_data.access(pa.raw(), write) {
            at_l2 + self.l2_hit_latency + self.icnt_latency
        } else {
            at_l2 + self.l2_hit_latency + self.dram_latency + self.icnt_latency
        }
    }

    /// Applies one deferred request against this back and the issuing
    /// SM's front. `resolved` holds the results of this outbox's earlier
    /// translate requests, in push order (the engine appends each
    /// translate response before applying later requests).
    pub fn apply(
        &mut self,
        front: &mut PerSmFront,
        req: &SharedRequest,
        resolved: &[(Ppn, u64)],
    ) -> SharedResponse {
        match *req {
            SharedRequest::TranslateMiss {
                ref acc,
                l1_ready_at,
                l1_service_cycles,
            } => {
                let t = self.translate_miss(front, acc, l1_ready_at, l1_service_cycles);
                SharedResponse {
                    ppn: Some(t.ppn),
                    ready_at: t.ready_at,
                    filled_l1: true,
                }
            }
            SharedRequest::TranslateReplay { ref acc } => {
                let l1 = front.probe_translate(acc);
                match l1.ppn {
                    Some(ppn) => SharedResponse {
                        ppn: Some(ppn),
                        ready_at: l1.ready_at,
                        filled_l1: false,
                    },
                    None => {
                        let t =
                            self.translate_miss(front, acc, l1.ready_at, l1.service_cycles);
                        SharedResponse {
                            ppn: Some(t.ppn),
                            ready_at: t.ready_at,
                            filled_l1: true,
                        }
                    }
                }
            }
            SharedRequest::DataBack { start, pa, write } => SharedResponse {
                ppn: None,
                ready_at: self.data_miss(start, pa, write),
                filled_l1: false,
            },
            SharedRequest::DataReplay {
                translation,
                min_start,
                page_offset,
                write,
            } => {
                let (ppn, t_ready) = match translation {
                    TranslationRef::Resolved { ppn, ready_at } => (ppn, ready_at),
                    TranslationRef::Pending(i) => resolved[i as usize],
                };
                let start = t_ready.max(min_start);
                let page_size = self.page_size();
                let pa = PhysAddr::from_parts(ppn, page_offset, page_size);
                let done = match front.probe_data(start, pa, write) {
                    Some(done) => done,
                    None => self.data_miss(start, pa, write),
                };
                SharedResponse {
                    ppn: None,
                    ready_at: done,
                    filled_l1: false,
                }
            }
        }
    }

    /// The L2 TLB slices, in interleave order.
    pub fn l2_slices(&self) -> &[L2Slice] {
        self.l2_tlb.slices()
    }

    /// Aggregate L2 TLB counters summed over slices.
    pub fn l2_tlb_stats(&self) -> TlbStats {
        self.l2_tlb.tlb_stats()
    }

    /// Per-ASID L2 TLB counters merged over slices, sorted by ASID.
    pub fn l2_tlb_stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.l2_tlb.tlb_stats_by_asid()
    }

    /// L2 fills that bypassed their slice on exhausted MASK tokens.
    pub fn l2_token_bypasses(&self) -> u64 {
        self.l2_tlb.token_bypasses()
    }

    /// Shared L2 data-cache counters.
    pub fn l2_cache_stats(&self) -> CacheStats {
        self.l2_data.stats()
    }

    /// Walker-pool activity counters.
    pub fn walker_stats(&self) -> WalkerStats {
        self.walker.walker_stats()
    }

    /// UVM demand faults taken.
    pub fn demand_faults(&self) -> u64 {
        self.walker.demand_faults()
    }

    /// Page size of the address space being translated.
    pub fn page_size(&self) -> PageSize {
        self.walker.page_size()
    }

    /// The address space being translated (ASID 0's in a co-run).
    pub fn space(&self) -> &AddressSpace {
        self.walker.space()
    }

    /// All address spaces, indexed by ASID.
    pub fn spaces(&self) -> &[AddressSpace] {
        self.walker.spaces()
    }

    /// The back's share of the latency attribution (miss-path
    /// translations).
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.breakdown
    }

    /// Activity counters of the shared translation stages, in pipeline
    /// order (the `l1_tlb` stage lives on the fronts).
    pub fn stage_stats(&self) -> Vec<(&'static str, StageStats)> {
        vec![
            (self.icnt.name(), self.icnt.stats()),
            (self.l2_tlb.name(), self.l2_tlb.stats()),
            (self.walker.name(), self.walker.stats()),
        ]
    }

    /// Cross-checks the back's accounting: the miss-path latency
    /// attribution identity, every L2 TLB slice's counter identity, and
    /// each shared stage's resolution bound. Companion to
    /// [`PerSmFront::check_accounting`]; the sanitizer runs both at end
    /// of kernel.
    pub fn check_accounting(&self) -> Result<(), String> {
        self.breakdown.check()?;
        for (i, slice) in self.l2_slices().iter().enumerate() {
            slice
                .stats()
                .check()
                .map_err(|e| format!("L2 TLB slice {i}: {e}"))?;
        }
        for (name, s) in self.stage_stats() {
            if s.resolved > s.accesses {
                return Err(format!(
                    "stage '{name}' resolved {} of only {} accesses",
                    s.resolved, s.accesses
                ));
            }
            if name == "icnt" && s.resolved != 0 {
                return Err(format!(
                    "interconnect is a pure forwarding stage but resolved {} accesses",
                    s.resolved
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, L2Policy};
    use tlb::{SetAssocTlb, TlbConfig};
    use vmem::{VirtAddr, Vpn};

    fn config(num_sms: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_sms,
            l1_cache: CacheConfig::new(512, 2, 128),
            l2_cache: CacheConfig::new(1024, 2, 128),
            l2_tlb: TlbConfig::dac23_l2(),
            l2_tlb_slices: 1,
            l2_tlb_ports: 2,
            l2_tlb_port_occupancy: 1,
            walkers: 8,
            walk_latency: 500,
            walk_latency_per_level: 0,
            l1_hit_latency: 1,
            icnt_latency: 20,
            l2_hit_latency: 30,
            dram_latency: 200,
            demand_fault_latency: 2000,
            l2_policy: L2Policy::Shared,
        }
    }

    fn front(sm: usize) -> PerSmFront {
        PerSmFront::new(
            sm,
            Box::new(SetAssocTlb::new(TlbConfig::dac23_l1())),
            &config(1),
        )
    }

    fn acc(at: u64, vpn: u64) -> Access {
        Access {
            at,
            sm: 0,
            asid: Asid::default(),
            tb_slot: 0,
            va: Vpn::new(vpn).base_addr(PageSize::Small),
            vpn: Vpn::new(vpn),
            page_size: PageSize::Small,
        }
    }

    #[test]
    fn front_probe_miss_then_hit_after_fill() {
        let mut f = front(0);
        let a = acc(0, 7);
        let miss = f.probe_translate(&a);
        assert!(miss.ppn.is_none());
        assert_eq!(miss.ready_at, 1, "1-cycle lookup");
        f.fill(&a, Ppn::new(3));
        let hit = f.probe_translate(&a.arriving_at(10));
        assert_eq!(hit.ppn, Some(Ppn::new(3)));
        assert_eq!(hit.ready_at, 11);
        assert_eq!(f.l1_stage_stats().accesses, 2);
        assert_eq!(f.l1_stage_stats().resolved, 1);
        // Only the hit was attributed (the miss path attributes at the
        // back).
        assert_eq!(f.breakdown().translations, 1);
        assert_eq!(f.breakdown().l1_tlb_cycles, 1);
    }

    #[test]
    fn front_data_probe_hits_after_first_touch() {
        let mut f = front(0);
        let pa = PhysAddr::new(0);
        assert_eq!(f.probe_data(0, pa, false), None, "cold miss");
        assert_eq!(f.probe_data(10, pa, false), Some(11), "L1 hit, +1 cycle");
        assert_eq!(f.transactions(), 2);
        assert_eq!(f.l1_cache_stats().accesses(), 2);
    }

    #[test]
    fn back_data_miss_latencies_by_level() {
        let mut space = AddressSpace::new(PageSize::Small);
        let _ = space.allocate("b", 1 << 16).expect("fresh space");
        let mut b = SharedBack::new(&config(1), space);
        let pa = PhysAddr::new(0);
        // Cold: L2 miss -> DRAM.
        assert_eq!(b.data_miss(0, pa, false), 20 + 30 + 200 + 20);
        // L2 now holds the line.
        assert_eq!(b.data_miss(0, pa, false), 20 + 30 + 20);
    }

    #[test]
    fn translate_miss_walks_fills_and_attributes() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 20).expect("fresh space");
        let va = buf.addr_of(0);
        let mut f = front(0);
        let mut b = SharedBack::new(&config(1), space);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        let l1 = f.probe_translate(&a);
        assert!(l1.ppn.is_none());
        let t = b.translate_miss(&mut f, &a, l1.ready_at, l1.service_cycles);
        assert_eq!(t.level, HitLevel::Walk);
        assert_eq!(t.ready_at, 1 + 20 + 10 + 500 + 2000 + 20);
        assert_eq!(t.breakdown.total(), t.ready_at);
        // The fill landed in the front's L1.
        let warm = f.probe_translate(&a.arriving_at(10_000));
        assert_eq!(warm.ppn, Some(t.ppn));
        // Front holds the hit attribution, back holds the miss path;
        // together they cover both translations.
        let merged = *f.breakdown() + *b.breakdown();
        assert_eq!(merged.translations, 2);
        assert!(merged.check().is_ok());
    }

    #[test]
    fn co_run_back_keeps_address_spaces_apart() {
        // Two apps with twin layouts translate the same VA through one
        // shared back: each walks its own page table (two demand faults)
        // and the L2 TLB never serves one app the other's entry.
        let mut spaces = Vec::new();
        let mut va = None;
        for _ in 0..2 {
            let mut s = AddressSpace::new(PageSize::Small);
            let buf = s.allocate("b", 1 << 20).expect("fresh space");
            va = Some(buf.addr_of(0));
            spaces.push(s);
        }
        let va = va.expect("allocated");
        let mut b = SharedBack::new_multi(&config(1), spaces);
        let mut f = front(0);
        let mk = |asid: u16, at: u64| Access {
            va,
            vpn: va.vpn(PageSize::Small),
            asid: Asid::new(asid),
            ..acc(at, 0)
        };
        let a0 = mk(0, 0);
        let l1 = f.probe_translate(&a0);
        let t0 = b.translate_miss(&mut f, &a0, l1.ready_at, l1.service_cycles);
        let a1 = mk(1, 0);
        let l1 = f.probe_translate(&a1);
        let t1 = b.translate_miss(&mut f, &a1, l1.ready_at, l1.service_cycles);
        assert_eq!(b.demand_faults(), 2, "each app first-touches its own page");
        assert_eq!(t1.level, HitLevel::Walk, "no cross-ASID L2 hit");
        // Warm lookups resolve per-app from the tagged L1.
        assert_eq!(f.probe_translate(&mk(0, 9_000)).ppn, Some(t0.ppn));
        assert_eq!(f.probe_translate(&mk(1, 9_500)).ppn, Some(t1.ppn));
        let by = b.l2_tlb_stats_by_asid();
        assert_eq!(by.len(), 2);
        let agg = by.iter().fold(TlbStats::default(), |s, (_, t)| s + *t);
        assert_eq!(agg, b.l2_tlb_stats());
        f.check_accounting().expect("front accounting holds");
        b.check_accounting().expect("back accounting holds");
    }

    #[test]
    fn apply_replay_reproduces_the_direct_path() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 20).expect("fresh space");
        let va = buf.addr_of(0);
        let mut f = front(0);
        let mut b = SharedBack::new(&config(1), space);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        // A deferred full replay of a cold translation resolves and
        // fills exactly like probe + translate_miss would.
        let r = b.apply(&mut f, &SharedRequest::TranslateReplay { acc: a }, &[]);
        assert!(r.filled_l1);
        assert_eq!(r.ready_at, 1 + 20 + 10 + 500 + 2000 + 20);
        let ppn = r.ppn.expect("translations resolve");
        // A data replay waiting on it starts at max(ready, min_start).
        let d = b.apply(
            &mut f,
            &SharedRequest::DataReplay {
                translation: TranslationRef::Pending(0),
                min_start: 3,
                page_offset: va.page_offset(PageSize::Small),
                write: false,
            },
            &[(ppn, r.ready_at)],
        );
        assert!(d.ppn.is_none());
        assert_eq!(d.ready_at, r.ready_at + 20 + 30 + 200 + 20, "cold data line");
        // Warm replay: front hit, no fill.
        let warm = b.apply(
            &mut f,
            &SharedRequest::TranslateReplay {
                acc: a.arriving_at(10_000),
            },
            &[],
        );
        assert!(!warm.filled_l1);
        assert_eq!(warm.ready_at, 10_001);
    }

    #[test]
    fn accounting_holds_through_a_cold_walk_and_warm_hit() {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 20).expect("fresh space");
        let va = buf.addr_of(0);
        let mut f = front(0);
        let mut b = SharedBack::new(&config(1), space);
        let a = Access {
            va,
            vpn: va.vpn(PageSize::Small),
            ..acc(0, 0)
        };
        let l1 = f.probe_translate(&a);
        b.translate_miss(&mut f, &a, l1.ready_at, l1.service_cycles);
        f.probe_translate(&a.arriving_at(10_000));
        f.check_accounting().expect("front accounting holds");
        b.check_accounting().expect("back accounting holds");
    }

    #[test]
    fn front_accounting_catches_a_lost_translation() {
        let mut f = front(0);
        let a = acc(0, 7);
        f.probe_translate(&a);
        f.fill(&a, Ppn::new(3));
        f.probe_translate(&a.arriving_at(10));
        // Corrupt the coupling: pretend the hit was never attributed.
        f.breakdown = LatencyBreakdown::default();
        let e = f.check_accounting().unwrap_err();
        assert!(e.contains("attributed 0 translations"), "{e}");
    }

    #[test]
    fn routing_to_the_wrong_front_is_caught_in_debug() {
        let mut f = front(3);
        let a = acc(0, 1); // access says SM 0, front is SM 3
        let probe = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.probe_translate(&a)
        }));
        if cfg!(debug_assertions) {
            assert!(probe.is_err(), "wrong-front routing must be caught");
        } else {
            assert!(probe.is_ok());
        }
    }

    #[test]
    fn virt_addr_page_offset_helper_consistency() {
        // DataReplay reconstructs the PA from ppn + page offset; confirm
        // the offset round-trips through VirtAddr the way the engine
        // computes it.
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.page_offset(PageSize::Small), 0x234);
    }
}
