//! The uniform stage interface: `Access` in, `Outcome` out.
//!
//! Every level of the translation path — the per-SM L1 TLB, the
//! interconnect hop, the sliced L2 TLB, the walker pool — implements
//! [`Stage`]. An [`Outcome`] carries the stage's *own* latency
//! contribution split into queueing / service / fault cycles, so the
//! hierarchy can attribute every cycle of a translation to exactly one
//! level (the invariant checked by
//! [`LatencyBreakdown`](crate::LatencyBreakdown)).

use vmem::{Asid, PageSize, Ppn, VirtAddr, Vpn};

/// One translation request traversing the hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the request enters the stage.
    pub at: u64,
    /// Issuing SM.
    pub sm: usize,
    /// Address space (co-running application) issuing the request; every
    /// TLB stage includes it in the tag compare and the walker stage
    /// selects the matching page table.
    pub asid: Asid,
    /// Hardware TB slot of the requesting thread block (the paper's
    /// TB id used by the partitioned L1 TLB).
    pub tb_slot: u8,
    /// Line virtual address (the walker resolves it against the page
    /// table; TLB stages only need the page).
    pub va: VirtAddr,
    /// Virtual page being translated.
    pub vpn: Vpn,
    /// Page size of the mapping.
    pub page_size: PageSize,
}

impl Access {
    /// The same request arriving at a downstream stage at `at`.
    pub fn arriving_at(&self, at: u64) -> Access {
        Access { at, ..*self }
    }
}

/// What a stage did with an access.
///
/// `ready_at` must equal `at + queue_cycles + service_cycles +
/// fault_cycles` — the hierarchy debug-asserts it, which is what makes
/// the per-level breakdown sum to the end-to-end latency by
/// construction rather than by bookkeeping luck.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Frame the stage resolved, if it terminated the translation
    /// (TLB hit, completed walk). `None` means "forward downstream".
    pub ppn: Option<Ppn>,
    /// Cycle at which the stage's result is available.
    pub ready_at: u64,
    /// Cycles spent waiting for a stage resource (L2 TLB port, free
    /// walker).
    pub queue_cycles: u64,
    /// Cycles spent in service (lookup, hop, walk).
    pub service_cycles: u64,
    /// Cycles added by a UVM demand fault (walker stage only).
    pub fault_cycles: u64,
}

impl Outcome {
    /// Total cycles this stage added to the translation.
    pub fn latency(&self) -> u64 {
        self.queue_cycles + self.service_cycles + self.fault_cycles
    }
}

/// Aggregate activity counters every stage maintains.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Accesses that entered the stage.
    pub accesses: u64,
    /// Accesses the stage resolved itself (TLB hits, walks); pure
    /// forwarding stages such as the interconnect leave this 0.
    pub resolved: u64,
    /// Total cycles accesses spent queueing at this stage.
    pub queue_cycles: u64,
    /// Total cycles accesses spent in service at this stage.
    pub service_cycles: u64,
}

impl StageStats {
    /// Folds one outcome into the counters.
    pub fn record(&mut self, out: &Outcome) {
        self.accesses += 1;
        if out.ppn.is_some() {
            self.resolved += 1;
        }
        self.queue_cycles += out.queue_cycles;
        self.service_cycles += out.service_cycles;
    }

    /// Component-wise sum: merges per-SM accumulators (the parallel
    /// engine keeps one per front) into the stage total. Pure u64
    /// addition, so the merge is order-independent.
    pub fn merged(self, other: StageStats) -> StageStats {
        StageStats {
            accesses: self.accesses + other.accesses,
            resolved: self.resolved + other.resolved,
            queue_cycles: self.queue_cycles + other.queue_cycles,
            service_cycles: self.service_cycles + other.service_cycles,
        }
    }
}

/// A level of the memory hierarchy with uniform access semantics.
///
/// Implementations are free to keep arbitrary internal state (TLB
/// arrays, port schedules, walker occupancy); the composition layer
/// ([`Hierarchy`](crate::Hierarchy)) only sees requests in and timed
/// outcomes out, which is what lets MASK- or Mosaic-style variants
/// replace a single level without rewiring the engine.
pub trait Stage {
    /// Short stable name for reports and debugging.
    fn name(&self) -> &'static str;
    /// Processes one access, advancing internal state.
    fn access(&mut self, acc: &Access) -> Outcome;
    /// Cumulative activity counters.
    fn stats(&self) -> StageStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_latency_sums_components() {
        let o = Outcome {
            ppn: None,
            ready_at: 130,
            queue_cycles: 10,
            service_cycles: 20,
            fault_cycles: 0,
        };
        assert_eq!(o.latency(), 30);
    }

    #[test]
    fn stage_stats_record_counts_resolution() {
        let mut s = StageStats::default();
        s.record(&Outcome {
            ppn: Some(Ppn::new(1)),
            ready_at: 5,
            queue_cycles: 2,
            service_cycles: 3,
            fault_cycles: 0,
        });
        s.record(&Outcome {
            ppn: None,
            ready_at: 1,
            queue_cycles: 0,
            service_cycles: 1,
            fault_cycles: 0,
        });
        assert_eq!(s.accesses, 2);
        assert_eq!(s.resolved, 1);
        assert_eq!(s.queue_cycles, 2);
        assert_eq!(s.service_cycles, 4);
    }

    #[test]
    fn merged_is_a_componentwise_sum() {
        let a = StageStats {
            accesses: 3,
            resolved: 1,
            queue_cycles: 4,
            service_cycles: 9,
        };
        let b = StageStats {
            accesses: 2,
            resolved: 2,
            queue_cycles: 0,
            service_cycles: 5,
        };
        assert_eq!(a.merged(b), b.merged(a), "order-independent");
        assert_eq!(a.merged(b).accesses, 5);
        assert_eq!(a.merged(b).service_cycles, 14);
        assert_eq!(a.merged(StageStats::default()), a);
    }

    #[test]
    fn arriving_at_rewrites_only_the_cycle() {
        let a = Access {
            at: 10,
            sm: 3,
            asid: Asid::new(1),
            tb_slot: 2,
            va: VirtAddr::new(0x1000),
            vpn: Vpn::new(1),
            page_size: PageSize::Small,
        };
        let b = a.arriving_at(99);
        assert_eq!(b.at, 99);
        assert_eq!(b.sm, 3);
        assert_eq!(b.asid, Asid::new(1));
        assert_eq!(b.vpn, a.vpn);
    }
}
