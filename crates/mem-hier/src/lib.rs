//! # mem-hier — composable GPU memory-hierarchy stages with per-level
//! latency attribution
//!
//! This crate factors the translation and data paths of the DAC'23
//! reproduction (*Orchestrated Scheduling and Partitioning for Improved
//! Address Translation in GPUs*) out of the timing engine into explicit,
//! individually replaceable stages:
//!
//! * [`Stage`] — the uniform interface: an [`Access`] in, an [`Outcome`]
//!   out, each outcome carrying its own queue/service/fault latency
//!   contribution and every stage keeping [`StageStats`].
//! * [`PerSmFront`] / [`SharedBack`] — the private/shared split of the
//!   paper's Figure 1 pipeline. Each front owns one SM's L1 TLB and
//!   VIPT L1 data cache (steppable on a worker thread); the back owns
//!   the order-sensitive shared stages — [`IcntLink`], [`L2TlbStage`]
//!   (with reusable [`Ports`] arbitration), [`WalkerStage`], and the
//!   L2/DRAM data path — applied in deterministic SM order via
//!   [`SharedRequest`]s.
//! * [`HierarchyBuilder`] — config-driven composition into the split
//!   halves ([`HierarchyBuilder::build_split`]) or the fused serial
//!   [`Hierarchy`] façade.
//! * [`LatencyBreakdown`] — per-level attribution (L1 TLB / icnt / L2
//!   TLB queueing / L2 TLB lookup / walk / fault) whose stage sums are
//!   cross-checked against independently accumulated end-to-end
//!   translation latency; fronts and back each hold their share, merged
//!   by order-independent counter sums.
//!
//! # Example
//!
//! ```
//! use mem_hier::{Access, HierarchyBuilder, HierarchyConfig, CacheConfig};
//! use tlb::{SetAssocTlb, TlbConfig, TranslationBuffer};
//! use vmem::{AddressSpace, PageSize};
//!
//! let mut space = AddressSpace::new(PageSize::Small);
//! let buf = space.allocate("data", 1 << 20).unwrap();
//! let config = HierarchyConfig {
//!     num_sms: 1,
//!     l1_cache: CacheConfig::new(16 * 1024, 4, 128),
//!     l2_cache: CacheConfig::new(1536 * 1024, 8, 128),
//!     l2_tlb: TlbConfig::dac23_l2(),
//!     l2_tlb_slices: 1,
//!     l2_tlb_ports: 2,
//!     l2_tlb_port_occupancy: 1,
//!     walkers: 8,
//!     walk_latency: 500,
//!     walk_latency_per_level: 0,
//!     l1_hit_latency: 1,
//!     icnt_latency: 20,
//!     l2_hit_latency: 30,
//!     dram_latency: 200,
//!     demand_fault_latency: 2000,
//!     l2_policy: mem_hier::L2Policy::Shared,
//! };
//! let l1s: Vec<Box<dyn TranslationBuffer>> =
//!     vec![Box::new(SetAssocTlb::new(TlbConfig::dac23_l1()))];
//! let mut hier = HierarchyBuilder::new(config).build(space, l1s);
//!
//! let va = buf.addr_of(0);
//! let t = hier.translate(&Access {
//!     at: 0,
//!     sm: 0,
//!     asid: vmem::Asid::default(),
//!     tb_slot: 0,
//!     va,
//!     vpn: va.vpn(PageSize::Small),
//!     page_size: PageSize::Small,
//! });
//! // Cold miss: walk + first-touch fault, every cycle attributed.
//! assert_eq!(t.breakdown.total(), t.ready_at);
//! assert!(hier.breakdown().check().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod cache;
mod drain;
mod config;
mod hierarchy;
mod ports;
mod split;
mod stage;
mod stages;

pub use breakdown::{LatencyBreakdown, TranslationBreakdown};
pub use drain::{drain_sharded, DrainExec, DrainLane, SerialExec};
pub use cache::{Cache, CacheStats};
pub use config::{CacheConfig, HierarchyConfig, L2Policy};
pub use hierarchy::{Hierarchy, HierarchyBuilder, HitLevel, Translation};
pub use ports::Ports;
pub use split::{PerSmFront, SharedBack, SharedRequest, SharedResponse, TranslationRef};
pub use stage::{Access, Outcome, Stage, StageStats};
pub use stages::{IcntLink, L2Slice, L2TlbStage, SliceKind, WalkerStage};
