//! Reusable port arbitration for shared stages.

/// A bank of identical ports, each busy for `occupancy` cycles per
/// granted request; a request at cycle `t` is granted on the
/// earliest-free port, no earlier than `t`.
///
/// This models the L2 TLB's lookup ports (Table III gives each slice 2):
/// when L1 TLB miss floods from all 16 SMs converge on one slice, the
/// grant queue is what turns poor L1 hit rates into execution-time loss.
///
/// # Example
///
/// ```
/// use mem_hier::Ports;
///
/// let mut p = Ports::new(1, 1);
/// assert_eq!(p.acquire(10), 10); // free port: immediate grant
/// assert_eq!(p.acquire(10), 11); // port busy for 1 cycle: queued
/// assert_eq!(p.waited_cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ports {
    /// Next-free cycle per port.
    free_at: Vec<u64>,
    occupancy: u64,
    waited: u64,
}

impl Ports {
    /// Creates `ports` ports (clamped to at least one), each held for
    /// `occupancy` cycles per grant (clamped to at least one so the bank
    /// always has finite throughput).
    pub fn new(ports: usize, occupancy: u64) -> Self {
        Ports {
            free_at: vec![0; ports.max(1)],
            occupancy: occupancy.max(1),
            waited: 0,
        }
    }

    /// Grants the earliest-free port at or after `at`; returns the grant
    /// cycle and holds the port for the configured occupancy.
    pub fn acquire(&mut self, at: u64) -> u64 {
        let slot = self
            .free_at
            .iter_mut()
            .min()
            .expect("port banks are sized max(1) at construction"); // simlint: allow(hot-unwrap, reason = "port banks are sized max(1) at construction")
        let grant = at.max(*slot);
        *slot = grant + self.occupancy;
        self.waited += grant - at;
        grant
    }

    /// Number of ports in the bank.
    pub fn ports(&self) -> usize {
        self.free_at.len()
    }

    /// Cycles a grant holds a port.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Total cycles requests waited for a grant.
    pub fn waited_cycles(&self) -> u64 {
        self.waited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_ports_grant_same_cycle() {
        let mut p = Ports::new(2, 1);
        assert_eq!(p.acquire(5), 5);
        assert_eq!(p.acquire(5), 5);
        assert_eq!(p.acquire(5), 6, "third request queues");
        assert_eq!(p.waited_cycles(), 1);
    }

    #[test]
    fn occupancy_holds_the_port_longer() {
        let mut p = Ports::new(1, 10);
        assert_eq!(p.acquire(0), 0);
        assert_eq!(p.acquire(0), 10);
        assert_eq!(p.acquire(0), 20);
        assert_eq!(p.waited_cycles(), 30);
    }

    #[test]
    fn idle_ports_never_delay() {
        let mut p = Ports::new(2, 4);
        assert_eq!(p.acquire(0), 0);
        // Long idle gap: the port freed long ago.
        assert_eq!(p.acquire(1000), 1000);
        assert_eq!(p.waited_cycles(), 0);
    }

    #[test]
    fn zero_geometry_clamps_to_usable() {
        let mut p = Ports::new(0, 0);
        assert_eq!(p.ports(), 1);
        assert_eq!(p.occupancy(), 1);
        assert_eq!(p.acquire(0), 0);
        assert_eq!(p.acquire(0), 1);
    }
}
