//! Physically-tagged set-associative data caches (L1 per-SM, shared L2).

use crate::config::CacheConfig;
use std::fmt;

/// Hit/miss counters for a data cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Evicted lines that were dirty (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0.0` with no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.1}% hit",
            self.accesses(),
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Line {
    valid: bool,
    tag: u64,
    stamp: u64,
    dirty: bool,
}

/// An LRU set-associative cache over physical line addresses.
///
/// The simulator tracks only line identities (no data), which is all the
/// timing model needs.
///
/// # Example
///
/// ```
/// use mem_hier::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 128));
/// assert!(!c.access(0x0, false)); // cold miss (fills)
/// assert!(c.access(0x0, false)); // now hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    /// `(line_shift, set_mask)` when both the line size and the set
    /// count are powers of two, letting the per-access address split run
    /// on shifts and masks instead of 64-bit divisions. Yields exactly
    /// the `(set, tag)` pair of the div/mod path (`None` = non-pow2
    /// geometry, e.g. a 12-slice L2, which takes `set_magic` below).
    pow2: Option<(u32, u32)>,
    /// `floor(2^64 / sets)` for the multiply-high division on non-pow2
    /// set counts (unused — zero — when `pow2` is `Some` or `sets == 1`).
    set_magic: u64,
}

/// Exact `(n / d, n % d)` via one widening multiply instead of hardware
/// division, with `magic = floor(2^64 / d)` and `d >= 2`.
///
/// `n * magic / 2^64 = n/d - n*(2^64 mod d)/(d * 2^64)`, and the error
/// term is below `n / 2^64 < 1`, so the estimate is `floor(n/d)` or one
/// less — a single conditional fix-up restores exactness for every
/// `n < 2^64`.
fn divmod_by_magic(n: u64, d: u64, magic: u64) -> (u64, u64) {
    debug_assert!(d >= 2 && magic == u64::MAX / d);
    let mut q = ((n as u128 * magic as u128) >> 64) as u64;
    let mut r = n - q * d;
    if r >= d {
        q += 1;
        r -= d;
    }
    debug_assert!((q, r) == (n / d, n % d));
    (q, r)
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let pow2 = (config.line_bytes.is_power_of_two() && config.sets().is_power_of_two())
            .then(|| (config.line_bytes.trailing_zeros(), config.sets().trailing_zeros()));
        let sets = config.sets() as u64;
        let set_magic = if pow2.is_none() && sets >= 2 {
            u64::MAX / sets
        } else {
            0
        };
        Cache {
            lines: vec![Line::default(); config.lines()],
            config,
            clock: 0,
            stats: CacheStats::default(),
            pow2,
            set_magic,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the line containing physical address `pa`; returns `true`
    /// on hit. Misses allocate (write-allocate for stores).
    pub fn access(&mut self, pa: u64, write: bool) -> bool {
        self.clock += 1;
        let (set, tag) = match self.pow2 {
            Some((line_shift, set_bits)) => {
                let line_addr = pa >> line_shift;
                // Mask in u64 before narrowing, as below.
                let set = (line_addr & ((1u64 << set_bits) - 1)) as usize; // simlint: allow(lossy-cast, reason = "mask in u64 precedes the narrowing")
                (set, line_addr >> set_bits)
            }
            None => {
                let line_addr = if self.config.line_bytes.is_power_of_two() {
                    pa >> self.config.line_bytes.trailing_zeros()
                } else {
                    pa / self.config.line_bytes as u64
                };
                let sets = self.config.sets() as u64;
                if sets >= 2 {
                    let (tag, set) = divmod_by_magic(line_addr, sets, self.set_magic);
                    // The remainder sits below the set count, so the
                    // narrowing is exact.
                    (set as usize, tag)
                } else {
                    (0, line_addr)
                }
            }
        };
        let a = self.config.associativity;
        let range = set * a..(set + 1) * a;
        let clock = self.clock;
        for line in &mut self.lines[range.clone()] {
            if line.valid && line.tag == tag {
                line.stamp = clock;
                line.dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Fill, evicting LRU.
        let victim = self.lines[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.stamp))
            .map(|(i, _)| i)
            .expect("associativity is non-zero");
        let line = &mut self.lines[range.start + victim];
        if line.valid {
            self.stats.evictions += 1;
            if line.dirty {
                self.stats.writebacks += 1;
            }
        }
        *line = Line {
            valid: true,
            tag,
            stamp: clock,
            dirty: write,
        };
        false
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways, 128B lines.
        Cache::new(CacheConfig::new(512, 2, 128))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false));
        assert!(c.access(64, false), "same line");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (line_addr % 2 == 0).
        c.access(0, false);
        c.access(2 * 128, false);
        c.access(0, false); // refresh line 0
        c.access(4 * 128, false); // evicts line 2
        assert!(c.access(0, false));
        assert!(c.access(4 * 128, false));
        assert!(!c.access(2 * 128, false));
    }

    #[test]
    fn sets_are_disjoint() {
        let mut c = small();
        c.access(0, false); // set 0
        c.access(128, false); // set 1
        assert_eq!(c.occupancy(), 2);
        assert!(c.access(0, false));
        assert!(c.access(128, false));
    }

    #[test]
    fn flush_and_reset() {
        let mut c = small();
        c.access(0, true);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn dirty_evictions_count_writebacks() {
        let mut c = small();
        // Fill set 0 (2 ways) with one dirty and one clean line.
        c.access(0, true); // dirty
        c.access(2 * 128, false); // clean
        // Two more fills evict both.
        c.access(4 * 128, false);
        c.access(6 * 128, false);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn non_pow2_sets_exercise_reciprocal_split() {
        // The dac23 L2 geometry: 1536 sets takes the multiply-high
        // fallback, whose debug assert cross-checks every split against
        // plain div/mod. Hammer it with well-spread addresses.
        let mut c = Cache::new(CacheConfig::new(1536 * 1024, 8, 128));
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            c.access(x >> 16, x & 1 == 1);
        }
        assert_eq!(c.stats().accesses(), 4096);
        c.access(0xdead_beef_0000, false);
        assert!(c.access(0xdead_beef_0000 + 64, false), "same 128B line");
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
