//! Physically-tagged set-associative data caches (L1 per-SM, shared L2).

use crate::config::CacheConfig;
use std::fmt;

/// Hit/miss counters for a data cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Evicted lines that were dirty (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0.0` with no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.1}% hit",
            self.accesses(),
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Line {
    valid: bool,
    tag: u64,
    stamp: u64,
    dirty: bool,
}

/// An LRU set-associative cache over physical line addresses.
///
/// The simulator tracks only line identities (no data), which is all the
/// timing model needs.
///
/// # Example
///
/// ```
/// use mem_hier::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 128));
/// assert!(!c.access(0x0, false)); // cold miss (fills)
/// assert!(c.access(0x0, false)); // now hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            lines: vec![Line::default(); config.lines()],
            config,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the line containing physical address `pa`; returns `true`
    /// on hit. Misses allocate (write-allocate for stores).
    pub fn access(&mut self, pa: u64, write: bool) -> bool {
        self.clock += 1;
        let line_addr = pa / self.config.line_bytes as u64;
        let sets = self.config.sets() as u64;
        let set = (line_addr % sets) as usize; // simlint: allow(lossy-cast, reason = "modulo in u64 precedes the narrowing")
        let tag = line_addr / sets;
        let a = self.config.associativity;
        let range = set * a..(set + 1) * a;
        let clock = self.clock;
        for line in &mut self.lines[range.clone()] {
            if line.valid && line.tag == tag {
                line.stamp = clock;
                line.dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Fill, evicting LRU.
        let victim = self.lines[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.stamp))
            .map(|(i, _)| i)
            .expect("associativity is non-zero");
        let line = &mut self.lines[range.start + victim];
        if line.valid {
            self.stats.evictions += 1;
            if line.dirty {
                self.stats.writebacks += 1;
            }
        }
        *line = Line {
            valid: true,
            tag,
            stamp: clock,
            dirty: write,
        };
        false
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways, 128B lines.
        Cache::new(CacheConfig::new(512, 2, 128))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false));
        assert!(c.access(64, false), "same line");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (line_addr % 2 == 0).
        c.access(0, false);
        c.access(2 * 128, false);
        c.access(0, false); // refresh line 0
        c.access(4 * 128, false); // evicts line 2
        assert!(c.access(0, false));
        assert!(c.access(4 * 128, false));
        assert!(!c.access(2 * 128, false));
    }

    #[test]
    fn sets_are_disjoint() {
        let mut c = small();
        c.access(0, false); // set 0
        c.access(128, false); // set 1
        assert_eq!(c.occupancy(), 2);
        assert!(c.access(0, false));
        assert!(c.access(128, false));
    }

    #[test]
    fn flush_and_reset() {
        let mut c = small();
        c.access(0, true);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn dirty_evictions_count_writebacks() {
        let mut c = small();
        // Fill set 0 (2 ways) with one dirty and one clean line.
        c.access(0, true); // dirty
        c.access(2 * 128, false); // clean
        // Two more fills evict both.
        c.access(4 * 128, false);
        c.access(6 * 128, false);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
