//! Geometry and timing configuration for the memory hierarchy.

use tlb::TlbConfig;

/// Geometry of a data cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` divides evenly into whole sets of
    /// `associativity` lines. (Set counts need not be powers of two: the
    /// cache indexes by modulo, matching a sliced L2 whose 12 partitions
    /// each hold a power-of-two number of sets.)
    pub fn new(bytes: usize, associativity: usize, line_bytes: usize) -> Self {
        assert!(bytes > 0 && associativity > 0 && line_bytes > 0);
        let lines = bytes / line_bytes;
        assert!(lines.is_multiple_of(associativity), "lines must fill whole sets");
        CacheConfig {
            bytes,
            associativity,
            line_bytes,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.associativity
    }
}

/// Multi-tenant organization of the shared L2 TLB when applications
/// co-run (DESIGN.md §6b). With a single resident app every variant
/// behaves like [`L2Policy::Shared`] in the limit; the variants matter
/// under cross-ASID contention.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum L2Policy {
    /// Baseline: one ASID-tagged set-associative structure per slice,
    /// apps compete freely for every way.
    #[default]
    Shared,
    /// MASK-style L2 TLB-fill tokens: an app holding `quota` or more
    /// resident entries in a slice has exhausted its tokens there, and
    /// further fills *bypass* the slice (the translation still resolves,
    /// it just isn't cached), protecting co-runners from fill floods.
    MaskTokens {
        /// Resident-entry budget per app per slice.
        quota: usize,
    },
    /// MIG-style sub-entry sharing: ways are tagged by VPN alone and hold
    /// `subs` per-ASID sub-entries, so co-runners mapping the same pages
    /// share tag space without seeing each other's frames.
    SubEntry {
        /// Sub-entries per shared tag.
        subs: usize,
    },
}

/// Everything [`HierarchyBuilder`](crate::HierarchyBuilder) needs to
/// assemble the baseline translation + data pipeline of the paper's
/// Figure 1. The engine derives this from its own `GpuConfig`; variant
/// hierarchies (MASK-style TLB-aware caches, Mosaic-style multi-page-size
/// levels) reuse the same fields and swap stages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of SMs (one private L1 TLB and L1 data cache each).
    pub num_sms: usize,
    /// Per-SM private L1 data cache.
    pub l1_cache: CacheConfig,
    /// Shared L2 data cache.
    pub l2_cache: CacheConfig,
    /// Shared L2 TLB geometry (divided evenly over the slices).
    pub l2_tlb: TlbConfig,
    /// VPN-interleaved L2 TLB slices (1 = monolithic).
    pub l2_tlb_slices: usize,
    /// Lookup ports per L2 TLB slice.
    pub l2_tlb_ports: usize,
    /// Cycles a granted lookup holds an L2 TLB port.
    pub l2_tlb_port_occupancy: u64,
    /// Shared page-table walkers.
    pub walkers: usize,
    /// Base page-table-walk latency in cycles.
    pub walk_latency: u64,
    /// Additional walk cycles per radix level touched (0 = flat walks).
    pub walk_latency_per_level: u64,
    /// L1 data-cache hit latency.
    pub l1_hit_latency: u64,
    /// One-way SM-to-partition interconnect latency.
    pub icnt_latency: u64,
    /// L2 data-cache access latency.
    pub l2_hit_latency: u64,
    /// DRAM access latency beyond L2.
    pub dram_latency: u64,
    /// One-time UVM first-touch (demand-paging) penalty per page.
    pub demand_fault_latency: u64,
    /// Multi-tenant organization of the shared L2 TLB.
    pub l2_policy: L2Policy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::new(16 * 1024, 4, 128);
        assert_eq!(c.lines(), 128);
        assert_eq!(c.sets(), 32);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn bad_cache_geometry_rejected() {
        let _ = CacheConfig::new(129 * 3, 2, 129 /* 3 lines, assoc 2 */);
    }

    #[test]
    fn l2_policy_defaults_to_shared() {
        assert_eq!(L2Policy::default(), L2Policy::Shared);
        // The variants carry their own knobs and compare structurally.
        assert_ne!(
            L2Policy::MaskTokens { quota: 8 },
            L2Policy::MaskTokens { quota: 9 }
        );
        assert_ne!(L2Policy::SubEntry { subs: 2 }, L2Policy::Shared);
    }

    #[test]
    fn l2_slice_geometry_is_non_pow2_sets() {
        let c = CacheConfig::new(1536 * 1024, 8, 128);
        assert_eq!(c.sets(), 1536);
    }
}
