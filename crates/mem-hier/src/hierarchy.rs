//! Composition of the split pipeline ([`PerSmFront`]s + [`SharedBack`])
//! behind the serial `translate`/`data_access` façade.

use crate::breakdown::{LatencyBreakdown, TranslationBreakdown};
use crate::config::HierarchyConfig;
use crate::split::{PerSmFront, SharedBack};
use crate::stage::{Access, StageStats};
use crate::stages::L2Slice;
use tlb::{TlbStats, TranslationBuffer};
use vmem::{AddressSpace, Asid, PageSize, PhysAddr, Ppn, WalkerStats};

/// The hierarchy level that resolved a translation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Resolved by the SM's private L1 TLB (no fill happened).
    L1Tlb,
    /// Resolved by the shared L2 TLB (the L1 was filled).
    L2Tlb,
    /// Resolved by a page-table walk (L2 and L1 were filled).
    Walk,
}

/// The result of one translation through the hierarchy.
#[derive(Copy, Clone, Debug)]
pub struct Translation {
    /// Resolved physical frame.
    pub ppn: Ppn,
    /// Cycle at which the PPN is available back at the SM.
    pub ready_at: u64,
    /// Which level resolved it.
    pub level: HitLevel,
    /// Where the cycles went.
    pub breakdown: TranslationBreakdown,
}

/// The composed memory hierarchy: the translation path (L1 TLB ->
/// icnt -> L2 TLB -> walkers) and the data path (VIPT L1 -> L2 ->
/// DRAM), with per-level latency attribution for every translation.
///
/// Internally this is the [`PerSmFront`]/[`SharedBack`] split the
/// SM-parallel engine works with directly (via
/// [`HierarchyBuilder::build_split`]); this façade fuses the two halves
/// back into the serial call shape for tests and single-threaded
/// callers. Both paths run the identical stage code, which is half of
/// the byte-identical-output argument.
///
/// Stage timing contract: each stage's outcome satisfies
/// `ready_at == access.at + queue + service + fault` (debug-asserted
/// along the path), so chaining stages makes the end-to-end latency
/// equal the sum of per-stage contributions by construction — the
/// identity [`LatencyBreakdown::check`] verifies against an
/// independently accumulated end-to-end count.
pub struct Hierarchy {
    fronts: Vec<PerSmFront>,
    back: SharedBack,
}

impl Hierarchy {
    /// Reassembles a façade from split halves (the inverse of
    /// [`Hierarchy::into_split`]).
    pub fn from_split(fronts: Vec<PerSmFront>, back: SharedBack) -> Self {
        Hierarchy { fronts, back }
    }

    /// Tears the façade into its phase-A/phase-B halves.
    pub fn into_split(self) -> (Vec<PerSmFront>, SharedBack) {
        (self.fronts, self.back)
    }

    /// Translates one page access; returns the frame, the cycle it is
    /// available, and the per-level attribution. Exactly reproduces the
    /// paper's Figure 1 path: L1 TLB, then (on miss) the interconnect to
    /// the VPN-owning L2 slice, a port grant, the L2 lookup, and (on
    /// miss) a page-table walk with UVM first-touch faulting, with fills
    /// propagating back up.
    pub fn translate(&mut self, acc: &Access) -> Translation {
        let front = &mut self.fronts[acc.sm];
        let l1 = front.probe_translate(acc);
        if let Some(ppn) = l1.ppn {
            return Translation {
                ppn,
                ready_at: l1.ready_at,
                level: HitLevel::L1Tlb,
                breakdown: TranslationBreakdown {
                    l1_tlb: l1.service_cycles,
                    ..Default::default()
                },
            };
        }
        self.back
            .translate_miss(front, acc, l1.ready_at, l1.service_cycles)
    }

    /// One coalesced line transaction through the data path.
    pub fn data_access(&mut self, start: u64, sm: usize, pa: PhysAddr, write: bool) -> u64 {
        match self.fronts[sm].probe_data(start, pa, write) {
            Some(done) => done,
            None => self.back.data_miss(start, pa, write),
        }
    }

    /// The per-SM fronts, in SM index order.
    pub fn fronts(&self) -> &[PerSmFront] {
        &self.fronts
    }

    /// Mutable access to the per-SM fronts (kernel-launch flush,
    /// TB-slot retirement).
    pub fn fronts_mut(&mut self) -> &mut [PerSmFront] {
        &mut self.fronts
    }

    /// One SM's private L1 TLB.
    pub fn l1_tlb(&self, sm: usize) -> &dyn TranslationBuffer {
        self.fronts[sm].tlb()
    }

    /// The shared back half.
    pub fn back(&self) -> &SharedBack {
        &self.back
    }

    /// The L2 TLB slices, in interleave order.
    pub fn l2_slices(&self) -> &[L2Slice] {
        self.back.l2_slices()
    }

    /// Aggregate L2 TLB counters summed over slices.
    pub fn l2_tlb_stats(&self) -> TlbStats {
        self.back.l2_tlb_stats()
    }

    /// Per-ASID L2 TLB counters merged over slices, sorted by ASID.
    pub fn l2_tlb_stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.back.l2_tlb_stats_by_asid()
    }

    /// Per-SM L1 data-cache counters.
    pub fn l1_cache_stats(&self) -> Vec<crate::CacheStats> {
        self.fronts.iter().map(PerSmFront::l1_cache_stats).collect()
    }

    /// Shared L2 data-cache counters.
    pub fn l2_cache_stats(&self) -> crate::CacheStats {
        self.back.l2_cache_stats()
    }

    /// Walker-pool activity counters.
    pub fn walker_stats(&self) -> WalkerStats {
        self.back.walker_stats()
    }

    /// UVM demand faults taken.
    pub fn demand_faults(&self) -> u64 {
        self.back.demand_faults()
    }

    /// Coalesced line transactions issued on the data path.
    pub fn transactions(&self) -> u64 {
        self.fronts.iter().map(PerSmFront::transactions).sum()
    }

    /// Page size of the address space being translated.
    pub fn page_size(&self) -> PageSize {
        self.back.page_size()
    }

    /// The address space being translated.
    pub fn space(&self) -> &AddressSpace {
        self.back.space()
    }

    /// Aggregate per-level latency attribution over every translation so
    /// far: the fronts' L1-hit share merged with the back's miss-path
    /// share (an order-independent counter sum).
    pub fn breakdown(&self) -> LatencyBreakdown {
        self.fronts
            .iter()
            .fold(*self.back.breakdown(), |acc, f| acc + *f.breakdown())
    }

    /// Activity counters per translation stage, in pipeline order. The
    /// `l1_tlb` entry is the fronts' per-SM stage stats merged.
    pub fn stage_stats(&self) -> Vec<(&'static str, StageStats)> {
        let l1 = self
            .fronts
            .iter()
            .fold(StageStats::default(), |acc, f| acc.merged(f.l1_stage_stats()));
        let mut stats = vec![("l1_tlb", l1)];
        stats.extend(self.back.stage_stats());
        stats
    }
}

/// Config-driven constructor for the baseline [`Hierarchy`] and its
/// split halves.
///
/// Variant hierarchies (a MASK-style TLB-aware L2, a Mosaic-style
/// multi-page-size level) are built by swapping one stage here; the
/// engine and every other stage are untouched. See DESIGN.md, "The
/// mem-hier stage model".
pub struct HierarchyBuilder {
    config: HierarchyConfig,
}

impl HierarchyBuilder {
    /// Starts a builder from the hierarchy geometry and latencies.
    pub fn new(config: HierarchyConfig) -> Self {
        HierarchyBuilder { config }
    }

    /// Assembles the pipeline as its phase-A/phase-B halves around a
    /// workload's address space and externally built per-SM L1 TLBs (one
    /// per SM — the engine's pluggable-organization hook).
    ///
    /// # Panics
    ///
    /// Panics if `l1_tlbs.len()` differs from the configured SM count.
    pub fn build_split(
        self,
        space: AddressSpace,
        l1_tlbs: Vec<Box<dyn TranslationBuffer>>,
    ) -> (Vec<PerSmFront>, SharedBack) {
        self.build_split_multi(vec![space], l1_tlbs)
    }

    /// [`HierarchyBuilder::build_split`] for co-runs: one address space
    /// per application, ASID `i` owning `spaces[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `l1_tlbs.len()` differs from the configured SM count, or
    /// if `spaces` is empty / mixes page sizes.
    pub fn build_split_multi(
        self,
        spaces: Vec<AddressSpace>,
        l1_tlbs: Vec<Box<dyn TranslationBuffer>>,
    ) -> (Vec<PerSmFront>, SharedBack) {
        assert_eq!(
            l1_tlbs.len(),
            self.config.num_sms,
            "one L1 TLB per SM required"
        );
        let fronts = l1_tlbs
            .into_iter()
            .enumerate()
            .map(|(sm, tlb)| PerSmFront::new(sm, tlb, &self.config))
            .collect();
        let back = SharedBack::new_multi(&self.config, spaces);
        (fronts, back)
    }

    /// [`HierarchyBuilder::build_split`] fused back into the serial
    /// façade.
    ///
    /// # Panics
    ///
    /// Panics if `l1_tlbs.len()` differs from the configured SM count.
    pub fn build(self, space: AddressSpace, l1_tlbs: Vec<Box<dyn TranslationBuffer>>) -> Hierarchy {
        let (fronts, back) = self.build_split(space, l1_tlbs);
        Hierarchy::from_split(fronts, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, L2Policy};
    use tlb::TlbConfig;
    use vmem::VirtAddr;

    fn test_config(num_sms: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_sms,
            l1_cache: CacheConfig::new(16 * 1024, 4, 128),
            l2_cache: CacheConfig::new(1536 * 1024, 8, 128),
            l2_tlb: TlbConfig::dac23_l2(),
            l2_tlb_slices: 1,
            l2_tlb_ports: 2,
            l2_tlb_port_occupancy: 1,
            walkers: 8,
            walk_latency: 500,
            walk_latency_per_level: 0,
            l1_hit_latency: 1,
            icnt_latency: 20,
            l2_hit_latency: 30,
            dram_latency: 200,
            demand_fault_latency: 2000,
            l2_policy: L2Policy::Shared,
        }
    }

    fn build(num_sms: usize) -> (Hierarchy, VirtAddr) {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 20).expect("fresh space");
        let va = buf.addr_of(0);
        let tlbs: Vec<Box<dyn TranslationBuffer>> = (0..num_sms)
            .map(|_| {
                Box::new(tlb::SetAssocTlb::new(TlbConfig::dac23_l1()))
                    as Box<dyn TranslationBuffer>
            })
            .collect();
        (
            HierarchyBuilder::new(test_config(num_sms)).build(space, tlbs),
            va,
        )
    }

    fn access(va: VirtAddr, at: u64, sm: usize) -> Access {
        Access {
            at,
            sm,
            asid: Asid::default(),
            tb_slot: 0,
            va,
            vpn: va.vpn(PageSize::Small),
            page_size: PageSize::Small,
        }
    }

    #[test]
    fn walk_then_l1_hit_with_exact_baseline_timing() {
        let (mut h, va) = build(1);
        // Cold: L1 miss (1) + icnt (20) + L2 lookup (10) + walk (500) +
        // fault (2000) + icnt back (20).
        let t = h.translate(&access(va, 0, 0));
        assert_eq!(t.level, HitLevel::Walk);
        assert_eq!(t.ready_at, 1 + 20 + 10 + 500 + 2000 + 20);
        assert_eq!(t.breakdown.total(), t.ready_at);
        assert_eq!(t.breakdown.fault, 2000);
        assert_eq!(t.breakdown.walk, 500);
        // Warm: L1 hit, 1 cycle.
        let t2 = h.translate(&access(va, 10_000, 0));
        assert_eq!(t2.level, HitLevel::L1Tlb);
        assert_eq!(t2.ready_at, 10_001);
        assert_eq!(t2.breakdown.total(), 1);
        assert!(h.breakdown().check().is_ok());
        assert_eq!(h.breakdown().translations, 2);
    }

    #[test]
    fn l2_hit_path_fills_l1() {
        let (mut h, va) = build(2);
        // SM 0 walks the page in; the L2 TLB now holds it.
        h.translate(&access(va, 0, 0));
        // SM 1 misses its own L1 but hits the shared L2.
        let t = h.translate(&access(va, 5000, 1));
        assert_eq!(t.level, HitLevel::L2Tlb);
        assert_eq!(t.ready_at, 5000 + 1 + 20 + 10 + 20);
        assert_eq!(t.breakdown.walk + t.breakdown.fault, 0);
        // And SM 1's L1 was filled.
        let t2 = h.translate(&access(va, 9000, 1));
        assert_eq!(t2.level, HitLevel::L1Tlb);
        assert!(h.breakdown().check().is_ok());
    }

    #[test]
    fn port_contention_shows_up_as_queue_cycles() {
        let (mut h, va) = build(4);
        // Four SMs miss at the same cycle onto one slice with 2 ports:
        // grants at 21, 21, 22, 22 -> queue cycles 0, 0, 1, 1.
        let queued: u64 = (0..4)
            .map(|sm| h.translate(&access(va, 0, sm)).breakdown.l2_tlb_queue)
            .sum();
        assert_eq!(queued, 2);
        assert_eq!(h.breakdown().l2_tlb_queue_cycles, queued);
        assert!(h.breakdown().check().is_ok());
    }

    #[test]
    fn stage_stats_cover_the_pipeline() {
        let (mut h, va) = build(1);
        h.translate(&access(va, 0, 0));
        h.translate(&access(va, 5000, 0));
        let stats = h.stage_stats();
        let names: Vec<&str> = stats.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["l1_tlb", "icnt", "l2_tlb", "walker"]);
        assert_eq!(stats[0].1.accesses, 2, "both translations probe L1");
        assert_eq!(stats[3].1.accesses, 1, "only the cold one walks");
        // Two icnt hops for the one L1 miss.
        assert_eq!(stats[1].1.accesses, 2);
    }

    #[test]
    fn facade_and_split_agree_per_sm() {
        // The same accesses through the façade and through explicit
        // split halves produce identical timing and identically merged
        // stats — the serial/parallel equivalence in miniature.
        let mut space_a = AddressSpace::new(PageSize::Small);
        let mut space_b = AddressSpace::new(PageSize::Small);
        let va = space_a.allocate("b", 1 << 20).expect("fresh space").addr_of(0);
        let _ = space_b.allocate("b", 1 << 20).expect("fresh space");
        let mk_tlbs = || -> Vec<Box<dyn TranslationBuffer>> {
            (0..2)
                .map(|_| {
                    Box::new(tlb::SetAssocTlb::new(TlbConfig::dac23_l1()))
                        as Box<dyn TranslationBuffer>
                })
                .collect()
        };
        let mut fused = HierarchyBuilder::new(test_config(2)).build(space_a, mk_tlbs());
        let (mut fronts, mut back) =
            HierarchyBuilder::new(test_config(2)).build_split(space_b, mk_tlbs());
        let accs = [access(va, 0, 0), access(va, 40, 1), access(va, 9000, 0)];
        for a in &accs {
            let t_fused = fused.translate(a);
            let front = &mut fronts[a.sm];
            let l1 = front.probe_translate(a);
            let t_split = match l1.ppn {
                Some(ppn) => Translation {
                    ppn,
                    ready_at: l1.ready_at,
                    level: HitLevel::L1Tlb,
                    breakdown: TranslationBreakdown {
                        l1_tlb: l1.service_cycles,
                        ..Default::default()
                    },
                },
                None => back.translate_miss(front, a, l1.ready_at, l1.service_cycles),
            };
            assert_eq!(t_fused.ready_at, t_split.ready_at);
            assert_eq!(t_fused.level, t_split.level);
        }
        let merged = fronts
            .iter()
            .fold(*back.breakdown(), |acc, f| acc + *f.breakdown());
        assert_eq!(fused.breakdown(), merged);
        assert!(merged.check().is_ok());
    }

    #[test]
    #[should_panic(expected = "one L1 TLB per SM")]
    fn builder_rejects_mismatched_tlb_count() {
        let space = AddressSpace::new(PageSize::Small);
        let _ = HierarchyBuilder::new(test_config(2)).build(space, Vec::new());
    }
}
