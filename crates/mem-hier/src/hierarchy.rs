//! Composition of stages into the baseline translation + data pipeline.

use crate::breakdown::{LatencyBreakdown, TranslationBreakdown};
use crate::config::HierarchyConfig;
use crate::stage::{Access, Stage, StageStats};
use crate::stages::{DataPath, IcntLink, L1TlbStage, L2TlbStage, WalkerStage};
use tlb::{SetAssocTlb, TlbStats, TranslationBuffer};
use vmem::{AddressSpace, PageSize, PhysAddr, Ppn, WalkerStats};

/// The hierarchy level that resolved a translation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Resolved by the SM's private L1 TLB (no fill happened).
    L1Tlb,
    /// Resolved by the shared L2 TLB (the L1 was filled).
    L2Tlb,
    /// Resolved by a page-table walk (L2 and L1 were filled).
    Walk,
}

/// The result of one translation through the hierarchy.
#[derive(Copy, Clone, Debug)]
pub struct Translation {
    /// Resolved physical frame.
    pub ppn: Ppn,
    /// Cycle at which the PPN is available back at the SM.
    pub ready_at: u64,
    /// Which level resolved it.
    pub level: HitLevel,
    /// Where the cycles went.
    pub breakdown: TranslationBreakdown,
}

/// The composed memory hierarchy: the translation path (L1 TLB ->
/// icnt -> L2 TLB -> walkers) and the data path (VIPT L1 -> L2 ->
/// DRAM), with per-level latency attribution for every translation.
///
/// Stage timing contract: each stage's outcome satisfies
/// `ready_at == access.at + queue + service + fault` (debug-asserted
/// here), so chaining stages makes the end-to-end latency equal the sum
/// of per-stage contributions by construction — the identity
/// [`LatencyBreakdown::check`] verifies against an independently
/// accumulated end-to-end count.
pub struct Hierarchy {
    l1_tlb: L1TlbStage,
    icnt: IcntLink,
    l2_tlb: L2TlbStage,
    walker: WalkerStage,
    data: DataPath,
    breakdown: LatencyBreakdown,
}

impl Hierarchy {
    /// Translates one page access; returns the frame, the cycle it is
    /// available, and the per-level attribution. Exactly reproduces the
    /// paper's Figure 1 path: L1 TLB, then (on miss) the interconnect to
    /// the VPN-owning L2 slice, a port grant, the L2 lookup, and (on
    /// miss) a page-table walk with UVM first-touch faulting, with fills
    /// propagating back up.
    pub fn translate(&mut self, acc: &Access) -> Translation {
        let l1 = self.l1_tlb.access(acc);
        debug_assert_eq!(l1.ready_at, acc.at + l1.latency());
        if let Some(ppn) = l1.ppn {
            let breakdown = TranslationBreakdown {
                l1_tlb: l1.service_cycles,
                ..Default::default()
            };
            self.breakdown.record(&breakdown, l1.ready_at - acc.at);
            return Translation {
                ppn,
                ready_at: l1.ready_at,
                level: HitLevel::L1Tlb,
                breakdown,
            };
        }

        let hop = self.icnt.access(&acc.arriving_at(l1.ready_at));
        let l2 = self.l2_tlb.access(&acc.arriving_at(hop.ready_at));
        debug_assert_eq!(l2.ready_at, hop.ready_at + l2.latency());
        if let Some(ppn) = l2.ppn {
            self.l1_tlb.fill(acc, ppn);
            let back = self.icnt.access(&acc.arriving_at(l2.ready_at));
            let breakdown = TranslationBreakdown {
                l1_tlb: l1.service_cycles,
                icnt: hop.service_cycles + back.service_cycles,
                l2_tlb_queue: l2.queue_cycles,
                l2_tlb_lookup: l2.service_cycles,
                ..Default::default()
            };
            self.breakdown.record(&breakdown, back.ready_at - acc.at);
            return Translation {
                ppn,
                ready_at: back.ready_at,
                level: HitLevel::L2Tlb,
                breakdown,
            };
        }

        let walk = self.walker.access(&acc.arriving_at(l2.ready_at));
        debug_assert_eq!(walk.ready_at, l2.ready_at + walk.latency());
        let ppn = walk.ppn.expect("completed walks always resolve a frame"); // simlint: allow(hot-unwrap, reason = "WalkerStage::access always returns Some per its panic contract")
        // Fill order matters for eviction stats: L2 slice first, then the
        // requesting SM's L1, exactly as the pre-refactor engine did.
        self.l2_tlb.fill(acc, ppn);
        self.l1_tlb.fill(acc, ppn);
        let back = self.icnt.access(&acc.arriving_at(walk.ready_at));
        let breakdown = TranslationBreakdown {
            l1_tlb: l1.service_cycles,
            icnt: hop.service_cycles + back.service_cycles,
            l2_tlb_queue: l2.queue_cycles,
            l2_tlb_lookup: l2.service_cycles,
            walk: walk.queue_cycles + walk.service_cycles,
            fault: walk.fault_cycles,
        };
        self.breakdown.record(&breakdown, back.ready_at - acc.at);
        Translation {
            ppn,
            ready_at: back.ready_at,
            level: HitLevel::Walk,
            breakdown,
        }
    }

    /// One coalesced line transaction through the data path.
    pub fn data_access(&mut self, start: u64, sm: usize, pa: PhysAddr, write: bool) -> u64 {
        self.data.access(start, sm, pa, write)
    }

    /// The per-SM L1 TLBs, in SM index order.
    pub fn l1_tlbs(&self) -> &[Box<dyn TranslationBuffer>] {
        self.l1_tlb.banks()
    }

    /// Mutable access to the per-SM L1 TLBs.
    pub fn l1_tlbs_mut(&mut self) -> &mut [Box<dyn TranslationBuffer>] {
        self.l1_tlb.banks_mut()
    }

    /// The L2 TLB slices, in interleave order.
    pub fn l2_slices(&self) -> &[SetAssocTlb] {
        self.l2_tlb.slices()
    }

    /// Aggregate L2 TLB counters summed over slices.
    pub fn l2_tlb_stats(&self) -> TlbStats {
        self.l2_tlb.tlb_stats()
    }

    /// Per-SM L1 data-cache counters.
    pub fn l1_cache_stats(&self) -> Vec<crate::CacheStats> {
        self.data.l1_stats()
    }

    /// Shared L2 data-cache counters.
    pub fn l2_cache_stats(&self) -> crate::CacheStats {
        self.data.l2_stats()
    }

    /// Walker-pool activity counters.
    pub fn walker_stats(&self) -> WalkerStats {
        self.walker.walker_stats()
    }

    /// UVM demand faults taken.
    pub fn demand_faults(&self) -> u64 {
        self.walker.demand_faults()
    }

    /// Coalesced line transactions issued on the data path.
    pub fn transactions(&self) -> u64 {
        self.data.transactions()
    }

    /// Page size of the address space being translated.
    pub fn page_size(&self) -> PageSize {
        self.walker.page_size()
    }

    /// The address space being translated.
    pub fn space(&self) -> &AddressSpace {
        self.walker.space()
    }

    /// Aggregate per-level latency attribution over every translation so
    /// far.
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.breakdown
    }

    /// Activity counters per translation stage, in pipeline order.
    pub fn stage_stats(&self) -> Vec<(&'static str, StageStats)> {
        vec![
            (self.l1_tlb.name(), self.l1_tlb.stats()),
            (self.icnt.name(), self.icnt.stats()),
            (self.l2_tlb.name(), self.l2_tlb.stats()),
            (self.walker.name(), self.walker.stats()),
        ]
    }
}

/// Config-driven constructor for the baseline [`Hierarchy`].
///
/// Variant hierarchies (a MASK-style TLB-aware L2, a Mosaic-style
/// multi-page-size level) are built by swapping one stage here; the
/// engine and every other stage are untouched. See DESIGN.md, "The
/// mem-hier stage model".
pub struct HierarchyBuilder {
    config: HierarchyConfig,
}

impl HierarchyBuilder {
    /// Starts a builder from the hierarchy geometry and latencies.
    pub fn new(config: HierarchyConfig) -> Self {
        HierarchyBuilder { config }
    }

    /// Assembles the baseline pipeline around a workload's address
    /// space and externally built per-SM L1 TLBs (one per SM — the
    /// engine's pluggable-organization hook).
    ///
    /// # Panics
    ///
    /// Panics if `l1_tlbs.len()` differs from the configured SM count.
    pub fn build(self, space: AddressSpace, l1_tlbs: Vec<Box<dyn TranslationBuffer>>) -> Hierarchy {
        assert_eq!(
            l1_tlbs.len(),
            self.config.num_sms,
            "one L1 TLB per SM required"
        );
        let c = &self.config;
        Hierarchy {
            l1_tlb: L1TlbStage::new(l1_tlbs),
            icnt: IcntLink::new(c.icnt_latency),
            l2_tlb: L2TlbStage::new(
                c.l2_tlb,
                c.l2_tlb_slices,
                c.l2_tlb_ports,
                c.l2_tlb_port_occupancy,
            ),
            walker: WalkerStage::new(
                space,
                c.walkers,
                c.walk_latency,
                c.walk_latency_per_level,
                c.demand_fault_latency,
            ),
            data: DataPath::new(c),
            breakdown: LatencyBreakdown::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use tlb::TlbConfig;
    use vmem::VirtAddr;

    fn test_config(num_sms: usize) -> HierarchyConfig {
        HierarchyConfig {
            num_sms,
            l1_cache: CacheConfig::new(16 * 1024, 4, 128),
            l2_cache: CacheConfig::new(1536 * 1024, 8, 128),
            l2_tlb: TlbConfig::dac23_l2(),
            l2_tlb_slices: 1,
            l2_tlb_ports: 2,
            l2_tlb_port_occupancy: 1,
            walkers: 8,
            walk_latency: 500,
            walk_latency_per_level: 0,
            l1_hit_latency: 1,
            icnt_latency: 20,
            l2_hit_latency: 30,
            dram_latency: 200,
            demand_fault_latency: 2000,
        }
    }

    fn build(num_sms: usize) -> (Hierarchy, VirtAddr) {
        let mut space = AddressSpace::new(PageSize::Small);
        let buf = space.allocate("b", 1 << 20).expect("fresh space");
        let va = buf.addr_of(0);
        let tlbs: Vec<Box<dyn TranslationBuffer>> = (0..num_sms)
            .map(|_| {
                Box::new(tlb::SetAssocTlb::new(TlbConfig::dac23_l1()))
                    as Box<dyn TranslationBuffer>
            })
            .collect();
        (
            HierarchyBuilder::new(test_config(num_sms)).build(space, tlbs),
            va,
        )
    }

    fn access(va: VirtAddr, at: u64, sm: usize) -> Access {
        Access {
            at,
            sm,
            tb_slot: 0,
            va,
            vpn: va.vpn(PageSize::Small),
            page_size: PageSize::Small,
        }
    }

    #[test]
    fn walk_then_l1_hit_with_exact_baseline_timing() {
        let (mut h, va) = build(1);
        // Cold: L1 miss (1) + icnt (20) + L2 lookup (10) + walk (500) +
        // fault (2000) + icnt back (20).
        let t = h.translate(&access(va, 0, 0));
        assert_eq!(t.level, HitLevel::Walk);
        assert_eq!(t.ready_at, 1 + 20 + 10 + 500 + 2000 + 20);
        assert_eq!(t.breakdown.total(), t.ready_at);
        assert_eq!(t.breakdown.fault, 2000);
        assert_eq!(t.breakdown.walk, 500);
        // Warm: L1 hit, 1 cycle.
        let t2 = h.translate(&access(va, 10_000, 0));
        assert_eq!(t2.level, HitLevel::L1Tlb);
        assert_eq!(t2.ready_at, 10_001);
        assert_eq!(t2.breakdown.total(), 1);
        assert!(h.breakdown().check().is_ok());
        assert_eq!(h.breakdown().translations, 2);
    }

    #[test]
    fn l2_hit_path_fills_l1() {
        let (mut h, va) = build(2);
        // SM 0 walks the page in; the L2 TLB now holds it.
        h.translate(&access(va, 0, 0));
        // SM 1 misses its own L1 but hits the shared L2.
        let t = h.translate(&access(va, 5000, 1));
        assert_eq!(t.level, HitLevel::L2Tlb);
        assert_eq!(t.ready_at, 5000 + 1 + 20 + 10 + 20);
        assert_eq!(t.breakdown.walk + t.breakdown.fault, 0);
        // And SM 1's L1 was filled.
        let t2 = h.translate(&access(va, 9000, 1));
        assert_eq!(t2.level, HitLevel::L1Tlb);
        assert!(h.breakdown().check().is_ok());
    }

    #[test]
    fn port_contention_shows_up_as_queue_cycles() {
        let (mut h, va) = build(4);
        // Four SMs miss at the same cycle onto one slice with 2 ports:
        // grants at 21, 21, 22, 22 -> queue cycles 0, 0, 1, 1.
        let queued: u64 = (0..4)
            .map(|sm| h.translate(&access(va, 0, sm)).breakdown.l2_tlb_queue)
            .sum();
        assert_eq!(queued, 2);
        assert_eq!(h.breakdown().l2_tlb_queue_cycles, queued);
        assert!(h.breakdown().check().is_ok());
    }

    #[test]
    fn stage_stats_cover_the_pipeline() {
        let (mut h, va) = build(1);
        h.translate(&access(va, 0, 0));
        h.translate(&access(va, 5000, 0));
        let stats = h.stage_stats();
        let names: Vec<&str> = stats.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["l1_tlb", "icnt", "l2_tlb", "walker"]);
        assert_eq!(stats[0].1.accesses, 2, "both translations probe L1");
        assert_eq!(stats[3].1.accesses, 1, "only the cold one walks");
        // Two icnt hops for the one L1 miss.
        assert_eq!(stats[1].1.accesses, 2);
    }

    #[test]
    #[should_panic(expected = "one L1 TLB per SM")]
    fn builder_rejects_mismatched_tlb_count() {
        let space = AddressSpace::new(PageSize::Small);
        let _ = HierarchyBuilder::new(test_config(2)).build(space, Vec::new());
    }
}
