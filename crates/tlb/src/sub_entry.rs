//! A sub-entry-sharing TLB for multi-tenant L2s, after the MIG-TLB
//! direction (arxiv 2404.18361): co-running applications frequently map
//! the *same virtual page numbers* (same binaries, same library layouts,
//! mirrored input buffers), so a conventional ASID-tagged L2 stores one
//! full entry per (asid, vpn) pair even when the tags are identical. The
//! sub-entry organization tags a way by VPN alone and hangs up to
//! `subs` per-ASID sub-entries — each carrying its own PPN — off the
//! shared tag. Isolation is preserved (a lookup only ever returns the
//! sub-entry matching its own ASID) while the tag array is shared, so
//! the effective reach under ASID-striped working sets grows by up to
//! the sub-entry count.

use crate::config::TlbConfig;
use crate::request::{TlbOutcome, TlbRequest, TranslationBuffer};
use crate::sanitize::InvariantViolation;
use crate::stats::{PerAsidStats, TlbStats};
use std::fmt::Write as _;
use vmem::{Asid, Ppn, Vpn};

/// One per-ASID translation hanging off a shared VPN tag.
#[derive(Copy, Clone, Debug, Default)]
struct SubSlot {
    valid: bool,
    asid: Asid,
    ppn: Ppn,
}

/// One way: a VPN tag shared by up to `subs` per-ASID sub-entries.
#[derive(Clone, Debug)]
struct SubWay {
    valid: bool,
    vpn: Vpn,
    /// Monotone use-stamp for LRU among ways (larger = more recent).
    stamp: u64,
    /// Round-robin sub-entry victim cursor — deterministic and
    /// payload-independent, so deferred fills stay exact.
    next_victim: u8,
    slots: Vec<SubSlot>,
}

impl SubWay {
    fn empty(subs: usize) -> Self {
        SubWay {
            valid: false,
            vpn: Vpn::default(),
            stamp: 0,
            next_victim: 0,
            slots: vec![SubSlot::default(); subs],
        }
    }

    fn live_subs(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    fn slot_of(&self, asid: Asid) -> Option<usize> {
        self.slots.iter().position(|s| s.valid && s.asid == asid)
    }
}

/// A set-associative TLB whose ways are VPN-tagged and shared between
/// address spaces through per-ASID sub-entries.
///
/// # Example
///
/// ```
/// use tlb::{SubEntryTlb, TlbConfig, TlbRequest, TranslationBuffer};
/// use vmem::{Asid, Ppn, Vpn};
///
/// let mut t = SubEntryTlb::new(TlbConfig::new(8, 2, 1), 4);
/// let a1 = TlbRequest::new(Vpn::new(5), 0).with_asid(Asid::new(1));
/// let a2 = TlbRequest::new(Vpn::new(5), 0).with_asid(Asid::new(2));
/// t.insert(&a1, Ppn::new(100));
/// t.insert(&a2, Ppn::new(200));
/// // Both apps share one tag but each sees only its own frame.
/// assert_eq!(t.lookup(&a1).ppn, Some(Ppn::new(100)));
/// assert_eq!(t.lookup(&a2).ppn, Some(Ppn::new(200)));
/// assert_eq!(t.occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SubEntryTlb {
    config: TlbConfig,
    /// Sub-entries per shared tag.
    subs: usize,
    ways: Vec<SubWay>,
    clock: u64,
    stats: TlbStats,
    /// Per-ASID breakdown of `stats` (sub-entry displacements attributed
    /// to the victim's ASID); sums to the aggregate exactly.
    per_asid: PerAsidStats,
    /// Hits on a way whose tag is shared by more than one ASID — the
    /// organization's raison d'être, reported as a repro figure input.
    shared_hits: u64,
    /// Inserts that displaced another app's sub-entry inside a shared
    /// way (intra-tag contention).
    sub_conflicts: u64,
    /// Count of valid ways, maintained on insert/evict/flush.
    resident: usize,
}

impl SubEntryTlb {
    /// Creates an empty sub-entry TLB with `subs` sub-entries per way.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is zero.
    pub fn new(config: TlbConfig, subs: usize) -> Self {
        assert!(subs > 0, "sub-entry count must be non-zero");
        SubEntryTlb {
            config,
            subs,
            ways: (0..config.entries).map(|_| SubWay::empty(subs)).collect(),
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
            shared_hits: 0,
            sub_conflicts: 0,
            resident: 0,
        }
    }

    /// The geometry configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Sub-entries per shared tag.
    pub fn subs(&self) -> usize {
        self.subs
    }

    /// Hits served from a way shared by more than one ASID.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Inserts that displaced another app's sub-entry within a way.
    pub fn sub_conflicts(&self) -> u64 {
        self.sub_conflicts
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.raw() & (self.config.sets() as u64 - 1)) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.config.associativity;
        set * a..(set + 1) * a
    }

    /// Number of valid ways (shared tags) currently resident.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.ways.iter().filter(|w| w.valid).count(),
            "resident counter diverged from the valid-way scan"
        );
        self.resident
    }

    /// Probes for `(asid, vpn)` without updating stats or LRU state
    /// (diagnostics).
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        let range = self.set_range(self.set_of(vpn));
        self.ways[range]
            .iter()
            .find(|w| w.valid && w.vpn == vpn)
            .and_then(|w| w.slot_of(asid).map(|i| w.slots[i].ppn))
    }

    /// Number of valid sub-entries currently owned by `asid` (token
    /// accounting parity with [`crate::SetAssocTlb::resident_of`]).
    pub fn resident_of(&self, asid: Asid) -> usize {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .flat_map(|w| w.slots.iter())
            .filter(|s| s.valid && s.asid == asid)
            .count()
    }
}

impl TranslationBuffer for SubEntryTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let range = self.set_range(self.set_of(req.vpn));
        let clock = self.clock;
        if let Some(way) = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.vpn == req.vpn)
        {
            if let Some(i) = way.slot_of(req.asid) {
                way.stamp = clock;
                if way.live_subs() > 1 {
                    self.shared_hits += 1;
                }
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                return TlbOutcome::hit(way.slots[i].ppn, self.config.lookup_latency);
            }
        }
        self.stats.record(false);
        self.per_asid.entry(req.asid).record(false);
        TlbOutcome::miss(self.config.lookup_latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let range = self.set_range(self.set_of(req.vpn));
        let clock = self.clock;
        // Shared tag already resident: land in a sub-entry.
        if let Some(wi) = self.ways[range.clone()]
            .iter()
            .position(|w| w.valid && w.vpn == req.vpn)
        {
            let widx = range.start + wi;
            // Refresh in place if this app already holds a sub-entry.
            if let Some(i) = self.ways[widx].slot_of(req.asid) {
                self.ways[widx].slots[i].ppn = ppn;
                self.ways[widx].stamp = clock;
                return;
            }
            self.stats.insertions += 1;
            self.per_asid.entry(req.asid).insertions += 1;
            let slot = if let Some(free) = self.ways[widx].slots.iter().position(|s| !s.valid) {
                free
            } else {
                // All sub-entries taken: round-robin displacement,
                // charged to the displaced app.
                let v = self.ways[widx].next_victim as usize % self.subs;
                self.ways[widx].next_victim = ((v + 1) % self.subs) as u8;
                let victim_asid = self.ways[widx].slots[v].asid;
                self.stats.evictions += 1;
                self.per_asid.entry(victim_asid).evictions += 1;
                self.sub_conflicts += 1;
                v
            };
            self.ways[widx].slots[slot] = SubSlot {
                valid: true,
                asid: req.asid,
                ppn,
            };
            self.ways[widx].stamp = clock;
            return;
        }
        // Fresh tag: allocate a way, evicting the LRU tag (and every
        // sub-entry hanging off it, each charged to its owner).
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        let widx = range
            .clone()
            .min_by_key(|&i| (self.ways[i].valid, self.ways[i].stamp))
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        if self.ways[widx].valid {
            let victims: Vec<Asid> = self.ways[widx]
                .slots
                .iter()
                .filter(|s| s.valid)
                .map(|s| s.asid)
                .collect();
            self.stats.evictions += victims.len() as u64;
            for a in victims {
                self.per_asid.entry(a).evictions += 1;
            }
        } else {
            self.resident += 1;
        }
        let way = &mut self.ways[widx];
        way.valid = true;
        way.vpn = req.vpn;
        way.stamp = clock;
        way.next_victim = 0;
        for s in &mut way.slots {
            s.valid = false;
        }
        way.slots[0] = SubSlot {
            valid: true,
            asid: req.asid,
            ppn,
        };
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.per_asid.clear();
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
            for s in &mut w.slots {
                s.valid = false;
            }
        }
        self.resident = 0;
    }

    fn capacity(&self) -> usize {
        self.config.entries
    }

    // Way victims key on `(valid, stamp)` and sub-entry victims on the
    // round-robin cursor; neither inspects the inserted frame, so the
    // sharded drain may fill provisionally and patch later.
    fn supports_deferred_fill(&self) -> bool {
        true
    }

    fn patch_ppn(&mut self, req: &TlbRequest, old: Ppn, new: Ppn) -> bool {
        let range = self.set_range(self.set_of(req.vpn));
        if let Some(way) = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.vpn == req.vpn)
        {
            if let Some(i) = way.slot_of(req.asid) {
                if way.slots[i].ppn == old {
                    way.slots[i].ppn = new;
                    return true;
                }
            }
        }
        false
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        Some(self.peek(req.asid, req.vpn))
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |detail: String| {
            Err(InvariantViolation::new(
                "SubEntryTlb",
                detail,
                self.dump_state(),
            ))
        };
        if let Err(e) = self.stats.check() {
            return fail(e);
        }
        let asid_sum = self.per_asid.sum();
        if asid_sum != self.stats {
            return fail(format!(
                "per-ASID stats sum {asid_sum:?} != aggregate {:?}",
                self.stats
            ));
        }
        let scanned = self.ways.iter().filter(|w| w.valid).count();
        if self.resident != scanned {
            return fail(format!(
                "resident counter {} != valid-way scan {scanned}",
                self.resident
            ));
        }
        for set in 0..self.config.sets() {
            let range = self.set_range(set);
            let ways = &self.ways[range];
            for (i, w) in ways.iter().enumerate().filter(|(_, w)| w.valid) {
                if w.live_subs() == 0 {
                    return fail(format!(
                        "set {set} way {i}: valid tag with no valid sub-entries"
                    ));
                }
                if w.stamp > self.clock {
                    return fail(format!(
                        "set {set} way {i}: stamp {} ahead of clock {}",
                        w.stamp, self.clock
                    ));
                }
                if ways[..i].iter().any(|o| o.valid && o.stamp == w.stamp) {
                    return fail(format!(
                        "set {set}: duplicate LRU stamp {} breaks the recency total order",
                        w.stamp
                    ));
                }
                if ways[..i].iter().any(|o| o.valid && o.vpn == w.vpn) {
                    return fail(format!("set {set}: VPN {:#x} tagged twice", w.vpn.raw()));
                }
                for (j, s) in w.slots.iter().enumerate().filter(|(_, s)| s.valid) {
                    if w.slots[..j].iter().any(|o| o.valid && o.asid == s.asid) {
                        return fail(format!(
                            "set {set} way {i}: ASID {} holds two sub-entries under one tag",
                            s.asid
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn dump_state(&self) -> String {
        let mut s = format!(
            "SubEntryTlb: {} ways x {} subs, clock {}, resident {}, shared_hits {}, stats {{{:?}}}\n",
            self.config.entries, self.subs, self.clock, self.resident, self.shared_hits, self.stats
        );
        for set in 0..self.config.sets() {
            let ways = &self.ways[self.set_range(set)];
            if ways.iter().all(|w| !w.valid) {
                continue;
            }
            let _ = write!(s, "  set {set:3}:");
            for w in ways.iter().filter(|w| w.valid) {
                let _ = write!(s, " [vpn={:#x} @{}", w.vpn.raw(), w.stamp);
                for sub in w.slots.iter().filter(|s| s.valid) {
                    let _ = write!(s, " {}→{:#x}", sub.asid, sub.ppn.raw());
                }
                let _ = write!(s, "]");
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areq(asid: u16, vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0).with_asid(Asid::new(asid))
    }

    #[test]
    fn shared_tag_serves_each_asid_its_own_frame() {
        let mut t = SubEntryTlb::new(TlbConfig::new(8, 2, 1), 4);
        t.insert(&areq(1, 5), Ppn::new(100));
        t.insert(&areq(2, 5), Ppn::new(200));
        t.insert(&areq(3, 5), Ppn::new(300));
        assert_eq!(t.occupancy(), 1, "one shared tag for three apps");
        assert_eq!(t.lookup(&areq(1, 5)).ppn, Some(Ppn::new(100)));
        assert_eq!(t.lookup(&areq(2, 5)).ppn, Some(Ppn::new(200)));
        assert_eq!(t.lookup(&areq(3, 5)).ppn, Some(Ppn::new(300)));
        assert_eq!(t.shared_hits(), 3);
        assert!(!t.lookup(&areq(4, 5)).hit, "app without a sub-entry misses");
        t.check_invariants().expect("shared-tag state is consistent");
    }

    #[test]
    fn sub_entry_displacement_is_round_robin_and_charged_to_victim() {
        let mut t = SubEntryTlb::new(TlbConfig::new(8, 2, 1), 2);
        t.insert(&areq(1, 5), Ppn::new(100));
        t.insert(&areq(2, 5), Ppn::new(200));
        // Third app displaces the cursor's victim (slot 0 = app 1).
        t.insert(&areq(3, 5), Ppn::new(300));
        assert_eq!(t.sub_conflicts(), 1);
        assert!(!t.lookup(&areq(1, 5)).hit, "displaced app misses");
        assert!(t.lookup(&areq(2, 5)).hit);
        assert!(t.lookup(&areq(3, 5)).hit);
        let by: std::collections::HashMap<_, _> = t.stats_by_asid().into_iter().collect();
        assert_eq!(by[&Asid::new(1)].evictions, 1, "victim owns the eviction");
        t.check_invariants().expect("post-displacement state is consistent");
    }

    #[test]
    fn way_eviction_clears_all_subs() {
        // 1 set x 1 way: any new tag evicts the whole shared entry.
        let mut t = SubEntryTlb::new(TlbConfig::new(1, 1, 1), 4);
        t.insert(&areq(1, 5), Ppn::new(100));
        t.insert(&areq(2, 5), Ppn::new(200));
        t.insert(&areq(1, 9), Ppn::new(900));
        assert_eq!(t.stats().evictions, 2, "one per displaced sub-entry");
        assert!(!t.lookup(&areq(1, 5)).hit);
        assert!(!t.lookup(&areq(2, 5)).hit);
        assert!(t.lookup(&areq(1, 9)).hit);
        t.check_invariants().expect("post-eviction state is consistent");
    }

    #[test]
    fn refresh_in_place_updates_frame_without_insertion() {
        let mut t = SubEntryTlb::new(TlbConfig::new(8, 2, 1), 4);
        t.insert(&areq(1, 5), Ppn::new(100));
        t.insert(&areq(1, 5), Ppn::new(101));
        assert_eq!(t.stats().insertions, 1);
        assert_eq!(t.lookup(&areq(1, 5)).ppn, Some(Ppn::new(101)));
    }

    #[test]
    fn patch_ppn_targets_only_the_owning_sub_entry() {
        let mut t = SubEntryTlb::new(TlbConfig::new(8, 2, 1), 4);
        assert!(t.supports_deferred_fill());
        t.insert(&areq(1, 5), Ppn::new(100));
        t.insert(&areq(2, 5), Ppn::new(100));
        // Same provisional frame in both subs; only app 1's is patched.
        assert!(t.patch_ppn(&areq(1, 5), Ppn::new(100), Ppn::new(7)));
        assert_eq!(t.peek(Asid::new(1), Vpn::new(5)), Some(Ppn::new(7)));
        assert_eq!(t.peek(Asid::new(2), Vpn::new(5)), Some(Ppn::new(100)));
        // Wrong old frame / absent sub: refused.
        assert!(!t.patch_ppn(&areq(1, 5), Ppn::new(100), Ppn::new(8)));
        assert!(!t.patch_ppn(&areq(3, 5), Ppn::new(100), Ppn::new(8)));
        assert_eq!(t.stats().accesses(), 0, "patching is stats-silent");
    }

    #[test]
    fn reach_grows_under_asid_striped_working_sets() {
        // 4 apps x 16 shared VPNs in a 16-way structure: everything fits
        // because tags are shared; an ASID-tagged TLB would need 64 ways.
        let mut t = SubEntryTlb::new(TlbConfig::new(16, 4, 1), 4);
        for vpn in 0..16u64 {
            for app in 1..=4u16 {
                t.insert(&areq(app, vpn), Ppn::new(u64::from(app) * 1000 + vpn));
            }
        }
        t.reset_stats();
        for vpn in 0..16u64 {
            for app in 1..=4u16 {
                let out = t.lookup(&areq(app, vpn));
                assert_eq!(out.ppn, Some(Ppn::new(u64::from(app) * 1000 + vpn)));
            }
        }
        assert_eq!(t.stats().misses, 0);
        assert_eq!(t.resident_of(Asid::new(1)), 16);
        let sum = t
            .stats_by_asid()
            .iter()
            .fold(TlbStats::default(), |a, (_, s)| a + *s);
        assert_eq!(sum, t.stats());
    }

    #[test]
    fn duplicate_sub_asid_is_reported() {
        let mut t = SubEntryTlb::new(TlbConfig::new(4, 2, 1), 2);
        t.insert(&areq(1, 5), Ppn::new(100));
        let range = t.set_range(t.set_of(Vpn::new(5)));
        let way = t.ways[range]
            .iter_mut()
            .find(|w| w.valid)
            .expect("inserted way");
        way.slots[1] = SubSlot {
            valid: true,
            asid: Asid::new(1),
            ppn: Ppn::new(200),
        };
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("two sub-entries"), "{}", v.detail);
        assert!(v.dump.contains("SubEntryTlb"), "{}", v.dump);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = SubEntryTlb::new(TlbConfig::new(8, 2, 1), 4);
        t.insert(&areq(1, 5), Ppn::new(100));
        t.insert(&areq(2, 5), Ppn::new(200));
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.lookup(&areq(1, 5)).hit);
    }
}
