//! TLB geometry and timing configuration.

use std::fmt;

/// Geometry and timing of a set-associative TLB.
///
/// The paper's Table III configurations are available as constructors:
/// [`TlbConfig::dac23_l1`] (64-entry, 4-way, 1-cycle, SM-private) and
/// [`TlbConfig::dac23_l2`] (512-entry, 16-way, 10-cycle, shared).
///
/// # Example
///
/// ```
/// use tlb::TlbConfig;
///
/// let l1 = TlbConfig::dac23_l1();
/// assert_eq!(l1.entries, 64);
/// assert_eq!(l1.sets(), 16);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Lookup latency in cycles for a single-set probe.
    pub lookup_latency: u64,
}

impl TlbConfig {
    /// Creates a configuration, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `associativity`,
    /// or if the resulting set count is not a power of two (required for
    /// index-bit set selection).
    pub fn new(entries: usize, associativity: usize, lookup_latency: u64) -> Self {
        assert!(entries > 0 && associativity > 0, "geometry must be non-zero");
        assert!(
            entries.is_multiple_of(associativity),
            "entries {entries} must be a multiple of associativity {associativity}"
        );
        let sets = entries / associativity;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        TlbConfig {
            entries,
            associativity,
            lookup_latency,
        }
    }

    /// The paper's per-SM private L1 TLB: 64 entries, 4-way, 1-cycle.
    pub fn dac23_l1() -> Self {
        TlbConfig::new(64, 4, 1)
    }

    /// Figure 2's enlarged L1 TLB: 256 entries, same associativity.
    pub fn dac23_l1_256() -> Self {
        TlbConfig::new(256, 4, 1)
    }

    /// The paper's shared L2 TLB: 512 entries, 16-way, 10-cycle.
    pub fn dac23_l2() -> Self {
        TlbConfig::new(512, 16, 10)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.associativity
    }

    /// The geometry of one of `slices` VPN-interleaved slices this TLB
    /// is distributed over: entries divide evenly, clamped so every
    /// slice keeps at least one full set; associativity and lookup
    /// latency are unchanged.
    ///
    /// # Panics
    ///
    /// Panics (via [`TlbConfig::new`]) if the per-slice set count is not
    /// a power of two.
    pub fn sliced(&self, slices: usize) -> TlbConfig {
        TlbConfig::new(
            (self.entries / slices.max(1)).max(self.associativity),
            self.associativity,
            self.lookup_latency,
        )
    }
}

impl fmt::Display for TlbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries, {}-way, {} sets, {}-cycle lookup",
            self.entries,
            self.associativity,
            self.sets(),
            self.lookup_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table3() {
        let l1 = TlbConfig::dac23_l1();
        assert_eq!((l1.entries, l1.associativity, l1.lookup_latency), (64, 4, 1));
        assert_eq!(l1.sets(), 16);
        let l2 = TlbConfig::dac23_l2();
        assert_eq!(
            (l2.entries, l2.associativity, l2.lookup_latency),
            (512, 16, 10)
        );
        assert_eq!(l2.sets(), 32);
        let big = TlbConfig::dac23_l1_256();
        assert_eq!(big.entries, 256);
        assert_eq!(big.associativity, 4);
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn non_multiple_rejected() {
        let _ = TlbConfig::new(65, 4, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = TlbConfig::new(24, 2, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rejected() {
        let _ = TlbConfig::new(0, 1, 1);
    }

    #[test]
    fn sliced_divides_entries_and_keeps_timing() {
        let per = TlbConfig::dac23_l2().sliced(4);
        assert_eq!(per.entries, 128);
        assert_eq!(per.associativity, 16);
        assert_eq!(per.lookup_latency, 10);
        // Clamps at one set per slice rather than underflowing.
        let tiny = TlbConfig::dac23_l2().sliced(1024);
        assert_eq!(tiny.entries, 16);
        assert_eq!(tiny.sets(), 1);
        // One slice is the identity.
        assert_eq!(TlbConfig::dac23_l2().sliced(1), TlbConfig::dac23_l2());
        assert_eq!(TlbConfig::dac23_l2().sliced(0), TlbConfig::dac23_l2());
    }

    #[test]
    fn display_mentions_geometry() {
        let s = TlbConfig::dac23_l1().to_string();
        assert!(s.contains("64 entries"));
        assert!(s.contains("4-way"));
    }
}
