//! The baseline set-associative, VPN-indexed TLB with true-LRU
//! replacement.
//!
//! This is the organization the paper's Table III assumes for both the
//! per-SM private L1 TLB and the shared L2 TLB: the set index comes from
//! the low VPN bits, the remaining bits form the tag, and replacement is
//! LRU within a set.

use crate::config::TlbConfig;
use crate::request::{TlbOutcome, TlbRequest, TranslationBuffer};
use crate::sanitize::InvariantViolation;
use crate::stats::TlbStats;
use std::fmt::Write as _;
use vmem::{Ppn, Vpn};

#[derive(Copy, Clone, Debug, Default)]
struct Way {
    valid: bool,
    vpn: Vpn,
    ppn: Ppn,
    /// Monotone use-stamp for LRU (larger = more recent).
    stamp: u64,
}

/// A VPN-indexed, set-associative TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use tlb::{SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer};
/// use vmem::{Ppn, Vpn};
///
/// let mut tlb = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
/// for i in 0..8 {
///     tlb.insert(&TlbRequest::new(Vpn::new(i), 0), Ppn::new(i));
/// }
/// assert!(tlb.lookup(&TlbRequest::new(Vpn::new(3), 0)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    config: TlbConfig,
    /// `sets() * associativity` ways, set-major.
    ways: Vec<Way>,
    clock: u64,
    stats: TlbStats,
}

impl SetAssocTlb {
    /// Creates an empty TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        SetAssocTlb {
            config,
            ways: vec![Way::default(); config.entries],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // Mask in u64 before narrowing so the set index is identical on
        // 32-bit hosts.
        (vpn.raw() & (self.config.sets() as u64 - 1)) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.config.associativity;
        set * a..(set + 1) * a
    }

    /// Number of valid entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Probes for `vpn` without updating stats or LRU state (diagnostics).
    pub fn peek(&self, vpn: Vpn) -> Option<Ppn> {
        let set = self.set_of(vpn);
        self.ways[self.set_range(set)]
            .iter()
            .find(|w| w.valid && w.vpn == vpn)
            .map(|w| w.ppn)
    }
}

impl TranslationBuffer for SetAssocTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let clock = self.clock;
        for way in &mut self.ways[range] {
            if way.valid && way.vpn == req.vpn {
                way.stamp = clock;
                self.stats.record(true);
                return TlbOutcome::hit(way.ppn, self.config.lookup_latency);
            }
        }
        self.stats.record(false);
        TlbOutcome::miss(self.config.lookup_latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let clock = self.clock;
        // Refresh in place if already present (fill races are benign).
        if let Some(way) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.vpn == req.vpn)
        {
            way.ppn = ppn;
            way.stamp = clock;
            return;
        }
        self.stats.insertions += 1;
        // Prefer an invalid way; otherwise evict LRU.
        let victim = self.ways[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.stamp))
            .map(|(i, _)| i)
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        let way = &mut self.ways[range.start + victim];
        if way.valid {
            self.stats.evictions += 1;
        }
        *way = Way {
            valid: true,
            vpn: req.vpn,
            ppn,
            stamp: clock,
        };
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
    }

    fn capacity(&self) -> usize {
        self.config.entries
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |detail: String| {
            Err(InvariantViolation::new(
                "SetAssocTlb",
                detail,
                self.dump_state(),
            ))
        };
        if let Err(e) = self.stats.check() {
            return fail(e);
        }
        if self.occupancy() > self.capacity() {
            return fail(format!(
                "occupancy {} exceeds capacity {}",
                self.occupancy(),
                self.capacity()
            ));
        }
        for set in 0..self.config.sets() {
            let ways = &self.ways[self.set_range(set)];
            for (i, w) in ways.iter().enumerate().filter(|(_, w)| w.valid) {
                if w.stamp > self.clock {
                    return fail(format!(
                        "set {set} way {i}: stamp {} ahead of clock {}",
                        w.stamp, self.clock
                    ));
                }
                // Distinct stamps per set make LRU a total order: ties
                // would leave the victim choice to iteration order.
                if ways[..i].iter().any(|o| o.valid && o.stamp == w.stamp) {
                    return fail(format!(
                        "set {set}: duplicate LRU stamp {} breaks the recency total order",
                        w.stamp
                    ));
                }
                if ways[..i].iter().any(|o| o.valid && o.vpn == w.vpn) {
                    return fail(format!("set {set}: VPN {:#x} resident twice", w.vpn.raw()));
                }
            }
        }
        Ok(())
    }

    fn dump_state(&self) -> String {
        let mut s = format!(
            "SetAssocTlb: {} entries, {}-way, clock {}, stats {{{:?}}}\n",
            self.config.entries, self.config.associativity, self.clock, self.stats
        );
        for set in 0..self.config.sets() {
            let ways = &self.ways[self.set_range(set)];
            if ways.iter().all(|w| !w.valid) {
                continue;
            }
            let _ = write!(s, "  set {set:3}:");
            for w in ways.iter().filter(|w| w.valid) {
                let _ = write!(s, " [vpn={:#x} ppn={:#x} @{}]", w.vpn.raw(), w.ppn.raw(), w.stamp);
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        assert!(!t.lookup(&req(1)).hit);
        t.insert(&req(1), Ppn::new(100));
        let out = t.lookup(&req(1));
        assert!(out.hit);
        assert_eq!(out.ppn, Some(Ppn::new(100)));
        assert_eq!(out.latency, 1);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways.
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        // Touch 0 so 1 becomes LRU.
        assert!(t.lookup(&req(0)).hit);
        t.insert(&req(2), Ppn::new(2));
        assert!(t.lookup(&req(0)).hit, "recently used entry survives");
        assert!(!t.lookup(&req(1)).hit, "LRU entry evicted");
        assert!(t.lookup(&req(2)).hit);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn sets_are_independent() {
        // 4 sets x 1 way; VPNs 0..4 map to distinct sets.
        let mut t = SetAssocTlb::new(TlbConfig::new(4, 1, 1));
        for i in 0..4 {
            t.insert(&req(i), Ppn::new(i));
        }
        for i in 0..4 {
            assert!(t.lookup(&req(i)).hit);
        }
        // VPN 4 conflicts with VPN 0 only.
        t.insert(&req(4), Ppn::new(4));
        assert!(!t.lookup(&req(0)).hit);
        assert!(t.lookup(&req(1)).hit);
    }

    #[test]
    fn reinsert_updates_ppn_without_eviction() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(1));
        t.insert(&req(0), Ppn::new(2));
        assert_eq!(t.lookup(&req(0)).ppn, Some(Ppn::new(2)));
        assert_eq!(t.stats().evictions, 0);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        for i in 0..64 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 64);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.lookup(&req(0)).hit);
    }

    #[test]
    fn peek_does_not_perturb_state() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.insert(&req(9), Ppn::new(3));
        assert_eq!(t.peek(Vpn::new(9)), Some(Ppn::new(3)));
        assert_eq!(t.peek(Vpn::new(10)), None);
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn capacity_matches_config() {
        let t = SetAssocTlb::new(TlbConfig::dac23_l2());
        assert_eq!(t.capacity(), 512);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        // 64 sequential pages fill the TLB exactly (4 per set).
        for i in 0..64 {
            t.insert(&req(i), Ppn::new(i));
        }
        t.reset_stats();
        for round in 0..10 {
            for i in 0..64 {
                assert!(t.lookup(&req(i)).hit, "round {round} vpn {i}");
            }
        }
        assert_eq!(t.stats().misses, 0);
    }

    #[test]
    fn invariants_hold_through_a_mixed_workload() {
        let mut t = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        for i in 0..40u64 {
            let r = req(i % 13);
            if !t.lookup(&r).hit {
                t.insert(&r, Ppn::new(i));
            }
            t.check_invariants().expect("workload keeps invariants");
        }
    }

    #[test]
    fn corrupted_stamp_is_reported_with_dump() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        // Force a duplicate stamp: LRU order is no longer total.
        let s = t.ways[0].stamp;
        t.ways[1].stamp = s;
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("duplicate LRU stamp"), "{}", v.detail);
        assert!(v.dump.contains("set   0"), "dump missing state:\n{}", v.dump);
    }

    #[test]
    fn broken_stats_identity_is_reported() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.lookup(&req(0));
        t.stats.hits += 1; // bypass record()
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        // 128 sequential pages, cyclic: classic LRU thrash, hit rate 0.
        for _ in 0..4 {
            for i in 0..128u64 {
                let r = req(i);
                if !t.lookup(&r).hit {
                    t.insert(&r, Ppn::new(i));
                }
            }
        }
        assert_eq!(t.stats().hits, 0, "cyclic overcapacity scan never hits under LRU");
    }
}
